//! Eff-TT backward pass (paper §III-B).
//!
//! Given the loss gradient of the pooled embeddings, training a TT table
//! means producing core gradients and updating the cores. The Eff-TT
//! schedule:
//!
//! 1. **In-advance gradient aggregation** — embedding-row gradients are
//!    scatter-added per *unique* index slot before any tensor work, so the
//!    expensive chain-rule products run once per unique index instead of
//!    once per lookup (paper Figure 6b, step 1). With
//!    [`BackwardStrategy::PerLookup`] the plan keeps per-lookup slots and
//!    the products run per lookup — TT-Rec's schedule (Figure 6a).
//! 2. **Chain backward, level by level** — for each level `t` (deepest
//!    first), two conflict-free parallel passes:
//!    * *chain pass*: `dP_{t-1}[p] += dP_t[c] * G_t[digit(c)]^T` for each
//!      child `c` of parent `p`; parallel over parents, whose children are
//!      contiguous in the plan.
//!    * *core pass*: `dG_t[g] += P_{t-1}[parent(c)]^T * dP_t[c]` for each
//!      slot `c` with digit `g`; parallel over digits, each of which owns
//!      one core slice.
//! 3. **Fused TT-core update** — with `fused_update` the SGD step happens
//!    inside the core pass, so gradients never round-trip through memory;
//!    the unfused path materializes them into gradient arenas and applies a
//!    separate update pass (what TT-Rec pays, and what the data-parallel
//!    trainer needs for all-reduce).

use crate::bag::{TtEmbeddingBag, TtWorkspace};
use crate::config::BackwardStrategy;
use crate::plan::LookupPlan;
use el_tensor::gemm::{add_a_bt, add_at_b};
use el_tensor::Matrix;
use rayon::prelude::*;

impl TtEmbeddingBag {
    /// Backpropagates `d_out` (`batch_size x dim`, the gradient of the
    /// pooled embeddings) and applies an SGD step with learning rate `lr`.
    ///
    /// Requires a preceding [`TtEmbeddingBag::forward`] on the same
    /// workspace.
    pub fn backward_sgd(&mut self, d_out: &Matrix, ws: &mut TtWorkspace, lr: f32) {
        if self.options.fused_update {
            self.backward_pass(d_out, ws, UpdateMode::Fused(lr));
        } else {
            self.backward_pass(d_out, ws, UpdateMode::Materialize);
            let grads = std::mem::take(&mut ws.grads);
            self.apply_grads(&grads, lr);
            ws.grads = grads;
        }
    }

    /// Computes core gradients into `ws.grads` without touching the
    /// parameters — the entry point for data-parallel training, where
    /// gradients are all-reduced across workers before [`Self::apply_grads`].
    pub fn backward_grads(&mut self, d_out: &Matrix, ws: &mut TtWorkspace) {
        self.backward_pass(d_out, ws, UpdateMode::Materialize);
    }

    /// Applies `w -= lr * g` to every core.
    pub fn apply_grads(&mut self, grads: &[Vec<f32>], lr: f32) {
        assert_eq!(grads.len(), self.order(), "one gradient arena per core");
        for (core, grad) in self.cores.cores.iter_mut().zip(grads) {
            assert_eq!(core.len(), grad.len(), "gradient arena shape mismatch");
            core.par_chunks_mut(4096).zip(grad.par_chunks(4096)).for_each(|(w, g)| {
                for (wv, gv) in w.iter_mut().zip(g) {
                    *wv -= lr * gv;
                }
            });
        }
    }

    fn backward_pass(&mut self, d_out: &Matrix, ws: &mut TtWorkspace, mode: UpdateMode) {
        let d = self.order();
        let n = self.dim();
        let want_dedup = self.options.backward == BackwardStrategy::Aggregated;

        // Reuse the forward plan and partial products when the dedup
        // setting matches; otherwise re-analyze and recompute the chain —
        // the recomputation cost is part of what the per-lookup baseline
        // pays.
        let plan = match ws.plan.take() {
            Some(p) if p.dedup == want_dedup => p,
            Some(p) => {
                // Reconstruct the lookup index values from the forward plan
                // (slot values are the original indices), re-analyze into
                // the spare plan object, and park the forward plan as the
                // next spare — both plan objects keep their capacity, so
                // even the perpetual-rebuild baseline reaches a
                // zero-allocation steady state.
                let analysis = crate::timing::probe();
                // PANIC-OK: every built plan carries >= 2 levels (asserted in build).
                let last = p.levels.last().expect("plans always have levels");
                ws.index_scratch.clear();
                ws.index_scratch
                    .extend(p.lookup_slot.iter().map(|&s| last.values[s as usize] as u32));
                let mut rebuilt = ws.alt_plan.take().unwrap_or_default();
                if self.options.parallel_analysis {
                    rebuilt.par_build_into(
                        &ws.index_scratch,
                        &p.sample_offsets,
                        &self.cores.row_dims,
                        want_dedup,
                        &mut ws.plan_scratch,
                    );
                } else {
                    rebuilt.build_into(
                        &ws.index_scratch,
                        &p.sample_offsets,
                        &self.cores.row_dims,
                        want_dedup,
                        &mut ws.plan_scratch,
                    );
                }
                ws.alt_plan = Some(p);
                analysis.accumulate(&mut ws.timers.analysis_ns);
                self.compute_levels(&rebuilt, &mut ws.levels, &mut ws.batch);
                rebuilt
            }
            // PANIC-OK: documented API contract — backward without forward is a caller bug.
            None => panic!("backward requires a preceding forward on this workspace"),
        };
        let bwd = crate::timing::probe();
        assert_eq!(d_out.rows(), plan.batch_size, "gradient batch size mismatch");
        assert_eq!(d_out.cols(), n, "gradient dim mismatch");

        // Stage 1: aggregate embedding gradients per slot (per unique index
        // when deduplicating).
        let slots = plan.num_rows();
        ws.dlevels.resize_with(d, Vec::new);
        {
            let dlast = &mut ws.dlevels[d - 1];
            dlast.clear();
            dlast.resize(slots * n, 0.0);
            let d_out_buf = d_out.as_slice();
            dlast.par_chunks_mut(n).enumerate().for_each(|(slot, acc)| {
                for &j in plan.slot_lookups.group(slot) {
                    let s = plan.sample_of_lookup[j as usize] as usize;
                    let src = &d_out_buf[s * n..(s + 1) * n];
                    for (a, v) in acc.iter_mut().zip(src) {
                        *a += v;
                    }
                }
            });
        }

        if matches!(mode, UpdateMode::Materialize) {
            ws.grads.resize_with(d, Vec::new);
            for (k, g) in ws.grads.iter_mut().enumerate() {
                g.clear();
                g.resize(self.cores.cores[k].len(), 0.0);
            }
        }

        // Stage 2: walk levels deepest-first.
        for t in (1..d).rev() {
            self.chain_pass(&plan, ws, t);
            self.core_pass(&plan, ws, t, mode);
        }
        self.level0_pass(&plan, ws, mode);

        bwd.accumulate(&mut ws.timers.backward_ns);
        ws.plan = Some(plan);
    }

    /// `dP_{t-1}[p] += dP_t[c] * G_t[digit(c)]^T` over children `c` of `p`.
    fn chain_pass(&self, plan: &LookupPlan, ws: &mut TtWorkspace, t: usize) {
        let level = &plan.levels[t];
        let m = self.prod_n(t - 1);
        let r_prev = self.cores.ranks[t];
        let k_dim = self.cores.col_dims[t] * self.cores.ranks[t + 1];
        let width_t = self.level_width(t);
        let width_prev = if t == 1 { self.cores.slice_len(0) } else { self.level_width(t - 1) };
        let prev_count = plan.levels[t - 1].len();
        let slice_t = self.cores.slice_len(t);
        let core_t = &self.cores.cores[t];

        let (dprev, dcur) = split_pair(&mut ws.dlevels, t);
        dprev.clear();
        dprev.resize(prev_count * width_prev, 0.0);
        debug_assert_eq!(width_prev, m * r_prev);

        let run = |(p, out): (usize, &mut [f32])| {
            let lo = level.child_offsets[p] as usize;
            let hi = level.child_offsets[p + 1] as usize;
            for c in lo..hi {
                let b = &core_t[level.digit[c] as usize * slice_t..][..slice_t];
                let dp = &dcur[c * width_t..(c + 1) * width_t];
                // dP_t[c] viewed as (m, k_dim); G_t slice is (r_prev, k_dim).
                add_a_bt(m, r_prev, k_dim, dp, b, out);
            }
        };
        if self.options.deterministic {
            dprev.chunks_mut(width_prev).enumerate().for_each(run);
        } else {
            dprev.par_chunks_mut(width_prev).enumerate().for_each(run);
        }
    }

    /// `dG_t[g] += P_{t-1}[parent(c)]^T * dP_t[c]` over slots with digit
    /// `g`, optionally fusing the SGD step.
    fn core_pass(&mut self, plan: &LookupPlan, ws: &mut TtWorkspace, t: usize, mode: UpdateMode) {
        let level = &plan.levels[t];
        let p_rows = self.prod_n(t - 1);
        let r_prev = self.cores.ranks[t];
        let k_dim = self.cores.col_dims[t] * self.cores.ranks[t + 1];
        let width_t = self.level_width(t);
        let width_prev = if t == 1 { self.cores.slice_len(0) } else { self.level_width(t - 1) };
        let slice_t = self.cores.slice_len(t);
        let dcur = &ws.dlevels[t];
        // P_{t-1}: core-0 slices at t == 1, otherwise the forward buffer.
        // Splitting the core list lets the fused path mutate core t while
        // core 0 serves as the read-only parent arena.
        let (cores_lo, cores_hi) = self.cores.cores.split_at_mut(t);
        let core_t = &mut cores_hi[0];
        let level0_digits = &plan.levels[0].digit;
        let p_arena: &[f32] = if t == 1 { &cores_lo[0] } else { &ws.levels[t - 1] };
        let parent_off = move |p: usize| {
            if t == 1 {
                level0_digits[p] as usize * width_prev
            } else {
                p * width_prev
            }
        };

        // Each digit owns one slice of core t, so writes are disjoint. The
        // per-slice gradient accumulator lives in thread-local storage so
        // the steady-state backward pass performs no heap allocation.
        let accumulate = |g: usize, dst: &mut [f32], scale: f32| {
            CORE_GRAD_SCRATCH.with(|cell| {
                let mut tmp = cell.borrow_mut();
                tmp.clear();
                tmp.resize(slice_t, 0.0);
                for &item in level.digit_groups.group(g) {
                    let parent = level.parent[item as usize] as usize;
                    let a = &p_arena[parent_off(parent)..][..width_prev];
                    let dp = &dcur[item as usize * width_t..][..width_t];
                    // A is (p_rows, r_prev); dP viewed as (p_rows, k_dim).
                    add_at_b(p_rows, r_prev, k_dim, a, dp, &mut tmp[..]);
                }
                for (w, g) in dst.iter_mut().zip(tmp.iter()) {
                    *w += scale * g;
                }
            });
        };

        match mode {
            UpdateMode::Fused(lr) => {
                // Ordering guarantee: the chain pass for this level already
                // consumed G_t, so updating it here cannot corrupt any
                // remaining gradient computation.
                if self.options.deterministic {
                    core_t
                        .chunks_mut(slice_t)
                        .enumerate()
                        .for_each(|(g, dst)| accumulate(g, dst, -lr));
                } else {
                    core_t
                        .par_chunks_mut(slice_t)
                        .enumerate()
                        .for_each(|(g, dst)| accumulate(g, dst, -lr));
                }
            }
            UpdateMode::Materialize => {
                let mut grad = std::mem::take(&mut ws.grads[t]);
                if self.options.deterministic {
                    grad.chunks_mut(slice_t)
                        .enumerate()
                        .for_each(|(g, dst)| accumulate(g, dst, 1.0));
                } else {
                    grad.par_chunks_mut(slice_t)
                        .enumerate()
                        .for_each(|(g, dst)| accumulate(g, dst, 1.0));
                }
                ws.grads[t] = grad;
            }
        }
    }

    /// Level 0: `dG_1[g] += dP_0[slot]` — the chain endpoint, no GEMM.
    fn level0_pass(&mut self, plan: &LookupPlan, ws: &mut TtWorkspace, mode: UpdateMode) {
        let level = &plan.levels[0];
        let width = self.cores.slice_len(0);
        let dp0 = &ws.dlevels[0];

        let accumulate = |g: usize, dst: &mut [f32], scale: f32| {
            for &item in level.digit_groups.group(g) {
                let src = &dp0[item as usize * width..][..width];
                for (w, v) in dst.iter_mut().zip(src) {
                    *w += scale * v;
                }
            }
        };

        match mode {
            UpdateMode::Fused(lr) => {
                let core = &mut self.cores.cores[0];
                core.par_chunks_mut(width).enumerate().for_each(|(g, dst)| accumulate(g, dst, -lr));
            }
            UpdateMode::Materialize => {
                let mut grad = std::mem::take(&mut ws.grads[0]);
                grad.par_chunks_mut(width).enumerate().for_each(|(g, dst)| accumulate(g, dst, 1.0));
                ws.grads[0] = grad;
            }
        }
    }
}

#[derive(Clone, Copy)]
enum UpdateMode {
    Fused(f32),
    Materialize,
}

std::thread_local! {
    /// Per-thread core-gradient slice accumulator for the core pass.
    static CORE_GRAD_SCRATCH: std::cell::RefCell<Vec<f32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Splits `dlevels` at `t`, returning `(&mut dlevels[t-1], &dlevels[t])`.
fn split_pair(dlevels: &mut [Vec<f32>], t: usize) -> (&mut Vec<f32>, &Vec<f32>) {
    let (lo, hi) = dlevels.split_at_mut(t);
    (&mut lo[t - 1], &hi[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackwardStrategy, ForwardStrategy, TtConfig, TtOptions};
    use rand::SeedableRng;

    fn bag(rows: usize, dim: usize, rank: usize, seed: u64) -> TtEmbeddingBag {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TtEmbeddingBag::new(&TtConfig::new(rows, dim, rank), &mut rng)
    }

    /// Numerical-gradient check of the full pipeline: perturb one core
    /// parameter, measure the loss change, compare with the analytic
    /// gradient. Loss = sum(out * w) for a fixed random weight matrix.
    #[test]
    fn analytic_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut b = bag(24, 8, 3, 10);
        let indices = [3u32, 17, 3, 23, 0];
        let offsets = [0u32, 2, 5];
        let w = Matrix::uniform(2, 8, 1.0, &mut rng);
        let mut ws = TtWorkspace::new();

        // analytic gradients
        b.options.fused_update = false;
        let _ = b.forward(&indices, &offsets, &mut ws);
        b.backward_grads(&w, &mut ws);
        let grads: Vec<Vec<f32>> = ws.grads.clone();

        let loss = |b: &TtEmbeddingBag, ws: &mut TtWorkspace| -> f64 {
            let out = b.forward(&indices, &offsets, ws);
            out.as_slice().iter().zip(w.as_slice()).map(|(o, wv)| (*o as f64) * (*wv as f64)).sum()
        };

        let eps = 1e-3f32;
        #[allow(clippy::needless_range_loop)] // probing by core index
        for core_idx in 0..3 {
            // probe a few parameters in each core
            for param in [0usize, 7, b.cores().cores[core_idx].len() - 1] {
                let orig = b.cores.cores[core_idx][param];
                b.cores.cores[core_idx][param] = orig + eps;
                let up = loss(&b, &mut ws);
                b.cores.cores[core_idx][param] = orig - eps;
                let down = loss(&b, &mut ws);
                b.cores.cores[core_idx][param] = orig;
                let numeric = (up - down) / (2.0 * eps as f64);
                let analytic = grads[core_idx][param] as f64;
                assert!(
                    (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
                    "core {core_idx} param {param}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn aggregated_matches_per_lookup_gradients() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let indices: Vec<u32> = (0..40).map(|i| (i * 13) % 50).collect();
        let offsets: Vec<u32> = (0..=10).map(|s| s * 4).collect();
        let d_out = Matrix::uniform(10, 16, 1.0, &mut rng);

        let grads_for = |strategy: BackwardStrategy| {
            let mut b = bag(50, 16, 6, 13);
            b.options = TtOptions {
                backward: strategy,
                fused_update: false,
                deterministic: true,
                ..TtOptions::default()
            };
            let mut ws = TtWorkspace::new();
            let _ = b.forward(&indices, &offsets, &mut ws);
            b.backward_grads(&d_out, &mut ws);
            ws.grads.clone()
        };

        let agg = grads_for(BackwardStrategy::Aggregated);
        let per = grads_for(BackwardStrategy::PerLookup);
        for (a, p) in agg.iter().zip(&per) {
            for (x, y) in a.iter().zip(p) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn fused_and_unfused_updates_agree() {
        let indices: Vec<u32> = (0..30).map(|i| (i * 7) % 40).collect();
        let offsets: Vec<u32> = (0..=6).map(|s| s * 5).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let d_out = Matrix::uniform(6, 8, 1.0, &mut rng);

        let run = |fused: bool| {
            let mut b = bag(40, 8, 4, 15);
            b.options.fused_update = fused;
            b.options.deterministic = true;
            let mut ws = TtWorkspace::new();
            let _ = b.forward(&indices, &offsets, &mut ws);
            b.backward_sgd(&d_out, &mut ws, 0.05);
            b.cores().cores.clone()
        };
        let fused = run(true);
        let unfused = run(false);
        for (f, u) in fused.iter().zip(&unfused) {
            for (x, y) in f.iter().zip(u) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn sgd_reduces_reconstruction_loss() {
        // Train the table to match a fixed target for a handful of rows:
        // loss = 0.5 * ||out - target||^2, d_out = out - target.
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        let mut b = bag(20, 8, 4, 17);
        let indices = [1u32, 5, 9, 13];
        let offsets = [0u32, 1, 2, 3, 4];
        let target = Matrix::uniform(4, 8, 0.5, &mut rng);
        let mut ws = TtWorkspace::new();

        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..400 {
            let out = b.forward(&indices, &offsets, &mut ws);
            let mut d = out.clone();
            d.axpy(-1.0, &target);
            last_loss = d.frobenius_norm();
            first_loss.get_or_insert(last_loss);
            b.backward_sgd(&d, &mut ws, 0.05);
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.05,
            "loss did not drop: {} -> {last_loss}",
            first_loss.unwrap()
        );
    }

    #[test]
    fn backward_without_forward_panics() {
        let mut b = bag(10, 4, 2, 18);
        let mut ws = TtWorkspace::new();
        let d = Matrix::zeros(1, 4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.backward_sgd(&d, &mut ws, 0.1);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn mismatched_gradient_shape_panics() {
        let mut b = bag(10, 4, 2, 19);
        let mut ws = TtWorkspace::new();
        let _ = b.forward(&[1, 2], &[0, 2], &mut ws);
        let d = Matrix::zeros(3, 4); // batch size was 1
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.backward_sgd(&d, &mut ws, 0.1);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn naive_forward_then_aggregated_backward_rebuilds_plan() {
        // Strategy mismatch between forward and backward must still give
        // correct gradients (the plan is rebuilt internally).
        let indices: Vec<u32> = vec![4, 4, 9, 1];
        let offsets: Vec<u32> = vec![0, 2, 4];
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        let d_out = Matrix::uniform(2, 8, 1.0, &mut rng);

        let mut mixed = bag(12, 8, 3, 21);
        mixed.options = TtOptions {
            forward: ForwardStrategy::Naive,
            backward: BackwardStrategy::Aggregated,
            fused_update: false,
            deterministic: true,
            parallel_analysis: true,
            fused_pooling: false,
        };
        let mut ws = TtWorkspace::new();
        let _ = mixed.forward(&indices, &offsets, &mut ws);
        mixed.backward_grads(&d_out, &mut ws);
        let got = ws.grads.clone();

        let mut pure = bag(12, 8, 3, 21);
        pure.options =
            TtOptions { fused_update: false, deterministic: true, ..TtOptions::default() };
        let mut ws2 = TtWorkspace::new();
        let _ = pure.forward(&indices, &offsets, &mut ws2);
        pure.backward_grads(&d_out, &mut ws2);

        for (a, b) in got.iter().zip(&ws2.grads) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn apply_grads_is_plain_sgd() {
        let mut b = bag(10, 4, 2, 22);
        let before = b.cores().cores.clone();
        let grads: Vec<Vec<f32>> = b.cores().cores.iter().map(|c| vec![1.0; c.len()]).collect();
        b.apply_grads(&grads, 0.1);
        for (c, orig) in b.cores().cores.iter().zip(&before) {
            for (x, o) in c.iter().zip(orig) {
                assert!((x - (o - 0.1)).abs() < 1e-6);
            }
        }
    }
}
