//! Configuration of an Eff-TT table.

use el_tensor::shape::{balanced_factorization, factorize};

/// Which forward kernel the table uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ForwardStrategy {
    /// Per-lookup chain multiplication without any sharing — the TT-Rec
    /// baseline of the paper's comparisons.
    Naive,
    /// Batch-level intermediate-result reuse through the reuse buffer
    /// (paper §III-A, Algorithm 1).
    Reuse,
}

/// Which backward kernel the table uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BackwardStrategy {
    /// One gradient chain per lookup, aggregated into the cores afterwards —
    /// the TT-Rec baseline (paper Figure 6a).
    PerLookup,
    /// In-advance gradient aggregation: embedding gradients are reduced per
    /// unique index before any core-gradient work (paper Figure 6b).
    Aggregated,
}

/// Tuning knobs of one Eff-TT table. Every ablation in the paper's Figure
/// 14/17/18 maps to one of these fields.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct TtOptions {
    /// Forward kernel choice.
    pub forward: ForwardStrategy,
    /// Backward kernel choice.
    pub backward: BackwardStrategy,
    /// Fuse the optimizer step into the core-gradient pass (paper §III-B,
    /// "Fused TT Core Update"). When false, gradients are materialized and a
    /// separate update pass runs — the extra memory traffic TT-Rec pays.
    pub fused_update: bool,
    /// Run level kernels sequentially in slot order, making backward sums
    /// bit-reproducible (used by the pipeline equivalence tests).
    pub deterministic: bool,
    /// Prepare lookup pointers with the rayon-parallel builder
    /// (`LookupPlan::par_build_into`, paper Algorithm 1 run in parallel).
    /// Bit-identical to the sequential builder and safe to leave on: below
    /// the size cutoff (or on a one-thread pool) the sequential path runs.
    pub parallel_analysis: bool,
    /// Fuse the final chain level and sum-pooling into one pass: the
    /// per-lookup TT product rows are pooled inside the packed kernel's
    /// A-panel loader (`el_tensor::batched::pooled_gemm`), so the
    /// `(slots x dim)` last-level buffer is never written or re-read.
    /// Forward results match the materialize-then-pool path up to f32
    /// summation order. Defaults off; `#[serde(default)]` keeps configs
    /// from before this field readable.
    #[serde(default)]
    pub fused_pooling: bool,
}

impl Default for TtOptions {
    fn default() -> Self {
        Self {
            forward: ForwardStrategy::Reuse,
            backward: BackwardStrategy::Aggregated,
            fused_update: true,
            deterministic: false,
            parallel_analysis: true,
            fused_pooling: false,
        }
    }
}

impl TtOptions {
    /// The TT-Rec baseline: no reuse, per-lookup gradients, unfused update.
    /// (Pointer preparation stays parallel — the paper's baseline differs in
    /// kernel strategy, not in how the host prepares pointers.)
    pub fn tt_rec_baseline() -> Self {
        Self {
            forward: ForwardStrategy::Naive,
            backward: BackwardStrategy::PerLookup,
            fused_update: false,
            deterministic: false,
            parallel_analysis: true,
            fused_pooling: false,
        }
    }
}

/// Shape configuration of a TT table.
#[derive(Clone, Debug)]
pub struct TtConfig {
    /// Logical number of embedding rows (before padding).
    pub num_rows: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Row factors `m_k`; their product is the padded capacity.
    pub row_dims: Vec<usize>,
    /// Column factors `n_k`; their product equals `dim`.
    pub col_dims: Vec<usize>,
    /// TT ranks `R_0..R_d` (`R_0 = R_d = 1`).
    pub ranks: Vec<usize>,
    /// Standard deviation target of reconstructed rows at init.
    pub init_std: f32,
}

impl TtConfig {
    /// A three-core configuration with uniform rank — the shape the paper
    /// evaluates (rank 128 on V100, 64 on T4).
    pub fn new(num_rows: usize, dim: usize, rank: usize) -> Self {
        Self::with_order(num_rows, dim, rank, 3)
    }

    /// A `d`-core configuration with uniform internal rank.
    pub fn with_order(num_rows: usize, dim: usize, rank: usize, d: usize) -> Self {
        assert!(d >= 2, "TT tables need at least two cores");
        assert!(num_rows > 0 && dim > 0 && rank > 0);
        let row_dims = balanced_factorization(num_rows, d);
        let col_dims = factorize(dim, d);
        assert_eq!(
            col_dims.iter().product::<usize>(),
            dim,
            "embedding dim {dim} is not exactly factorizable into {d} parts; \
             pick a dim with enough small factors (e.g. a power of two)"
        );
        let mut ranks = vec![rank; d + 1];
        ranks[0] = 1;
        ranks[d] = 1;
        // A rank cannot usefully exceed the dimensions of the unfolding it
        // connects; clamp so tiny tables do not waste parameters.
        for k in 1..d {
            let left: usize =
                row_dims[..k].iter().zip(&col_dims[..k]).map(|(m, n)| m * n).product();
            let right: usize =
                row_dims[k..].iter().zip(&col_dims[k..]).map(|(m, n)| m * n).product();
            ranks[k] = ranks[k].min(left).min(right);
        }
        Self { num_rows, dim, row_dims, col_dims, ranks, init_std: 0.05 }
    }

    /// Overrides the init scale.
    pub fn with_init_std(mut self, std: f32) -> Self {
        self.init_std = std;
        self
    }

    /// Number of cores.
    pub fn order(&self) -> usize {
        self.row_dims.len()
    }

    /// Padded row capacity.
    pub fn capacity(&self) -> usize {
        self.row_dims.iter().product()
    }

    /// Parameter count of the configured cores.
    pub fn param_count(&self) -> usize {
        (0..self.order())
            .map(|k| self.row_dims[k] * self.ranks[k] * self.col_dims[k] * self.ranks[k + 1])
            .sum()
    }

    /// Compression ratio versus the dense table.
    pub fn compression_ratio(&self) -> f64 {
        (self.num_rows * self.dim) as f64 / self.param_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_core_config_covers_rows() {
        let c = TtConfig::new(1_000_000, 64, 32);
        assert_eq!(c.order(), 3);
        assert!(c.capacity() >= 1_000_000);
        assert_eq!(c.col_dims.iter().product::<usize>(), 64);
    }

    #[test]
    fn ranks_are_clamped_on_tiny_tables() {
        let c = TtConfig::new(8, 8, 128);
        for k in 1..c.order() {
            assert!(c.ranks[k] <= 128);
            assert!(c.ranks[k] >= 1);
        }
        // tiny table: rank must collapse well below 128
        assert!(c.ranks[1] < 128);
    }

    #[test]
    fn compression_ratio_is_large_for_big_tables() {
        let c = TtConfig::new(10_000_000, 128, 64);
        assert!(c.compression_ratio() > 100.0, "ratio {}", c.compression_ratio());
    }

    #[test]
    #[should_panic(expected = "not exactly factorizable")]
    fn prime_dim_is_rejected() {
        let _ = TtConfig::new(100, 13, 8);
    }

    #[test]
    fn param_count_matches_core_shapes() {
        let c = TtConfig::new(1000, 64, 16);
        let expected: usize =
            (0..3).map(|k| c.row_dims[k] * c.ranks[k] * c.col_dims[k] * c.ranks[k + 1]).sum();
        assert_eq!(c.param_count(), expected);
    }

    #[test]
    fn default_options_are_the_eff_tt_path() {
        let o = TtOptions::default();
        assert_eq!(o.forward, ForwardStrategy::Reuse);
        assert_eq!(o.backward, BackwardStrategy::Aggregated);
        assert!(o.fused_update);
    }
}
