//! Property-based tests over the Eff-TT kernels: random table shapes,
//! random batches, every strategy combination — all must compute the same
//! function, and the plan invariants must hold for inputs the hand-written
//! tests never imagined.

#![cfg(test)]

use crate::bag::{TtEmbeddingBag, TtWorkspace};
use crate::config::{BackwardStrategy, ForwardStrategy, TtConfig, TtOptions};
use crate::plan::LookupPlan;
use el_tensor::Matrix;
use proptest::prelude::*;
use rand::SeedableRng;

/// A random small table configuration: order 2..=4, rows 6..=200, dim in
/// {4, 8, 16}.
fn arb_config() -> impl Strategy<Value = TtConfig> {
    (2usize..=4, 6usize..=200, prop_oneof![Just(4usize), Just(8), Just(16)], 2usize..=6)
        .prop_map(|(order, rows, dim, rank)| TtConfig::with_order(rows, dim, rank, order))
}

/// A random CSR batch over `rows` indices.
fn arb_batch(rows: usize) -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    proptest::collection::vec(0..rows as u32, 0..40).prop_flat_map(|indices| {
        let len = indices.len() as u32;
        proptest::collection::vec(0..=len, 0..6).prop_map(move |mut cuts| {
            cuts.push(0);
            cuts.push(len);
            cuts.sort_unstable();
            cuts.dedup();
            // offsets must start at 0 and end at len; interior cuts arbitrary
            (indices.clone(), cuts)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reuse and naive forward agree bit-for-bit on arbitrary shapes.
    #[test]
    fn forward_strategies_agree((config, seed) in arb_config().prop_flat_map(|c| {
        (Just(c), 0u64..1000)
    }), batch_seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let reuse = TtEmbeddingBag::new(&config, &mut rng);
        let naive = TtEmbeddingBag::from_cores(reuse.cores().clone(), config.num_rows)
            .with_options(TtOptions { forward: ForwardStrategy::Naive, ..TtOptions::default() });

        let mut brng = rand::rngs::StdRng::seed_from_u64(batch_seed);
        use rand::Rng;
        let n = brng.gen_range(1..30usize);
        let indices: Vec<u32> =
            (0..n).map(|_| brng.gen_range(0..config.num_rows as u32)).collect();
        let cut = brng.gen_range(0..=n) as u32;
        let offsets = vec![0u32, cut, n as u32];

        let mut ws = TtWorkspace::new();
        let a = reuse.forward(&indices, &offsets, &mut ws);
        let b = naive.forward(&indices, &offsets, &mut ws);
        prop_assert!(a.max_abs_diff(&b) < 1e-4, "strategies diverged by {}", a.max_abs_diff(&b));
    }

    /// Forward output equals per-row reconstruction + pooling (the oracle).
    #[test]
    fn forward_matches_reconstruction_oracle(
        rows in 6usize..120,
        seed in 0u64..500,
        lookups in proptest::collection::vec(0usize..1_000_000, 1..20),
    ) {
        let config = TtConfig::new(rows, 8, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bag = TtEmbeddingBag::new(&config, &mut rng);
        let indices: Vec<u32> = lookups.iter().map(|&l| (l % rows) as u32).collect();
        let offsets = vec![0u32, indices.len() as u32];

        let mut ws = TtWorkspace::new();
        let got = bag.forward(&indices, &offsets, &mut ws);

        let mut want = vec![0.0f32; 8];
        let mut row = vec![0.0f32; 8];
        for &i in &indices {
            bag.reconstruct_row(i as usize, &mut row);
            for (w, r) in want.iter_mut().zip(&row) {
                *w += r;
            }
        }
        for (g, w) in got.row(0).iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
    }

    /// The fused pooled-lookup+GEMM path matches the materialize-then-pool
    /// path on arbitrary shapes, strategies, and batches.
    #[test]
    fn fused_pooling_matches_materialized_pooling(
        (config, seed) in arb_config().prop_flat_map(|c| (Just(c), 0u64..1000)),
        (indices, offsets) in arb_batch(1_000_000),
        naive in proptest::bool::ANY,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let plain = TtEmbeddingBag::new(&config, &mut rng).with_options(TtOptions {
            forward: if naive { ForwardStrategy::Naive } else { ForwardStrategy::Reuse },
            ..TtOptions::default()
        });
        let fused = TtEmbeddingBag::from_cores(plain.cores().clone(), config.num_rows)
            .with_options(TtOptions { fused_pooling: true, ..plain.options.clone() });
        let indices: Vec<u32> =
            indices.iter().map(|&i| i % config.num_rows as u32).collect();

        let mut ws = TtWorkspace::new();
        let a = plain.forward(&indices, &offsets, &mut ws);
        let b = fused.forward(&indices, &offsets, &mut ws);
        prop_assert!(
            a.max_abs_diff(&b) < 1e-4,
            "fused pooling diverged by {}", a.max_abs_diff(&b)
        );
    }

    /// Quantized inference sessions diverge from the f32 forward by a
    /// bounded amount on arbitrary shapes and batches: bf16 within 2% and
    /// int8 within 6% of the output magnitude.
    #[test]
    fn quantized_inference_divergence_is_bounded(
        (config, seed) in arb_config().prop_flat_map(|c| (Just(c), 0u64..1000)),
        (indices, offsets) in arb_batch(1_000_000),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let table = TtEmbeddingBag::new(&config, &mut rng);
        let indices: Vec<u32> =
            indices.iter().map(|&i| i % config.num_rows as u32).collect();

        let mut ws = TtWorkspace::new();
        let want = table.forward(&indices, &offsets, &mut ws);
        let scale = want.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
        for (precision, tol) in [
            (crate::inference::InferencePrecision::F32, 1e-5),
            (crate::inference::InferencePrecision::Bf16, 0.02),
            (crate::inference::InferencePrecision::Int8, 0.06),
        ] {
            let mut session =
                crate::inference::TtInferenceSession::with_precision(&table, 32, precision);
            let got = session.lookup(&indices, &offsets);
            prop_assert!(
                got.max_abs_diff(&want) < tol * scale,
                "{precision:?} diverged by {} (scale {scale})", got.max_abs_diff(&want)
            );
        }
    }

    /// Aggregated and per-lookup backward produce matching gradients on
    /// arbitrary batches.
    #[test]
    fn backward_strategies_agree(
        rows in 6usize..80,
        seed in 0u64..300,
        lookups in proptest::collection::vec(0usize..1_000_000, 1..24),
    ) {
        let config = TtConfig::new(rows, 8, 3);
        let indices: Vec<u32> = lookups.iter().map(|&l| (l % rows) as u32).collect();
        let cut = (seed as usize) % (indices.len() + 1);
        let offsets = vec![0u32, cut as u32, indices.len() as u32];
        let mut grng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let d_out = Matrix::uniform(2, 8, 1.0, &mut grng);

        let grads_for = |backward: BackwardStrategy| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut bag = TtEmbeddingBag::new(&config, &mut rng).with_options(TtOptions {
                backward,
                fused_update: false,
                deterministic: true,
                ..TtOptions::default()
            });
            let mut ws = TtWorkspace::new();
            let _ = bag.forward(&indices, &offsets, &mut ws);
            bag.backward_grads(&d_out, &mut ws);
            ws.grads().to_vec()
        };
        let agg = grads_for(BackwardStrategy::Aggregated);
        let per = grads_for(BackwardStrategy::PerLookup);
        for (a, p) in agg.iter().zip(&per) {
            for (x, y) in a.iter().zip(p) {
                prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }
    }

    /// The parallel plan builder is bit-identical to the sequential one on
    /// arbitrary shapes and index streams, for both dedup settings. Goes
    /// through `par_build_impl` so the size cutoff cannot mask divergence,
    /// and recycles one plan/scratch pair across cases so dirty-state reuse
    /// is part of the property.
    #[test]
    fn parallel_plan_build_is_bit_identical(
        (indices, offsets) in arb_batch(4000),
        dims in prop_oneof![
            Just(vec![8usize, 8, 8]),
            Just(vec![4usize, 8, 16]),
            Just(vec![16usize, 16]),
            Just(vec![4usize, 4, 4, 4]),
        ],
        dedup in proptest::bool::ANY,
    ) {
        let capacity: usize = dims.iter().product();
        let indices: Vec<u32> = indices.iter().map(|&i| i % capacity as u32).collect();

        let want = LookupPlan::build(&indices, &offsets, &dims, dedup);
        let mut got = LookupPlan::default();
        let mut scratch = crate::plan::PlanScratch::default();
        got.par_build_impl(&indices, &offsets, &dims, dedup, &mut scratch);
        crate::plan::assert_plans_identical(&want, &got);

        // and again into the now-dirty plan with the opposite dedup setting
        let want2 = LookupPlan::build(&indices, &offsets, &dims, !dedup);
        got.par_build_impl(&indices, &offsets, &dims, !dedup, &mut scratch);
        crate::plan::assert_plans_identical(&want2, &got);
    }

    /// Plan invariants hold for arbitrary batches: every lookup maps to a
    /// slot holding its value; parents chain consistently; digit groups
    /// partition each level.
    #[test]
    fn plan_invariants(
        (indices, offsets) in arb_batch(500),
        dedup in proptest::bool::ANY,
    ) {
        let dims = vec![8usize, 8, 8];
        let plan = LookupPlan::build(&indices, &offsets, &dims, dedup);
        let d = dims.len();
        prop_assert_eq!(plan.levels.len(), d);

        // lookups map to slots holding their value
        let last = &plan.levels[d - 1];
        for (j, &idx) in indices.iter().enumerate() {
            prop_assert_eq!(last.values[plan.lookup_slot[j] as usize], idx as u64);
        }
        // parent chaining: value/dims == parent value
        for t in (1..d).rev() {
            let lvl = &plan.levels[t];
            let prev = &plan.levels[t - 1];
            for (slot, &v) in lvl.values.iter().enumerate() {
                let parent = lvl.parent[slot] as usize;
                prop_assert_eq!(prev.values[parent], v / dims[t] as u64);
                prop_assert_eq!(u64::from(lvl.digit[slot]), v % dims[t] as u64);
            }
        }
        // digit groups partition
        for lvl in &plan.levels {
            let total: usize =
                (0..lvl.digit_groups.num_groups()).map(|g| lvl.digit_groups.group(g).len()).sum();
            prop_assert_eq!(total, lvl.len());
        }
        // dedup => strictly sorted values at every level
        if dedup {
            for lvl in &plan.levels {
                prop_assert!(lvl.values.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
