//! Inference sessions with a persistent hot-prefix cache.
//!
//! §III-A motivates reuse with the skewed access pattern: "this observation
//! motivates us to reuse the intermediate result of these popular
//! embeddings". During *training* the reuse buffer lives one batch at a
//! time — every SGD step rewrites the cores. During *inference* the cores
//! are frozen, so the partial products of popular prefixes can persist
//! across batches. [`TtInferenceSession`] keeps an LRU-evicted map from
//! index prefix to its `P_{d-1}` product; under power-law traffic the hit
//! rate approaches the hot fraction of accesses and lookups skip most of
//! the chain.
//!
//! The session borrows the table immutably, so the borrow checker enforces
//! the invariant that makes caching sound: no training while a session is
//! alive.

// Digit-chain loops index parallel arrays by core position, mirroring the
// paper's notation.
#![allow(clippy::needless_range_loop)]

use crate::bag::TtEmbeddingBag;
use crate::plan::LookupPlan;
use el_tensor::gemm::gemm_nn;
use el_tensor::Matrix;
use std::collections::HashMap;

/// A cached partial product with its last-use tick.
struct Entry {
    product: Vec<f32>,
    last_used: u64,
}

/// Frozen-table lookup session with cross-batch prefix caching.
pub struct TtInferenceSession<'a> {
    table: &'a TtEmbeddingBag,
    cache: HashMap<u64, Entry>,
    capacity: usize,
    tick: u64,
    /// Prefix products served from the cache.
    pub hits: u64,
    /// Prefix products computed fresh.
    pub misses: u64,
}

impl<'a> TtInferenceSession<'a> {
    /// A session over `table` caching at most `capacity` prefix products.
    pub fn new(table: &'a TtEmbeddingBag, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            table,
            cache: HashMap::with_capacity(capacity.min(1 << 20)),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Cache hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Live cache entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Cache footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        let d = self.table.order();
        let width = self.table.level_width(d.saturating_sub(2));
        self.cache.len() * (width * 4 + 24)
    }

    /// Sum-pooled lookup with the same semantics as
    /// [`TtEmbeddingBag::forward`], but served through the prefix cache.
    pub fn lookup(&mut self, indices: &[u32], offsets: &[u32]) -> Matrix {
        let cores = self.table.cores();
        let d = self.table.order();
        let n = self.table.dim();
        self.tick += 1;

        let plan = LookupPlan::build(indices, offsets, &cores.row_dims, true);
        let uniques = &plan.levels[d - 1];
        let m_last = *cores.row_dims.last().unwrap() as u64;

        // Resolve every unique index's prefix product, cache-first.
        let prefix_width = self.table.level_width(d - 2);
        let rows_per_prefix = prefix_width / cores.ranks[d - 1];
        let mut rows = vec![0.0f32; uniques.len() * n];
        let slice_last = cores.slice_len(d - 1);
        for (slot, &value) in uniques.values.iter().enumerate() {
            let prefix = value / m_last;
            let digit_last = (value % m_last) as usize;
            if !self.cache.contains_key(&prefix) {
                self.misses += 1;
                let product = compute_prefix_chain(self.table, prefix);
                self.insert(prefix, product);
            } else {
                self.hits += 1;
            }
            let entry = self.cache.get_mut(&prefix).expect("just ensured");
            entry.last_used = self.tick;
            // row = P_{d-1} (rows_per_prefix x R_{d-1}) * G_d[digit]
            gemm_nn(
                rows_per_prefix,
                cores.col_dims[d - 1],
                cores.ranks[d - 1],
                1.0,
                &entry.product,
                &cores.cores[d - 1][digit_last * slice_last..(digit_last + 1) * slice_last],
                0.0,
                &mut rows[slot * n..(slot + 1) * n],
            );
        }

        // Pooling, identical to the training kernel.
        let mut out = Matrix::zeros(plan.batch_size, n);
        for s in 0..plan.batch_size {
            let dst = out.row_mut(s);
            let lo = plan.sample_offsets[s] as usize;
            let hi = plan.sample_offsets[s + 1] as usize;
            for &slot in &plan.lookup_slot[lo..hi] {
                for (dv, rv) in dst.iter_mut().zip(&rows[slot as usize * n..]) {
                    *dv += rv;
                }
            }
        }
        out
    }

    fn insert(&mut self, prefix: u64, product: Vec<f32>) {
        if self.cache.len() >= self.capacity {
            // Evict the least-recently-used quarter in one sweep — O(n)
            // amortized over many inserts, no auxiliary structures.
            let mut ticks: Vec<u64> = self.cache.values().map(|e| e.last_used).collect();
            ticks.sort_unstable();
            let cutoff = ticks[ticks.len() / 4];
            self.cache.retain(|_, e| e.last_used > cutoff);
        }
        self.cache.insert(prefix, Entry { product, last_used: self.tick });
    }
}

/// Computes `P_{d-1} = G_1[i_1] x ... x G_{d-1}[i_{d-1}]` for one prefix.
fn compute_prefix_chain(table: &TtEmbeddingBag, prefix: u64) -> Vec<f32> {
    let cores = table.cores();
    let d = cores.order();
    let mut digits = vec![0usize; d - 1];
    el_tensor::shape::tt_indices(prefix as usize, &cores.row_dims[..d - 1], &mut digits);

    let mut cur: Vec<f32> = cores.slice(0, digits[0]).to_vec();
    let mut p = cores.col_dims[0];
    for k in 1..d - 1 {
        let r_in = cores.ranks[k];
        let cols = cores.col_dims[k] * cores.ranks[k + 1];
        let mut next = vec![0.0f32; p * cols];
        gemm_nn(p, cols, r_in, 1.0, &cur, cores.slice(k, digits[k]), 0.0, &mut next);
        p *= cores.col_dims[k];
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::TtWorkspace;
    use crate::config::TtConfig;
    use rand::{Rng, SeedableRng};

    fn table(rows: usize, seed: u64) -> TtEmbeddingBag {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TtEmbeddingBag::new(&TtConfig::new(rows, 16, 8), &mut rng)
    }

    #[test]
    fn cached_lookup_matches_training_forward() {
        let t = table(500, 1);
        let mut session = TtInferenceSession::new(&t, 64);
        let mut ws = TtWorkspace::new();
        let indices = [3u32, 499, 3, 77, 120, 77];
        let offsets = [0u32, 2, 4, 6];
        let want = t.forward(&indices, &offsets, &mut ws);
        // twice: cold then warm
        let cold = session.lookup(&indices, &offsets);
        let warm = session.lookup(&indices, &offsets);
        assert!(cold.max_abs_diff(&want) < 1e-5);
        assert!(warm.max_abs_diff(&want) < 1e-5);
        assert!(session.hits > 0, "second pass must hit the cache");
    }

    #[test]
    fn skewed_traffic_reaches_high_hit_rates() {
        let t = table(10_000, 2);
        let mut session = TtInferenceSession::new(&t, 512);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..30 {
            // zipf-ish: 80% of lookups to 50 hot rows
            let indices: Vec<u32> = (0..128)
                .map(|_| {
                    if rng.gen_bool(0.8) {
                        rng.gen_range(0..50)
                    } else {
                        rng.gen_range(0..10_000)
                    }
                })
                .collect();
            let offsets: Vec<u32> = (0..=128u32).collect();
            let _ = session.lookup(&indices, &offsets);
        }
        assert!(
            session.hit_rate() > 0.5,
            "expected a warm cache on skewed traffic, hit rate {}",
            session.hit_rate()
        );
    }

    #[test]
    fn capacity_is_enforced() {
        let t = table(5_000, 4);
        let mut session = TtInferenceSession::new(&t, 16);
        for start in (0..4_000u32).step_by(100) {
            let indices: Vec<u32> = (start..start + 50).collect();
            let offsets: Vec<u32> = (0..=50u32).collect();
            let _ = session.lookup(&indices, &offsets);
        }
        assert!(session.len() <= 16 + 1, "cache exceeded capacity: {} entries", session.len());
    }

    #[test]
    fn eviction_preserves_correctness() {
        let t = table(2_000, 5);
        let mut session = TtInferenceSession::new(&t, 4); // brutal eviction
        let mut ws = TtWorkspace::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let indices: Vec<u32> = (0..32).map(|_| rng.gen_range(0..2_000)).collect();
            let offsets: Vec<u32> = (0..=32u32).collect();
            let want = t.forward(&indices, &offsets, &mut ws);
            let got = session.lookup(&indices, &offsets);
            assert!(got.max_abs_diff(&want) < 1e-5);
        }
    }

    #[test]
    fn four_core_tables_work() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let cfg = TtConfig::with_order(1_000, 16, 6, 4);
        let t = TtEmbeddingBag::new(&cfg, &mut rng);
        let mut session = TtInferenceSession::new(&t, 32);
        let mut ws = TtWorkspace::new();
        let indices = [0u32, 999, 123, 123];
        let offsets = [0u32, 4];
        let want = t.forward(&indices, &offsets, &mut ws);
        let got = session.lookup(&indices, &offsets);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }
}
