//! Inference sessions with a persistent hot-prefix cache.
//!
//! §III-A motivates reuse with the skewed access pattern: "this observation
//! motivates us to reuse the intermediate result of these popular
//! embeddings". During *training* the reuse buffer lives one batch at a
//! time — every SGD step rewrites the cores. During *inference* the cores
//! are frozen, so the partial products of popular prefixes can persist
//! across batches. [`TtInferenceSession`] keeps an LRU-evicted map from
//! index prefix to its `P_{d-1}` product; under power-law traffic the hit
//! rate approaches the hot fraction of accesses and lookups skip most of
//! the chain.
//!
//! The session borrows the table immutably, so the borrow checker enforces
//! the invariant that makes caching sound: no training while a session is
//! alive.

// Digit-chain loops index parallel arrays by core position, mirroring the
// paper's notation.
#![allow(clippy::needless_range_loop)]

use crate::bag::TtEmbeddingBag;
use crate::plan::{LookupPlan, PlanScratch};
use el_tensor::gemm::gemm_nn;
use el_tensor::Matrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Numeric storage of the cached prefix products (training stays f32; this
/// only affects the inference cache). Low-bit storage shrinks the resident
/// cache — the embedding-compression direction the paper's §I calls
/// "feasible for inference" — at a bounded accuracy cost (see the
/// divergence proptests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum InferencePrecision {
    /// Full-precision products; bit-identical to the training forward.
    #[default]
    F32,
    /// bfloat16 products (2x smaller cache, ~2^-8 relative error).
    Bf16,
    /// int8 products with per-product affine parameters (4x smaller cache).
    Int8,
}

/// Storage of one cached prefix product, in the session's precision.
enum ProductStore {
    F32(Vec<f32>),
    Bf16(Vec<u16>),
    Int8 { codes: Vec<i8>, scale: f32, zero: f32 },
}

impl ProductStore {
    fn empty(precision: InferencePrecision) -> Self {
        match precision {
            InferencePrecision::F32 => ProductStore::F32(Vec::new()),
            InferencePrecision::Bf16 => ProductStore::Bf16(Vec::new()),
            InferencePrecision::Int8 => {
                ProductStore::Int8 { codes: Vec::new(), scale: 1.0, zero: 0.0 }
            }
        }
    }

    /// Encodes `src` into this store, recycling the existing buffer. The
    /// variant is fixed at slot creation (one precision per session).
    fn store(&mut self, src: &[f32]) {
        match self {
            ProductStore::F32(buf) => {
                buf.clear();
                buf.extend_from_slice(src);
            }
            ProductStore::Bf16(buf) => {
                buf.clear();
                buf.extend(src.iter().map(|&v| crate::quantized::f32_to_bf16(v)));
            }
            ProductStore::Int8 { codes, scale, zero } => {
                let (s, z) = crate::quantized::row_params(src);
                *scale = s;
                *zero = z;
                codes.clear();
                codes.extend(src.iter().map(|&v| crate::quantized::quantize(v, s, z)));
            }
        }
    }

    /// Decodes into `out` (`out.len()` must equal the stored length).
    fn dequantize_into(&self, out: &mut [f32]) {
        match self {
            ProductStore::F32(buf) => out.copy_from_slice(buf),
            ProductStore::Bf16(buf) => {
                for (o, &q) in out.iter_mut().zip(buf) {
                    *o = crate::quantized::bf16_to_f32(q);
                }
            }
            ProductStore::Int8 { codes, scale, zero } => {
                for (o, &q) in out.iter_mut().zip(codes) {
                    *o = q as f32 * scale + zero;
                }
            }
        }
    }

    /// Heap bytes of the stored product (+ affine parameters for int8).
    fn bytes(&self) -> usize {
        match self {
            ProductStore::F32(buf) => buf.len() * 4,
            ProductStore::Bf16(buf) => buf.len() * 2,
            ProductStore::Int8 { codes, .. } => codes.len() + 8,
        }
    }
}

/// One cached partial product in the slot slab.
struct Slot {
    prefix: u64,
    product: ProductStore,
    /// Second-chance bit: set on every use, cleared (once) by the clock
    /// sweep before a slot becomes an eviction candidate.
    referenced: bool,
}

/// Frozen-table lookup session with cross-batch prefix caching.
///
/// Eviction is clock/second-chance over a fixed slot slab: every miss at
/// capacity advances a hand over the slots, skipping (and un-marking)
/// recently referenced entries and reclaiming the first unmarked one — O(1)
/// amortized, no per-entry timestamps, no full-map sweeps. The reclaimed
/// slot's product buffer is reused in place, so a full session reaches a
/// steady state with no per-miss allocation beyond `HashMap` churn.
pub struct TtInferenceSession<'a> {
    table: &'a TtEmbeddingBag,
    /// prefix -> slot index.
    map: HashMap<u64, u32>,
    slots: Vec<Slot>,
    /// Clock hand: next eviction candidate.
    hand: usize,
    capacity: usize,
    /// Storage precision of the cached prefix products.
    precision: InferencePrecision,
    /// Ping-pong scratch for prefix-chain products (reused across misses).
    chain_ping: Vec<f32>,
    chain_pong: Vec<f32>,
    digit_scratch: Vec<usize>,
    /// Per-unique decoded prefix products, snapshotted at resolution time
    /// (reused across lookups).
    dequant_arena: Vec<f32>,
    /// Recycled batch analysis (plan + sort scratch) so steady-state
    /// [`TtInferenceSession::lookup_into`] allocates nothing.
    plan: LookupPlan,
    plan_scratch: PlanScratch,
    /// Prefix products served from the cache. Atomics so a serving tier can
    /// snapshot counters through a shared reference while the session is
    /// parked between batches; all updates go through `&mut self` and use
    /// relaxed ordering (they are statistics, not synchronization).
    hits: AtomicU64,
    /// Prefix products computed fresh.
    misses: AtomicU64,
    /// Cached products displaced by the clock hand.
    evictions: AtomicU64,
}

impl<'a> TtInferenceSession<'a> {
    /// A full-precision session over `table` caching at most `capacity`
    /// prefix products.
    pub fn new(table: &'a TtEmbeddingBag, capacity: usize) -> Self {
        Self::with_precision(table, capacity, InferencePrecision::F32)
    }

    /// A session whose cached products are stored in `precision`. Training
    /// is untouched (the table stays f32); only the inference cache and the
    /// lookups served from it take the quantization error, which the
    /// divergence proptests bound.
    pub fn with_precision(
        table: &'a TtEmbeddingBag,
        capacity: usize,
        precision: InferencePrecision,
    ) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let reserve = capacity.min(1 << 20);
        Self {
            table,
            map: HashMap::with_capacity(reserve),
            slots: Vec::with_capacity(reserve),
            hand: 0,
            capacity,
            precision,
            chain_ping: Vec::new(),
            chain_pong: Vec::new(),
            digit_scratch: Vec::new(),
            dequant_arena: Vec::new(),
            plan: LookupPlan::default(),
            plan_scratch: PlanScratch::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Storage precision of the cached products.
    pub fn precision(&self) -> InferencePrecision {
        self.precision
    }

    /// Embedding dimension of the served table.
    pub fn dim(&self) -> usize {
        self.table.dim()
    }

    /// Unique rows of the most recent batch (0 before any lookup) — the
    /// cross-request dedup the serving tier reports.
    pub fn last_unique_rows(&self) -> usize {
        self.plan.num_rows()
    }

    /// Prefix products served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Prefix products computed fresh so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached products displaced by the clock hand so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Cache hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = (self.hits(), self.misses());
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Live cache entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Cache footprint in bytes, per the actual storage precision.
    pub fn footprint_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.product.bytes() + std::mem::size_of::<Slot>()).sum()
    }

    /// Sum-pooled lookup with the same semantics as
    /// [`TtEmbeddingBag::forward`], but served through the prefix cache.
    ///
    /// Allocates the output matrix; the serving hot path uses
    /// [`TtInferenceSession::lookup_into`] instead.
    pub fn lookup(&mut self, indices: &[u32], offsets: &[u32]) -> Matrix {
        let batch_size = offsets.len().saturating_sub(1);
        let mut out = Matrix::zeros(batch_size, self.table.dim());
        self.lookup_into(indices, offsets, out.as_mut_slice());
        out
    }

    /// Allocation-free twin of [`TtInferenceSession::lookup`]: serves the
    /// batch through the prefix cache into caller-provided `out`
    /// (`batch_size * dim` floats, row-major, overwritten). Batch analysis
    /// recycles the session-owned plan, so once the cache and scratch have
    /// grown to the working batch shape the steady state allocates nothing
    /// beyond `HashMap` churn on cold prefixes.
    ///
    /// # Panics
    /// Panics if the CSR structure is malformed (see [`LookupPlan::build`])
    /// or `out` does not match `batch_size * dim`.
    // CONTRACT: zero-alloc
    pub fn lookup_into(&mut self, indices: &[u32], offsets: &[u32], out: &mut [f32]) {
        let table = self.table;
        let cores = table.cores();
        let d = table.order();
        let n = table.dim();

        // The plan cycles through the session so analysis reuses the
        // previous batch's buffers (mem::take is a pointer swap, not an
        // allocation).
        let mut plan = std::mem::take(&mut self.plan);
        let mut scratch = std::mem::take(&mut self.plan_scratch);
        plan.build_into(indices, offsets, &cores.row_dims, true, &mut scratch);
        assert_eq!(out.len(), plan.batch_size * n, "output buffer shape mismatch");
        let uniques = &plan.levels[d - 1];
        // PANIC-OK: row_dims is non-empty (build_into asserts d >= 2).
        let m_last = *cores.row_dims.last().unwrap() as u64;

        // Pass 1: resolve every unique index's prefix product, cache-first,
        // decoding each unique product (once per unique, not per lookup)
        // into the recycled arena.
        let prefix_width = table.level_width(d - 2);
        let rows_per_prefix = prefix_width / cores.ranks[d - 1];
        let slice_last = cores.slice_len(d - 1);
        // The product is snapshotted into the arena at resolution time
        // because a later admit in the same batch may evict this slot (the
        // clock hand does not know about in-flight resolutions).
        self.dequant_arena.resize(uniques.len() * prefix_width, 0.0);
        for (slot, &value) in uniques.values.iter().enumerate() {
            let prefix = value / m_last;
            let cached = match self.map.get(&prefix) {
                Some(&s) => {
                    *self.hits.get_mut() += 1;
                    self.slots[s as usize].referenced = true;
                    s as usize
                }
                None => {
                    *self.misses.get_mut() += 1;
                    self.admit(prefix)
                }
            };
            self.slots[cached]
                .product
                .dequantize_into(&mut self.dequant_arena[slot * prefix_width..][..prefix_width]);
        }

        // Pass 2: pooling fused into the final chain GEMM — each lookup's
        // `P_{d-1} (rows_per_prefix x R_{d-1}) * G_d[digit]` accumulates
        // (beta = 1) straight into its sample's output row, so the
        // `(uniques x dim)` row matrix of the former two-phase schedule is
        // never materialized.
        out.fill(0.0);
        for s in 0..plan.batch_size {
            let dst = &mut out[s * n..(s + 1) * n];
            let lo = plan.sample_offsets[s] as usize;
            let hi = plan.sample_offsets[s + 1] as usize;
            for &slot in &plan.lookup_slot[lo..hi] {
                let slot = slot as usize;
                let digit_last = (uniques.values[slot] % m_last) as usize;
                gemm_nn(
                    rows_per_prefix,
                    cores.col_dims[d - 1],
                    cores.ranks[d - 1],
                    1.0,
                    &self.dequant_arena[slot * prefix_width..][..prefix_width],
                    &cores.cores[d - 1][digit_last * slice_last..(digit_last + 1) * slice_last],
                    1.0,
                    dst,
                );
            }
        }
        self.plan = plan;
        self.plan_scratch = scratch;
    }

    /// Computes `prefix`'s product and caches it, evicting with the clock
    /// hand when at capacity. Returns the slot index.
    fn admit(&mut self, prefix: u64) -> usize {
        self.compute_prefix_chain(prefix);
        let idx = if self.slots.len() < self.capacity {
            // New entries start unreferenced: they must be touched again
            // before the hand returns or they are the next to go, which is
            // what keeps one-shot cold prefixes from displacing hot ones.
            self.slots.push(Slot {
                prefix,
                product: ProductStore::empty(self.precision),
                referenced: false,
            });
            self.slots.len() - 1
        } else {
            // Second chance: skip referenced slots (clearing their bit) so
            // anything touched since the last sweep survives one more lap.
            // Terminates within two laps — the first lap clears every bit.
            loop {
                if self.hand >= self.slots.len() {
                    self.hand = 0;
                }
                if !self.slots[self.hand].referenced {
                    break;
                }
                self.slots[self.hand].referenced = false;
                self.hand += 1;
            }
            let idx = self.hand;
            self.hand += 1;
            *self.evictions.get_mut() += 1;
            self.map.remove(&self.slots[idx].prefix);
            self.slots[idx].prefix = prefix;
            self.slots[idx].referenced = false;
            idx
        };
        // Encode the product into the slot's recycled buffer, in the
        // session's storage precision.
        let slot = &mut self.slots[idx];
        slot.product.store(&self.chain_ping);
        self.map.insert(prefix, idx as u32);
        idx
    }

    /// Computes `P_{d-1} = G_1[i_1] x ... x G_{d-1}[i_{d-1}]` for one
    /// prefix into `self.chain_ping`, ping-ponging through session-owned
    /// scratch so repeated misses allocate nothing once warmed up.
    fn compute_prefix_chain(&mut self, prefix: u64) {
        let cores = self.table.cores();
        let d = cores.order();
        self.digit_scratch.resize(d - 1, 0);
        el_tensor::shape::tt_indices(
            prefix as usize,
            &cores.row_dims[..d - 1],
            &mut self.digit_scratch,
        );

        self.chain_ping.clear();
        self.chain_ping.extend_from_slice(cores.slice(0, self.digit_scratch[0]));
        let mut p = cores.col_dims[0];
        for k in 1..d - 1 {
            let r_in = cores.ranks[k];
            let cols = cores.col_dims[k] * cores.ranks[k + 1];
            self.chain_pong.clear();
            self.chain_pong.resize(p * cols, 0.0);
            gemm_nn(
                p,
                cols,
                r_in,
                1.0,
                &self.chain_ping,
                cores.slice(k, self.digit_scratch[k]),
                0.0,
                &mut self.chain_pong,
            );
            p *= cores.col_dims[k];
            std::mem::swap(&mut self.chain_ping, &mut self.chain_pong);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::TtWorkspace;
    use crate::config::TtConfig;
    use rand::{Rng, SeedableRng};

    fn table(rows: usize, seed: u64) -> TtEmbeddingBag {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TtEmbeddingBag::new(&TtConfig::new(rows, 16, 8), &mut rng)
    }

    #[test]
    fn cached_lookup_matches_training_forward() {
        let t = table(500, 1);
        let mut session = TtInferenceSession::new(&t, 64);
        let mut ws = TtWorkspace::new();
        let indices = [3u32, 499, 3, 77, 120, 77];
        let offsets = [0u32, 2, 4, 6];
        let want = t.forward(&indices, &offsets, &mut ws);
        // twice: cold then warm
        let cold = session.lookup(&indices, &offsets);
        let warm = session.lookup(&indices, &offsets);
        assert!(cold.max_abs_diff(&want) < 1e-5);
        assert!(warm.max_abs_diff(&want) < 1e-5);
        assert!(session.hits() > 0, "second pass must hit the cache");
    }

    #[test]
    fn bf16_session_divergence_is_bounded() {
        let t = table(500, 9);
        let mut ws = TtWorkspace::new();
        let mut session = TtInferenceSession::with_precision(&t, 64, InferencePrecision::Bf16);
        assert_eq!(session.precision(), InferencePrecision::Bf16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        for _ in 0..5 {
            let indices: Vec<u32> = (0..40).map(|_| rng.gen_range(0..500)).collect();
            let offsets: Vec<u32> = (0..=10).map(|s| s * 4).collect();
            let want = t.forward(&indices, &offsets, &mut ws);
            let got = session.lookup(&indices, &offsets);
            let scale = want.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
            assert!(
                got.max_abs_diff(&want) < 0.02 * scale,
                "bf16 diverged by {} (scale {scale})",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn int8_session_divergence_is_bounded() {
        let t = table(500, 11);
        let mut ws = TtWorkspace::new();
        let mut session = TtInferenceSession::with_precision(&t, 64, InferencePrecision::Int8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..5 {
            let indices: Vec<u32> = (0..40).map(|_| rng.gen_range(0..500)).collect();
            let offsets: Vec<u32> = (0..=10).map(|s| s * 4).collect();
            let want = t.forward(&indices, &offsets, &mut ws);
            let got = session.lookup(&indices, &offsets);
            let scale = want.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
            assert!(
                got.max_abs_diff(&want) < 0.05 * scale,
                "int8 diverged by {} (scale {scale})",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn quantized_sessions_shrink_the_cache_footprint() {
        let t = table(2_000, 13);
        let indices: Vec<u32> = (0..256).collect();
        let offsets: Vec<u32> = (0..=256u32).collect();
        let foot = |precision| {
            let mut s = TtInferenceSession::with_precision(&t, 1024, precision);
            let _ = s.lookup(&indices, &offsets);
            (s.footprint_bytes(), s.len())
        };
        let (f32b, n32) = foot(InferencePrecision::F32);
        let (bf16b, n16) = foot(InferencePrecision::Bf16);
        let (int8b, n8) = foot(InferencePrecision::Int8);
        assert_eq!(n32, n16);
        assert_eq!(n32, n8);
        assert!(bf16b < f32b, "bf16 cache {bf16b} should be smaller than f32 {f32b}");
        assert!(int8b < bf16b, "int8 cache {int8b} should be smaller than bf16 {bf16b}");
    }

    #[test]
    fn skewed_traffic_reaches_high_hit_rates() {
        let t = table(10_000, 2);
        let mut session = TtInferenceSession::new(&t, 512);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..30 {
            // zipf-ish: 80% of lookups to 50 hot rows
            let indices: Vec<u32> = (0..128)
                .map(|_| {
                    if rng.gen_bool(0.8) {
                        rng.gen_range(0..50)
                    } else {
                        rng.gen_range(0..10_000)
                    }
                })
                .collect();
            let offsets: Vec<u32> = (0..=128u32).collect();
            let _ = session.lookup(&indices, &offsets);
        }
        assert!(
            session.hit_rate() > 0.5,
            "expected a warm cache on skewed traffic, hit rate {}",
            session.hit_rate()
        );
    }

    #[test]
    fn capacity_is_enforced() {
        let t = table(5_000, 4);
        let mut session = TtInferenceSession::new(&t, 16);
        for start in (0..4_000u32).step_by(100) {
            let indices: Vec<u32> = (start..start + 50).collect();
            let offsets: Vec<u32> = (0..=50u32).collect();
            let _ = session.lookup(&indices, &offsets);
        }
        assert!(session.len() <= 16 + 1, "cache exceeded capacity: {} entries", session.len());
    }

    #[test]
    fn eviction_preserves_correctness() {
        let t = table(2_000, 5);
        let mut session = TtInferenceSession::new(&t, 4); // brutal eviction
        let mut ws = TtWorkspace::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let indices: Vec<u32> = (0..32).map(|_| rng.gen_range(0..2_000)).collect();
            let offsets: Vec<u32> = (0..=32u32).collect();
            let want = t.forward(&indices, &offsets, &mut ws);
            let got = session.lookup(&indices, &offsets);
            assert!(got.max_abs_diff(&want) < 1e-5);
        }
    }

    #[test]
    fn clock_eviction_keeps_hot_prefixes_resident() {
        let t = table(4_096, 8);
        let m_last = *t.cores().row_dims.last().unwrap() as u32;
        // capacity 4 with 32 rotating cold prefixes: the cold stream always
        // misses, but the hot prefix is referenced every round so the
        // second-chance bit must keep it resident throughout.
        let mut session = TtInferenceSession::new(&t, 4);
        let rounds = 64u32;
        for round in 0..rounds {
            let cold = (round % 32 + 1) * m_last; // distinct prefix per round
            let indices = [0u32, cold];
            let offsets = [0u32, 2];
            let _ = session.lookup(&indices, &offsets);
        }
        assert!(
            session.hits() >= u64::from(rounds) - 1,
            "hot prefix was evicted: only {} hits over {rounds} rounds",
            session.hits()
        );
        assert!(session.len() <= 4);
        assert!(session.evictions() > 0, "cold stream at capacity 4 must evict");
    }

    #[test]
    fn four_core_tables_work() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let cfg = TtConfig::with_order(1_000, 16, 6, 4);
        let t = TtEmbeddingBag::new(&cfg, &mut rng);
        let mut session = TtInferenceSession::new(&t, 32);
        let mut ws = TtWorkspace::new();
        let indices = [0u32, 999, 123, 123];
        let offsets = [0u32, 4];
        let want = t.forward(&indices, &offsets, &mut ws);
        let got = session.lookup(&indices, &offsets);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }
}
