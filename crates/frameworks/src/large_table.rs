//! Single very-large embedding table training (paper Figure 13).
//!
//! The paper constructs one 40M-row, dim-128 table (~19 GB — beyond a
//! single 16 GB GPU) and compares training throughput across worker counts
//! for three placements:
//!
//! * **EL-Rec** — Eff-TT compression makes the table fit on *every*
//!   worker; data-parallel training's only communication is the (tiny)
//!   all-reduce of core gradients;
//! * **HugeCTR-style** — row-wise model-parallel shards: every batch
//!   requires an all-to-all to fetch embeddings from their owners in the
//!   forward phase and to return gradients in the backward phase;
//! * **TorchRec-style** — column-wise shards: each worker computes its
//!   column slice for the whole batch, then an all-gather assembles full
//!   embeddings (and the reverse scatters gradients).
//!
//! Kernels run for real on a proportionally scaled table (this machine
//! cannot hold 19 GB); per-batch compute cost of an embedding lookup is
//! driven by batch size, not table rows, so the scaled measurement
//! transfers. Communication is metered at *full* size — it depends only on
//! batch size, dim and worker count.

use el_core::{TtConfig, TtEmbeddingBag, TtWorkspace};
use el_dlrm::embedding_bag::EmbeddingBag;
use el_pipeline::device::{CommMeter, DeviceSpec};
use el_pipeline::parallel::ring_allreduce_bytes;
use rand::SeedableRng;
use std::time::Instant;

/// Placement strategy for the large table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardingStrategy {
    /// Replicated Eff-TT table, data parallel (EL-Rec).
    ElRecTt,
    /// Row-wise model-parallel shards (HugeCTR).
    RowSharded,
    /// Column-wise model-parallel shards (TorchRec).
    ColumnSharded,
}

impl ShardingStrategy {
    /// Display name for bench output.
    pub fn name(&self) -> &'static str {
        match self {
            ShardingStrategy::ElRecTt => "EL-Rec (TT, data parallel)",
            ShardingStrategy::RowSharded => "HugeCTR (row sharding)",
            ShardingStrategy::ColumnSharded => "TorchRec (column sharding)",
        }
    }
}

/// Parameters of the Figure 13 experiment.
#[derive(Clone, Copy, Debug)]
pub struct LargeTableParams {
    /// Logical table rows (the paper: 40M).
    pub rows: usize,
    /// Rows actually materialized for dense measurements (memory cap).
    pub measured_rows: usize,
    /// Embedding dimension (the paper: 128).
    pub dim: usize,
    /// TT rank for the EL-Rec variant.
    pub tt_rank: usize,
    /// Samples per batch.
    pub batch_size: usize,
    /// Lookups per sample.
    pub lookups_per_sample: usize,
    /// Training batches to measure.
    pub num_batches: u64,
    /// Number of workers (GPUs).
    pub workers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LargeTableParams {
    fn default() -> Self {
        Self {
            rows: 40_000_000,
            measured_rows: 1_000_000,
            dim: 128,
            tt_rank: 32,
            batch_size: 1024,
            lookups_per_sample: 1,
            num_batches: 8,
            workers: 4,
            seed: 3,
        }
    }
}

/// Throughput result for one strategy.
#[derive(Clone, Debug)]
pub struct LargeTableResult {
    /// Strategy display name.
    pub name: String,
    /// Simulated samples/second at the configured worker count.
    pub samples_per_sec: f64,
    /// Metered communication per batch.
    pub meter: CommMeter,
    /// Per-worker device bytes the placement needs.
    pub device_bytes_per_worker: usize,
}

fn zipf_batch(params: &LargeTableParams, rows: usize, k: u64) -> Vec<u32> {
    use rand_distr_like::sample_zipf;
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed.wrapping_add(k));
    (0..params.batch_size * params.lookups_per_sample)
        .map(|_| sample_zipf(rows as u64, 1.05, &mut rng) as u32)
        .collect()
}

/// Inverse-CDF Zipf sampler (kept local: el-data's generators carry extra
/// structure this microbench does not need).
mod rand_distr_like {
    use rand::Rng;

    pub fn sample_zipf(n: u64, s: f64, rng: &mut impl Rng) -> u64 {
        // rejection-free approximation: u^( -1/(s-1) ) style tail; for the
        // microbench only the skew matters, not exact Zipf constants.
        let u: f64 = rng.gen_range(0.0..1.0);
        let x = ((n as f64).powf(1.0 - s) * u + (1.0 - u)).powf(1.0 / (1.0 - s));
        (x as u64).clamp(1, n) - 1
    }
}

/// Measures/simulates one strategy's training throughput.
pub fn large_table_throughput(
    strategy: ShardingStrategy,
    params: &LargeTableParams,
    device: &DeviceSpec,
) -> LargeTableResult {
    match strategy {
        ShardingStrategy::ElRecTt => elrec_tt(params, device),
        ShardingStrategy::RowSharded => dense_sharded(params, device, false),
        ShardingStrategy::ColumnSharded => dense_sharded(params, device, true),
    }
}

fn elrec_tt(params: &LargeTableParams, device: &DeviceSpec) -> LargeTableResult {
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    // The TT table is built at FULL size — compression is the point.
    let cfg = TtConfig::new(params.rows, params.dim, params.tt_rank);
    let mut table = TtEmbeddingBag::new(&cfg, &mut rng);
    let mut ws = TtWorkspace::new();
    let offsets: Vec<u32> =
        (0..=params.batch_size as u32).map(|s| s * params.lookups_per_sample as u32).collect();

    // TIMING: calibrates the simulated per-step TT cost; this is the
    // measurement the whole projection rests on.
    let start = Instant::now();
    for k in 0..params.num_batches {
        let indices = zipf_batch(params, params.rows, k);
        let out = table.forward(&indices, &offsets, &mut ws);
        table.backward_sgd(&out, &mut ws, 0.01);
    }
    let c_tt = start.elapsed().as_secs_f64() / params.num_batches as f64;

    // Data parallel: every device trains its own batch concurrently. The
    // only communication is the ring all-reduce of core gradients, which
    // NCCL routes over NVLink and overlaps with the backward pass
    // (gradient bucketing), so the visible step cost is the max of the two.
    let mut meter = CommMeter::new();
    let ring = ring_allreduce_bytes(table.param_count(), params.workers);
    meter.p2p((ring * params.num_batches) as usize);
    let compute = c_tt / device.tt_scale;
    let comm = ring as f64 / device.p2p_bps;
    let step_time = compute.max(comm);
    let samples_per_step = (params.batch_size * params.workers) as f64;
    LargeTableResult {
        name: ShardingStrategy::ElRecTt.name().into(),
        samples_per_sec: samples_per_step / step_time,
        meter,
        device_bytes_per_worker: table.footprint_bytes(),
    }
}

fn dense_sharded(
    params: &LargeTableParams,
    device: &DeviceSpec,
    column_wise: bool,
) -> LargeTableResult {
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let w = params.workers as f64;
    // Measure dense lookup/update cost on a scaled replica; per-batch cost
    // is gather/scatter over `batch * lookups` rows regardless of table
    // size. Column sharding stores a dim/W slice of every row.
    let dim = if column_wise { (params.dim / params.workers).max(1) } else { params.dim };
    let mut table = EmbeddingBag::new(params.measured_rows, dim, 0.05, &mut rng);
    let offsets: Vec<u32> =
        (0..=params.batch_size as u32).map(|s| s * params.lookups_per_sample as u32).collect();

    // TIMING: calibrates the simulated dense gather/scatter cost.
    let start = Instant::now();
    for k in 0..params.num_batches {
        let indices = zipf_batch(params, params.measured_rows, k);
        let out = table.forward(&indices, &offsets);
        table.backward_sgd(&indices, &offsets, &out, 0.01);
    }
    let c_batch = start.elapsed().as_secs_f64() / params.num_batches as f64;

    // Global batch scales with workers (the standard multi-GPU convention).
    // Row sharding: each device owns 1/W of the rows and in expectation
    // gathers (batch*W)/W = batch rows per step -> per-device compute is
    // one measured batch. Column sharding: each device computes its dim/W
    // slice for ALL batch*W samples -> W measured (narrow) batches.
    let per_device_compute = if column_wise { c_batch * w } else { c_batch } / device.gather_scale;

    // All-to-all embeddings forward + gradients backward: per step the
    // fabric carries 2 * batchW * dim * 4 * (W-1)/W bytes, spread over W
    // links. Arbitrary-peer all-to-all crosses the PCIe switch on the
    // p3.8xlarge topology (NVLink is pairwise only), and it sits on the
    // critical path — the MLP cannot start before the exchange.
    let global_batch = params.batch_size * params.workers * params.lookups_per_sample;
    let a2a_total = 2.0 * (global_batch * params.dim * 4) as f64 * (w - 1.0) / w;
    let per_device_comm =
        a2a_total / w / device.pcie_bps + device.kernel_launch_s * 2.0 * (params.workers as f64);
    let mut meter = CommMeter::new();
    meter.p2p((a2a_total * params.num_batches as f64) as usize);
    meter.launches(params.num_batches as usize * params.workers * 2);

    let step_time = per_device_compute + per_device_comm;
    let samples_per_step = (params.batch_size * params.workers) as f64;
    let name = if column_wise {
        ShardingStrategy::ColumnSharded.name()
    } else {
        ShardingStrategy::RowSharded.name()
    };
    LargeTableResult {
        name: name.into(),
        samples_per_sec: samples_per_step / step_time,
        meter,
        device_bytes_per_worker: params.rows * params.dim * 4 / params.workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> LargeTableParams {
        LargeTableParams {
            rows: 100_000,
            measured_rows: 100_000,
            dim: 32,
            tt_rank: 8,
            batch_size: 256,
            lookups_per_sample: 1,
            num_batches: 3,
            workers: 4,
            seed: 1,
        }
    }

    #[test]
    fn all_strategies_produce_throughput() {
        let p = small_params();
        let dev = DeviceSpec::v100();
        for s in [
            ShardingStrategy::ElRecTt,
            ShardingStrategy::RowSharded,
            ShardingStrategy::ColumnSharded,
        ] {
            let r = large_table_throughput(s, &p, &dev);
            assert!(r.samples_per_sec > 0.0, "{}", r.name);
        }
    }

    #[test]
    fn tt_fits_where_dense_does_not() {
        let p = LargeTableParams::default();
        let dev = DeviceSpec::v100();
        let elrec = large_table_throughput(ShardingStrategy::ElRecTt, &p, &dev);
        // full dense table: 40M x 128 x 4B = ~20 GB > 16 GB HBM
        let dense_bytes = p.rows * p.dim * 4;
        assert!(!dev.fits(dense_bytes));
        assert!(dev.fits(elrec.device_bytes_per_worker), "TT must fit a single device");
    }

    #[test]
    fn model_parallel_strategies_pay_p2p() {
        let p = small_params();
        let dev = DeviceSpec::v100();
        let row = large_table_throughput(ShardingStrategy::RowSharded, &p, &dev);
        let col = large_table_throughput(ShardingStrategy::ColumnSharded, &p, &dev);
        let tt = large_table_throughput(ShardingStrategy::ElRecTt, &p, &dev);
        assert!(row.meter.p2p_bytes > 0);
        assert!(col.meter.p2p_bytes > 0);
        // the TT all-reduce is tiny next to per-batch embedding exchange
        // amortized over the same batches
        assert!(tt.meter.p2p_bytes < row.meter.p2p_bytes * 100);
    }

    #[test]
    fn zipf_batches_are_skewed_and_in_range() {
        let p = small_params();
        let batch = zipf_batch(&p, 1000, 0);
        assert!(batch.iter().all(|&i| i < 1000));
        let low = batch.iter().filter(|&&i| i < 100).count();
        assert!(
            low * 2 > batch.len(),
            "zipf sample should concentrate on small ranks: {low}/{}",
            batch.len()
        );
    }
}
