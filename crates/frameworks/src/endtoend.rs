//! End-to-end framework emulations (paper Figure 11, Table IV).
//!
//! Every framework trains the *same* model mathematics on the same data —
//! what differs is where embedding parameters live and what crosses the
//! bus. Compute time is measured; bus traffic is metered and converted to
//! time by the device model, so the reported end-to-end numbers carry the
//! shape of the paper's single-GPU comparison.

use el_core::TtOptions;
use el_data::stats::AccessHistogram;
use el_data::{MiniBatch, SyntheticDataset};
use el_dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer};
use el_pipeline::device::{CommMeter, DeviceSpec};
use el_pipeline::server::{HostServer, ServerMode};
use el_pipeline::trainer::{PipelineConfig, PipelineTrainer};
use el_reorder::{IndexBijection, ReorderConfig, Reorderer};
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Which framework strategy to emulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameworkKind {
    /// Facebook DLRM: every large table host-resident, synchronous PS.
    DlrmPs,
    /// FAE: hot embeddings device-resident, cold batches pay the host.
    Fae,
    /// TT-Rec: TT-compressed tables with unoptimized kernels.
    TtRec,
    /// EL-Rec: Eff-TT kernels plus locality-based index reordering.
    ElRec,
}

impl FrameworkKind {
    /// Display name used in bench output.
    pub fn name(&self) -> &'static str {
        match self {
            FrameworkKind::DlrmPs => "DLRM (CPU+GPU)",
            FrameworkKind::Fae => "FAE",
            FrameworkKind::TtRec => "TT-Rec",
            FrameworkKind::ElRec => "EL-Rec",
        }
    }

    /// All four end-to-end contenders in the paper's order.
    pub fn all() -> [FrameworkKind; 4] {
        [FrameworkKind::DlrmPs, FrameworkKind::Fae, FrameworkKind::TtRec, FrameworkKind::ElRec]
    }
}

/// Shared run parameters.
#[derive(Clone, Copy, Debug)]
pub struct RunParams {
    /// Samples per batch (the paper uses 4K).
    pub batch_size: usize,
    /// First training batch.
    pub first: u64,
    /// Number of training batches.
    pub num_batches: u64,
    /// Embedding dimension.
    pub dim: usize,
    /// Tables at or above this row count are "large" (compressed /
    /// host-resident depending on the framework).
    pub large_threshold: usize,
    /// TT rank for compressed frameworks (paper: 128 on V100, 64 on T4).
    pub tt_rank: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Model init seed (shared so all frameworks start from equivalent
    /// states).
    pub seed: u64,
    /// EL-Rec reordering hot ratio.
    pub hot_ratio: f64,
    /// FAE device-cache hot ratio (FAE sizes its hot set to GPU capacity,
    /// far above the reordering cutoff).
    pub fae_hot_ratio: f64,
    /// Batches profiled for frequency/co-occurrence before training.
    pub profile_batches: u64,
}

impl Default for RunParams {
    fn default() -> Self {
        Self {
            batch_size: 512,
            first: 0,
            num_batches: 20,
            dim: 16,
            large_threshold: 1000,
            tt_rank: 16,
            lr: 0.05,
            seed: 7,
            hot_ratio: 0.05,
            fae_hot_ratio: 0.05,
            profile_batches: 10,
        }
    }
}

/// Measured + metered outcome of one framework run.
#[derive(Clone, Debug)]
pub struct FrameworkReport {
    /// Framework display name.
    pub name: String,
    /// Measured compute that runs on the *device* (scaled by the device's
    /// speedup in the simulated total).
    pub device_wall: Duration,
    /// The part of `device_wall` that is memory-bound gather/scatter work
    /// (dense embedding lookups) rather than GEMM-class math; the device
    /// model scales the two differently.
    pub device_gather: Duration,
    /// Measured compute that runs on the *host* — parameter-server gathers
    /// and updates, FAE's cold-path work (stays at CPU speed).
    pub cpu_wall: Duration,
    /// Bus traffic the strategy would generate.
    pub meter: CommMeter,
    /// Per-batch losses.
    pub losses: Vec<f32>,
    /// Samples trained.
    pub samples: usize,
    /// Device-resident embedding bytes (Table III).
    pub device_embedding_bytes: usize,
}

impl FrameworkReport {
    /// End-to-end simulated time on `device`: GEMM-class device compute
    /// divided by `gemm_scale`, gather-class by `gather_scale`, host
    /// compute unscaled, plus bus time.
    pub fn simulated_total(&self, device: &DeviceSpec) -> Duration {
        let gemm =
            (self.device_wall.saturating_sub(self.device_gather)).as_secs_f64() / device.gemm_scale;
        let gather = self.device_gather.as_secs_f64() / device.gather_scale;
        Duration::from_secs_f64(gemm + gather + self.cpu_wall.as_secs_f64() / device.host_scale)
            + self.meter.simulated_time(device)
    }

    /// Simulated training throughput in samples/second.
    pub fn throughput(&self, device: &DeviceSpec) -> f64 {
        self.samples as f64 / self.simulated_total(device).as_secs_f64()
    }
}

/// A completed run: report, final model and (for EL-Rec) the index
/// bijections evaluation batches must be remapped with.
pub struct FrameworkRun {
    /// Timing / traffic report.
    pub report: FrameworkReport,
    /// Trained model (for Table IV accuracy).
    pub model: DlrmModel,
    /// Per-table bijections when the framework reorders indices.
    pub bijections: Vec<Option<IndexBijection>>,
}

impl FrameworkRun {
    /// Remaps a batch through this run's bijections (no-op for frameworks
    /// that keep raw indices).
    pub fn remap(&self, batch: &MiniBatch) -> MiniBatch {
        let mut out = batch.clone();
        for (t, bij) in self.bijections.iter().enumerate() {
            if let Some(b) = bij {
                out.fields[t].remap(&b.forward);
            }
        }
        out
    }

    /// Evaluates accuracy on batches, applying the bijections first.
    pub fn evaluate(&mut self, batches: &[MiniBatch]) -> el_dlrm::model::EvalMetrics {
        let remapped: Vec<MiniBatch> = batches.iter().map(|b| self.remap(b)).collect();
        self.model.evaluate(&remapped)
    }
}

/// Runs one framework on a dataset.
pub fn run_framework(
    kind: FrameworkKind,
    dataset: &SyntheticDataset,
    params: &RunParams,
) -> FrameworkRun {
    match kind {
        FrameworkKind::DlrmPs => run_dlrm_ps(dataset, params),
        FrameworkKind::Fae => run_fae(dataset, params),
        FrameworkKind::TtRec => run_tt(dataset, params, TtOptions::tt_rec_baseline(), false),
        FrameworkKind::ElRec => run_tt(dataset, params, TtOptions::default(), true),
    }
}

fn base_config(dataset: &SyntheticDataset, params: &RunParams, tt_threshold: usize) -> DlrmConfig {
    let mut cfg = DlrmConfig::for_spec(dataset.spec(), params.dim, tt_threshold, params.tt_rank);
    cfg.lr = params.lr;
    cfg.bottom_hidden = vec![32];
    cfg.top_hidden = vec![32];
    cfg
}

/// Facebook DLRM: large tables hosted on the CPU parameter server, strict
/// alternation (no pipeline, no cache).
fn run_dlrm_ps(dataset: &SyntheticDataset, params: &RunParams) -> FrameworkRun {
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    // no TT anywhere: threshold above every table
    let cfg = base_config(dataset, params, usize::MAX);
    let mut model = DlrmModel::new(&cfg, &mut rng);

    // Move large tables to the host.
    let mut host = Vec::new();
    for (t, &card) in dataset.spec().table_cardinalities.iter().enumerate() {
        if card >= params.large_threshold {
            let dense = match std::mem::replace(
                &mut model.tables[t],
                EmbeddingLayer::Hosted { dim: params.dim },
            ) {
                EmbeddingLayer::Dense(bag) => bag,
                _ => unreachable!("threshold MAX keeps every table dense"),
            };
            host.push((t, dense));
        }
    }
    // Reference DLRM: the CPU runs the full EmbeddingBag forward/backward
    // and ships pooled batch x dim activations/gradients.
    let server = HostServer::new(host, params.lr).with_mode(ServerMode::PooledEmbeddings);
    let pipe_cfg = PipelineConfig {
        batch_size: params.batch_size,
        first_batch: params.first,
        num_batches: params.num_batches,
        prefetch_depth: 1,
        pipelined: false,
        overlap_analysis: false,
    };
    let report = PipelineTrainer::train(model, server, dataset, &pipe_cfg);
    let mut model = report.model;
    let device_bytes = model.embedding_footprint_bytes();
    // Reinstall the final host tables so the model is self-contained for
    // evaluation.
    for (t, bag) in report.host_tables {
        model.tables[t] = EmbeddingLayer::Dense(bag);
    }
    let bijections = vec![None; model.num_tables()];
    FrameworkRun {
        report: FrameworkReport {
            name: FrameworkKind::DlrmPs.name().into(),
            device_wall: report.worker_compute,
            device_gather: Duration::ZERO,
            cpu_wall: report.server_cpu,
            meter: report.server_meter,
            losses: report.losses,
            samples: (params.num_batches as usize) * params.batch_size,
            device_embedding_bytes: device_bytes,
        },
        model,
        bijections,
    }
}

/// FAE: hot rows of large tables live on the device, so hot-only batches
/// never touch the host; batches containing cold indices pay a gather +
/// update round trip (and, in the real system, CPU-side training — the
/// gather/update work below is that cost's measured analogue).
fn run_fae(dataset: &SyntheticDataset, params: &RunParams) -> FrameworkRun {
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let cfg = base_config(dataset, params, usize::MAX);
    let mut model = DlrmModel::new(&cfg, &mut rng);
    let spec = dataset.spec().clone();

    // Profiling pass: per-table frequency -> hot masks for large tables.
    let large: Vec<usize> = spec.large_tables(params.large_threshold);
    let mut hot_masks: Vec<Option<Vec<bool>>> = vec![None; spec.num_sparse()];
    for &t in &large {
        let mut hist = AccessHistogram::new(spec.table_cardinalities[t]);
        for b in 0..params.profile_batches {
            hist.record(&dataset.batch(params.first + b, params.batch_size), t);
        }
        let order = hist.frequency_order();
        let hot_count =
            ((spec.table_cardinalities[t] as f64) * params.fae_hot_ratio).ceil() as usize;
        let mut mask = vec![false; spec.table_cardinalities[t]];
        for &i in order.iter().take(hot_count) {
            mask[i as usize] = true;
        }
        hot_masks[t] = Some(mask);
    }

    let mut meter = CommMeter::new();
    let mut losses = Vec::new();
    let mut cpu_wall = Duration::ZERO;
    let mut device_wall = Duration::ZERO;
    let mut cold_sample_total = 0usize;
    let mut sample_total = 0usize;
    for k in 0..params.num_batches {
        let batch = dataset.batch(params.first + k, params.batch_size);
        // FAE's popularity-based scheduler partitions samples: a sample
        // whose every large-table index is hot trains purely on the GPU
        // (hot rows are device-resident); the remaining "cold" samples
        // (~25% in the paper's profiling) fall back to the DLRM-style
        // hybrid path — their rows are gathered/updated on the host and
        // cross the bus.
        let cold_samples: Vec<usize> = (0..batch.batch_size())
            .filter(|&sidx| {
                large.iter().any(|&t| {
                    let mask = hot_masks[t].as_ref().unwrap();
                    batch.fields[t].sample(sidx).iter().any(|&i| !mask[i as usize])
                })
            })
            .collect();
        cold_sample_total += cold_samples.len();
        sample_total += batch.batch_size();

        // TIMING: per-batch framework-simulation metric (host gather wall),
        // reported in the run summary — this crate's purpose is measurement.
        let t_host = Instant::now();
        for &t in &large {
            let field = &batch.fields[t];
            let mut rows_needed: Vec<u32> =
                cold_samples.iter().flat_map(|&sidx| field.sample(sidx).iter().copied()).collect();
            rows_needed.sort_unstable();
            rows_needed.dedup();
            if rows_needed.is_empty() {
                continue;
            }
            let bag = match &model.tables[t] {
                EmbeddingLayer::Dense(b) => b,
                _ => unreachable!(),
            };
            let rows = bag.gather_rows(&rows_needed); // measured CPU gather
            meter.h2d(rows.footprint_bytes() + rows_needed.len() * 4);
            meter.d2h(rows.footprint_bytes() + rows_needed.len() * 4);
        }
        cpu_wall += t_host.elapsed();

        // TIMING: simulated-device wall of the train step, reported.
        let t_dev = Instant::now();
        losses.push(model.train_step(&batch));
        device_wall += t_dev.elapsed();
    }
    let cold_frac = cold_sample_total as f64 / sample_total.max(1) as f64;
    eprintln!("  [FAE] cold-sample fraction: {:.0}% (paper profiled ~25%)", cold_frac * 100.0);
    // Estimate the gather-class share of device compute: dense embedding
    // forward (x2 for backward) on a representative batch, extrapolated.
    let probe = dataset.batch(params.first, params.batch_size);
    // TIMING: one-off gather-share probe after the measured loop.
    let t_emb = Instant::now();
    for (t, table) in model.tables.iter().enumerate() {
        if let EmbeddingLayer::Dense(bag) = table {
            let field = &probe.fields[t];
            let out = bag.forward(&field.indices, &field.offsets);
            std::hint::black_box(&out);
        }
    }
    let device_gather =
        Duration::from_secs_f64(t_emb.elapsed().as_secs_f64() * 2.0 * params.num_batches as f64)
            .min(device_wall);
    let device_bytes: usize = large
        .iter()
        .map(|&t| {
            ((spec.table_cardinalities[t] as f64 * params.fae_hot_ratio) as usize) * params.dim * 4
        })
        .sum();
    let bijections = vec![None; model.num_tables()];
    FrameworkRun {
        report: FrameworkReport {
            name: FrameworkKind::Fae.name().into(),
            device_wall,
            device_gather,
            cpu_wall,
            meter,
            losses,
            samples: (params.num_batches as usize) * params.batch_size,
            device_embedding_bytes: device_bytes,
        },
        model,
        bijections,
    }
}

/// TT-Rec / EL-Rec: large tables compressed on the device; EL-Rec
/// additionally reorders indices with the offline bijection generator.
fn run_tt(
    dataset: &SyntheticDataset,
    params: &RunParams,
    options: TtOptions,
    reorder: bool,
) -> FrameworkRun {
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let cfg = base_config(dataset, params, params.large_threshold);
    let mut model = DlrmModel::new(&cfg, &mut rng);
    let spec = dataset.spec().clone();

    let mut bijections: Vec<Option<IndexBijection>> = vec![None; spec.num_sparse()];
    if reorder {
        let reorderer = Reorderer::new(ReorderConfig {
            hot_ratio: params.hot_ratio,
            seed: params.seed,
            ..ReorderConfig::default()
        });
        let profile: Vec<MiniBatch> = (0..params.profile_batches)
            .map(|b| dataset.batch(params.first + b, params.batch_size))
            .collect();
        for &t in &spec.large_tables(params.large_threshold) {
            let lists: Vec<&[u32]> = profile.iter().map(|b| &b.fields[t].indices[..]).collect();
            bijections[t] = Some(reorderer.fit(spec.table_cardinalities[t], &lists));
        }
    }
    for table in &mut model.tables {
        if let EmbeddingLayer::Tt(bag, _) = table {
            bag.options = options.clone();
        }
    }

    let mut losses = Vec::new();
    // TIMING: end-to-end wall of the framework run, reported.
    let start = Instant::now();
    for k in 0..params.num_batches {
        let mut batch = dataset.batch(params.first + k, params.batch_size);
        for (t, bij) in bijections.iter().enumerate() {
            if let Some(b) = bij {
                batch.fields[t].remap(&b.forward);
            }
        }
        losses.push(model.train_step(&batch));
    }
    let wall = start.elapsed();
    let kind = if reorder { FrameworkKind::ElRec } else { FrameworkKind::TtRec };
    let device_bytes = model.embedding_footprint_bytes();
    FrameworkRun {
        report: FrameworkReport {
            name: kind.name().into(),
            device_wall: wall,
            device_gather: Duration::ZERO,
            cpu_wall: Duration::ZERO,
            meter: CommMeter::new(), // everything fits on the device
            losses,
            samples: (params.num_batches as usize) * params.batch_size,
            device_embedding_bytes: device_bytes,
        },
        model,
        bijections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_data::DatasetSpec;

    fn dataset() -> SyntheticDataset {
        let mut spec = DatasetSpec::toy(3, 2000, 1_000_000);
        spec.num_dense = 4;
        SyntheticDataset::new(spec, 42)
    }

    fn params() -> RunParams {
        RunParams {
            batch_size: 64,
            num_batches: 6,
            dim: 8,
            large_threshold: 1000,
            tt_rank: 8,
            profile_batches: 4,
            // toy tables are tiny; a generous hot set keeps the FAE cold
            // fraction in the regime the paper profiles (~25%)
            fae_hot_ratio: 0.5,
            ..RunParams::default()
        }
    }

    #[test]
    fn all_frameworks_run_and_train() {
        let ds = dataset();
        let p = params();
        for kind in FrameworkKind::all() {
            let run = run_framework(kind, &ds, &p);
            assert_eq!(run.report.losses.len(), 6, "{}", run.report.name);
            assert!(run.report.losses.iter().all(|l| l.is_finite()));
            assert!(run.report.device_wall > Duration::ZERO);
        }
    }

    #[test]
    fn dlrm_ps_pays_the_most_bus_traffic() {
        let ds = dataset();
        let p = params();
        let dlrm = run_framework(FrameworkKind::DlrmPs, &ds, &p);
        let fae = run_framework(FrameworkKind::Fae, &ds, &p);
        let elrec = run_framework(FrameworkKind::ElRec, &ds, &p);
        assert!(dlrm.report.meter.total_bytes() > fae.report.meter.total_bytes());
        assert_eq!(elrec.report.meter.total_bytes(), 0);
    }

    #[test]
    fn compressed_frameworks_use_less_device_memory() {
        let ds = dataset();
        let p = params();
        let fae = run_framework(FrameworkKind::Fae, &ds, &p);
        let ttrec = run_framework(FrameworkKind::TtRec, &ds, &p);
        // FAE keeps full small tables + hot slices; TT-Rec compresses the
        // large ones outright. Both should be far below the dense total.
        let dense_total: usize = ds.spec().table_cardinalities.iter().map(|c| c * 8 * 4).sum();
        assert!(ttrec.report.device_embedding_bytes < dense_total);
        let _ = fae;
    }

    #[test]
    fn elrec_beats_dlrm_on_simulated_time() {
        let ds = dataset();
        let p = params();
        let dlrm = run_framework(FrameworkKind::DlrmPs, &ds, &p);
        let elrec = run_framework(FrameworkKind::ElRec, &ds, &p);
        let dev = DeviceSpec::v100();
        assert!(
            elrec.report.simulated_total(&dev) < dlrm.report.simulated_total(&dev),
            "EL-Rec {:?} vs DLRM {:?}",
            elrec.report.simulated_total(&dev),
            dlrm.report.simulated_total(&dev)
        );
    }

    #[test]
    fn accuracies_are_comparable_across_frameworks() {
        // Table IV: compression must not cost (much) accuracy.
        let ds = dataset();
        let mut p = params();
        p.num_batches = 30;
        let eval: Vec<MiniBatch> = (1000..1004).map(|b| ds.batch(b, 64)).collect();
        let mut accs = Vec::new();
        for kind in FrameworkKind::all() {
            let mut run = run_framework(kind, &ds, &p);
            let m = run.evaluate(&eval);
            accs.push((kind.name(), m.accuracy));
        }
        let max = accs.iter().map(|(_, a)| *a).fold(0.0, f64::max);
        for (name, a) in &accs {
            assert!(max - a < 0.12, "{name} accuracy {a} too far below best {max}");
        }
    }

    #[test]
    fn elrec_remap_keeps_batches_valid() {
        let ds = dataset();
        let run = run_framework(FrameworkKind::ElRec, &ds, &params());
        let batch = ds.batch(99, 32);
        let remapped = run.remap(&batch);
        remapped.validate().unwrap();
        assert!(run.bijections.iter().any(Option::is_some));
    }
}
