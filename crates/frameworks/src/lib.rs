//! # el-frameworks — baseline DLRM training frameworks
//!
//! Faithful *strategy-level* emulations of every framework the paper
//! compares against, re-implemented on the shared substrate so the only
//! differences are the design decisions the paper credits or blames:
//!
//! | Framework | Strategy (paper §VI-A) | Emulation |
//! |---|---|---|
//! | DLRM \[23\] | embeddings in host memory, synchronous PS | [`endtoend`] with every large table `Hosted`, strict alternation |
//! | FAE \[24\]  | hot embeddings on device; cold batches pay the host | profiling pass -> hot set; cold batches pay gather/update + bus bytes |
//! | TT-Rec \[20\] | TT compression, unoptimized kernels | Eff-TT tables with `TtOptions::tt_rec_baseline()` |
//! | EL-Rec | Eff-TT + index reordering (+ pipeline for overflow) | the real thing |
//! | HugeCTR \[18\] | row-wise model-parallel sharding | [`large_table`] comm/compute model on real kernels |
//! | TorchRec \[40\] | column-wise sharding ("4D parallelism") | [`large_table`] |
//!
//! End-to-end comparisons report **measured** compute time plus **metered**
//! communication converted to time through the device model (see
//! `el-pipeline::device` and DESIGN.md's substitution table).

#![forbid(unsafe_code)]

pub mod endtoend;
pub mod large_table;

pub use endtoend::{run_framework, FrameworkKind, FrameworkReport, FrameworkRun, RunParams};
pub use large_table::{large_table_throughput, LargeTableParams, ShardingStrategy};
