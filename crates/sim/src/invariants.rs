//! The staleness-protocol invariant checker.
//!
//! Four families of invariants, checked after (not during) a run so the
//! simulation itself stays an unjudged reproduction of events:
//!
//! 1. **exactly-once** — every acknowledged push was applied, and pushes
//!    were applied exactly once, in sequence order, no matter how the
//!    link dropped, duplicated or reordered deliveries;
//! 2. **staleness bound** — every `PrefetchedBatch` stamp satisfies
//!    `batch_seq − applied_through ≤ staleness_bound`, and the stamps are
//!    monotone across gathers (the server's `applied` never regresses);
//! 3. **schedule independence** — the final tables at `applied = k` are
//!    byte-identical to the sequential oracle's prefix digest at `k`
//!    ([`crate::oracle`]);
//! 4. **replay determinism** — the same `(config, plan, seed)` reproduces
//!    the same trace and the same final bytes.

use crate::fault::FaultPlan;
use crate::oracle::Oracle;
use crate::sim::{run, Outcome, SimConfig, SimReport};
use crate::trace::TraceEvent;
use std::fmt;

/// A detected invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A push was applied more than once (exactly-once broken).
    AppliedTwice {
        /// Re-applied batch.
        seq: u64,
    },
    /// Applies skipped or reordered sequence numbers.
    AppliedOutOfOrder {
        /// Batch that was applied.
        seq: u64,
        /// Batch that should have been next.
        expected: u64,
    },
    /// The worker was acknowledged for a push the server never applied.
    AckedWithoutApply {
        /// Acknowledged batch.
        seq: u64,
    },
    /// A batch was gathered or trained with a stamp beyond the bound.
    StalenessExceeded {
        /// Batch sequence number.
        seq: u64,
        /// The stamp it carried.
        applied_through: u64,
        /// The configured bound.
        bound: u64,
    },
    /// `applied_through` regressed between successive gathers.
    StampRegressed {
        /// Batch whose stamp regressed.
        seq: u64,
        /// The regressed stamp.
        applied_through: u64,
        /// The previous (higher) stamp.
        prev: u64,
    },
    /// Final tables differ from the sequential oracle at the same
    /// applied count — the pipeline computed something sequential
    /// training would not have.
    OracleMismatch {
        /// Applied batches at termination.
        applied: u64,
        /// Digest the run produced.
        got: u64,
        /// Digest the oracle requires.
        want: u64,
    },
    /// Two runs of the same `(config, plan, seed)` diverged.
    ReplayDiverged {
        /// The replayed schedule seed.
        seed: u64,
    },
    /// A run claimed completion without applying every batch.
    IncompleteCompletion {
        /// Batches actually applied.
        applied: u64,
        /// Batches scheduled.
        expected: u64,
    },
    /// The run exhausted its event budget — a livelock.
    OutOfBudget,
    /// A crash-recovered run failed to finish the schedule.
    RecoveryIncomplete {
        /// Batches applied when the recovered run ended.
        applied: u64,
        /// Batches scheduled.
        expected: u64,
    },
    /// A crash-recovered run finished with tables that differ from the
    /// sequential oracle — recovery lost or corrupted training state.
    RecoveryDiverged {
        /// Digest the recovered run produced.
        got: u64,
        /// Digest the oracle requires.
        want: u64,
    },
    /// One shard applied a push more than once (per-shard exactly-once
    /// broken).
    ShardAppliedTwice {
        /// The re-applying shard.
        shard: u32,
        /// Re-applied batch.
        seq: u64,
    },
    /// One shard's applies skipped or reordered sequence numbers.
    ShardAppliedOutOfOrder {
        /// The misordering shard.
        shard: u32,
        /// Batch that was applied.
        seq: u64,
        /// Batch that should have been next on that shard.
        expected: u64,
    },
    /// The worker was acknowledged by a shard for a push that shard never
    /// applied.
    ShardAckedWithoutApply {
        /// The acknowledging shard.
        shard: u32,
        /// Acknowledged batch.
        seq: u64,
    },
    /// The global gather stamp does not equal the minimum of the
    /// per-shard stamps recorded for the same batch — the stitched
    /// staleness bound would be meaningless.
    ShardStampMismatch {
        /// Batch whose stamp was stitched wrongly.
        seq: u64,
        /// The minimum of the recorded per-shard stamps.
        stitched: u64,
        /// The stamp the gather actually carried.
        stamped: u64,
    },
    /// A sharded run claimed completion with a shard short of the
    /// schedule.
    ShardIncomplete {
        /// The lagging shard.
        shard: u32,
        /// Batches that shard applied.
        applied: u64,
        /// Batches scheduled.
        expected: u64,
    },
    /// One shard's final sub-tables differ from the sharded sequential
    /// oracle at that shard's applied count.
    ShardOracleMismatch {
        /// The diverging shard.
        shard: u32,
        /// Batches that shard applied.
        applied: u64,
        /// Digest the shard produced.
        got: u64,
        /// Digest the sharded oracle requires.
        want: u64,
    },
    /// One replica-group member applied a push more than once
    /// (per-member exactly-once broken across promotion/catch-up
    /// boundaries).
    ReplicaAppliedTwice {
        /// The member's shard.
        shard: u32,
        /// The member's rank.
        rank: u32,
        /// Re-applied batch.
        seq: u64,
    },
    /// One replica-group member's applies skipped or reordered sequence
    /// numbers — lockstep replication broke.
    ReplicaAppliedOutOfOrder {
        /// The member's shard.
        shard: u32,
        /// The member's rank.
        rank: u32,
        /// Batch that was applied.
        seq: u64,
        /// Batch that should have been next on that member.
        expected: u64,
    },
    /// A surviving replica-group member's final sub-tables differ from
    /// the sharded sequential oracle at that member's applied count —
    /// a backup (or rejoiner) is not byte-identical to what the primary
    /// would have trained.
    ReplicaDiverged {
        /// The member's shard.
        shard: u32,
        /// The member's rank.
        rank: u32,
        /// Batches that member applied.
        applied: u64,
        /// Digest the member produced.
        got: u64,
        /// Digest the sharded oracle requires.
        want: u64,
    },
    /// A survivable failover schedule did not finish training — the
    /// whole point of replication is completing without a cold restart.
    FailoverIncomplete {
        /// The lagging shard group.
        shard: u32,
        /// Batches that group applied.
        applied: u64,
        /// Batches scheduled.
        expected: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::AppliedTwice { seq } => write!(f, "push {seq} applied more than once"),
            Violation::AppliedOutOfOrder { seq, expected } => {
                write!(f, "push {seq} applied while {expected} was next in order")
            }
            Violation::AckedWithoutApply { seq } => {
                write!(f, "push {seq} acknowledged but never applied")
            }
            Violation::StalenessExceeded { seq, applied_through, bound } => write!(
                f,
                "batch {seq} stamped applied_through={applied_through}, \
                 staleness {} exceeds bound {bound}",
                seq - applied_through
            ),
            Violation::StampRegressed { seq, applied_through, prev } => write!(
                f,
                "batch {seq} stamped applied_through={applied_through} after a stamp of {prev}"
            ),
            Violation::OracleMismatch { applied, got, want } => write!(
                f,
                "tables at applied={applied} digest to {got:#018x}, \
                 sequential oracle requires {want:#018x}"
            ),
            Violation::ReplayDiverged { seed } => {
                write!(f, "replay of schedule seed {seed} diverged")
            }
            Violation::IncompleteCompletion { applied, expected } => {
                write!(f, "run completed with {applied}/{expected} batches applied")
            }
            Violation::OutOfBudget => write!(f, "event budget exhausted (livelock)"),
            Violation::RecoveryIncomplete { applied, expected } => {
                write!(f, "recovered run ended with {applied}/{expected} batches applied")
            }
            Violation::RecoveryDiverged { got, want } => write!(
                f,
                "recovered run's tables digest to {got:#018x}, \
                 sequential oracle requires {want:#018x}"
            ),
            Violation::ShardAppliedTwice { shard, seq } => {
                write!(f, "shard {shard} applied push {seq} more than once")
            }
            Violation::ShardAppliedOutOfOrder { shard, seq, expected } => {
                write!(f, "shard {shard} applied push {seq} while {expected} was next in order")
            }
            Violation::ShardAckedWithoutApply { shard, seq } => {
                write!(f, "shard {shard} acknowledged push {seq} but never applied it")
            }
            Violation::ShardStampMismatch { seq, stitched, stamped } => write!(
                f,
                "batch {seq} gathered with stamp {stamped} but the per-shard minimum is {stitched}"
            ),
            Violation::ShardIncomplete { shard, applied, expected } => {
                write!(f, "run completed with shard {shard} at {applied}/{expected} batches")
            }
            Violation::ShardOracleMismatch { shard, applied, got, want } => write!(
                f,
                "shard {shard}'s sub-tables at applied={applied} digest to {got:#018x}, \
                 sharded oracle requires {want:#018x}"
            ),
            Violation::ReplicaAppliedTwice { shard, rank, seq } => {
                write!(f, "shard {shard} rank {rank} applied push {seq} more than once")
            }
            Violation::ReplicaAppliedOutOfOrder { shard, rank, seq, expected } => write!(
                f,
                "shard {shard} rank {rank} applied push {seq} while {expected} was next in order"
            ),
            Violation::ReplicaDiverged { shard, rank, applied, got, want } => write!(
                f,
                "shard {shard} rank {rank}'s sub-tables at applied={applied} digest to \
                 {got:#018x}, sharded oracle requires {want:#018x}"
            ),
            Violation::FailoverIncomplete { shard, applied, expected } => write!(
                f,
                "survivable failover schedule left shard {shard} at {applied}/{expected} batches"
            ),
        }
    }
}

/// Checks the trace-level invariants (exactly-once, staleness bound,
/// stamp monotonicity, outcome consistency) of one finished run.
pub fn check_trace(report: &SimReport, cfg: &SimConfig) -> Result<(), Violation> {
    if report.outcome == Outcome::OutOfBudget {
        return Err(Violation::OutOfBudget);
    }
    let mut next_apply = 0u64;
    let mut last_stamp = 0u64;
    for e in &report.trace.events {
        match *e {
            TraceEvent::Applied { seq } => {
                if seq < next_apply {
                    return Err(Violation::AppliedTwice { seq });
                }
                if seq > next_apply {
                    return Err(Violation::AppliedOutOfOrder { seq, expected: next_apply });
                }
                next_apply += 1;
            }
            TraceEvent::Acked { seq } if seq >= next_apply => {
                return Err(Violation::AckedWithoutApply { seq });
            }
            TraceEvent::Gathered { seq, applied_through } => {
                if seq - applied_through > cfg.staleness_bound {
                    return Err(Violation::StalenessExceeded {
                        seq,
                        applied_through,
                        bound: cfg.staleness_bound,
                    });
                }
                if applied_through < last_stamp {
                    return Err(Violation::StampRegressed {
                        seq,
                        applied_through,
                        prev: last_stamp,
                    });
                }
                last_stamp = applied_through;
            }
            TraceEvent::PrefetchSynced { seq, applied_through }
                if seq - applied_through > cfg.staleness_bound =>
            {
                return Err(Violation::StalenessExceeded {
                    seq,
                    applied_through,
                    bound: cfg.staleness_bound,
                });
            }
            _ => {}
        }
    }
    if next_apply != report.applied {
        // the trace and the server disagree about progress
        return Err(Violation::AppliedOutOfOrder { seq: report.applied, expected: next_apply });
    }
    if report.outcome == Outcome::Completed && report.applied != cfg.num_batches {
        return Err(Violation::IncompleteCompletion {
            applied: report.applied,
            expected: cfg.num_batches,
        });
    }
    Ok(())
}

/// Checks schedule independence: the run's final tables must digest to
/// the oracle's prefix at the same applied count — even for runs a fault
/// cut short.
pub fn check_against_oracle(report: &SimReport, oracle: &Oracle) -> Result<(), Violation> {
    let want = oracle.prefix_digests[report.applied as usize];
    if report.table_digest != want {
        return Err(Violation::OracleMismatch {
            applied: report.applied,
            got: report.table_digest,
            want,
        });
    }
    Ok(())
}

/// Runs `(cfg, plan, seed)` twice, demands bit-identical traces and
/// tables, then checks every trace- and oracle-level invariant on the
/// result. This is the full per-seed verdict the sweep and the CLI use.
pub fn check_run(
    cfg: &SimConfig,
    plan: &FaultPlan,
    schedule_seed: u64,
    oracle: &Oracle,
) -> Result<SimReport, Violation> {
    let a = run(cfg, plan, schedule_seed);
    let b = run(cfg, plan, schedule_seed);
    if a.trace != b.trace || a.table_digest != b.table_digest || a.final_tick != b.final_tick {
        return Err(Violation::ReplayDiverged { seed: schedule_seed });
    }
    check_trace(&a, cfg)?;
    check_against_oracle(&a, oracle)?;
    Ok(a)
}

/// Checks the trace-level invariants of one finished **sharded** run:
/// per-shard exactly-once (in-order, no duplicates, no phantom acks),
/// the stitched staleness bound (every gather stamp equals the minimum
/// of the per-shard stamps and respects the global bound), stamp
/// monotonicity, and outcome consistency.
pub fn check_shard_trace(
    report: &crate::shard::ShardSimReport,
    cfg: &crate::shard::ShardSimConfig,
) -> Result<(), Violation> {
    if report.outcome == Outcome::OutOfBudget {
        return Err(Violation::OutOfBudget);
    }
    let num_shards = cfg.shard.num_shards as usize;
    let mut next_apply = vec![0u64; num_shards];
    let mut last_stamp = 0u64;
    // per-shard stamps recorded for the batch currently being gathered
    let mut stamps: std::collections::BTreeMap<u64, Vec<u64>> = std::collections::BTreeMap::new();
    for e in &report.trace.events {
        match *e {
            TraceEvent::Resumed { applied } => {
                next_apply = vec![applied; num_shards];
                last_stamp = applied;
            }
            TraceEvent::ShardApplied { shard, seq } => {
                let s = shard as usize;
                if seq < next_apply[s] {
                    return Err(Violation::ShardAppliedTwice { shard, seq });
                }
                if seq > next_apply[s] {
                    return Err(Violation::ShardAppliedOutOfOrder {
                        shard,
                        seq,
                        expected: next_apply[s],
                    });
                }
                next_apply[s] += 1;
            }
            TraceEvent::ShardAcked { shard, seq } if seq >= next_apply[shard as usize] => {
                return Err(Violation::ShardAckedWithoutApply { shard, seq });
            }
            TraceEvent::ShardStamped { seq, applied, .. } => {
                stamps.entry(seq).or_default().push(applied);
            }
            TraceEvent::Gathered { seq, applied_through } => {
                let stitched = stamps
                    .get(&seq)
                    .filter(|v| v.len() == num_shards)
                    .and_then(|v| v.iter().min().copied());
                if stitched != Some(applied_through) {
                    return Err(Violation::ShardStampMismatch {
                        seq,
                        stitched: stitched.unwrap_or(u64::MAX),
                        stamped: applied_through,
                    });
                }
                if seq - applied_through > cfg.base.staleness_bound {
                    return Err(Violation::StalenessExceeded {
                        seq,
                        applied_through,
                        bound: cfg.base.staleness_bound,
                    });
                }
                if applied_through < last_stamp {
                    return Err(Violation::StampRegressed {
                        seq,
                        applied_through,
                        prev: last_stamp,
                    });
                }
                last_stamp = applied_through;
            }
            TraceEvent::PrefetchSynced { seq, applied_through }
                if seq - applied_through > cfg.base.staleness_bound =>
            {
                return Err(Violation::StalenessExceeded {
                    seq,
                    applied_through,
                    bound: cfg.base.staleness_bound,
                });
            }
            _ => {}
        }
    }
    for (s, (&traced, &reported)) in next_apply.iter().zip(&report.applied).enumerate() {
        if traced != reported {
            // the trace and the shard disagree about progress
            return Err(Violation::ShardAppliedOutOfOrder {
                shard: s as u32,
                seq: reported,
                expected: traced,
            });
        }
    }
    if report.outcome == Outcome::Completed {
        for (s, &applied) in report.applied.iter().enumerate() {
            if applied != cfg.base.num_batches {
                return Err(Violation::ShardIncomplete {
                    shard: s as u32,
                    applied,
                    expected: cfg.base.num_batches,
                });
            }
        }
    }
    Ok(())
}

/// Checks schedule independence of a sharded run per shard and globally:
/// every shard's final sub-tables must digest to the sharded oracle's
/// prefix at that shard's own applied count (valid even when faults left
/// the shards skewed), and when all shards agree on an applied count the
/// merged tables must equal the global sequential oracle at that prefix.
pub fn check_shard_against_oracle(
    report: &crate::shard::ShardSimReport,
    shard_oracle: &crate::oracle::ShardOracle,
    global_oracle: &Oracle,
) -> Result<(), Violation> {
    for (s, (&got, &applied)) in report.shard_digests.iter().zip(&report.applied).enumerate() {
        let want = shard_oracle.per_shard[s][applied as usize];
        if got != want {
            return Err(Violation::ShardOracleMismatch { shard: s as u32, applied, got, want });
        }
    }
    if let [first, rest @ ..] = report.applied.as_slice() {
        if rest.iter().all(|a| a == first) {
            let want = global_oracle.prefix_digests[*first as usize];
            if report.merged_digest != want {
                return Err(Violation::OracleMismatch {
                    applied: *first,
                    got: report.merged_digest,
                    want,
                });
            }
        }
    }
    Ok(())
}

/// Runs a sharded `(cfg, plan, seed)` twice, demands bit-identical traces
/// and tables, then checks every shard-trace and oracle invariant. The
/// full per-seed verdict of the multi-shard sweep.
pub fn check_shard_run(
    cfg: &crate::shard::ShardSimConfig,
    plan: &FaultPlan,
    schedule_seed: u64,
    shard_oracle: &crate::oracle::ShardOracle,
    global_oracle: &Oracle,
) -> Result<crate::shard::ShardSimReport, Violation> {
    let a = crate::shard::run_sharded(cfg, plan, schedule_seed);
    let b = crate::shard::run_sharded(cfg, plan, schedule_seed);
    if a.trace != b.trace
        || a.merged_digest != b.merged_digest
        || a.shard_digests != b.shard_digests
        || a.final_tick != b.final_tick
    {
        return Err(Violation::ReplayDiverged { seed: schedule_seed });
    }
    check_shard_trace(&a, cfg)?;
    check_shard_against_oracle(&a, shard_oracle, global_oracle)?;
    Ok(a)
}

/// Checks the trace-level invariants of one finished **replicated** run:
/// per-member exactly-once (every `(shard, rank)` applies in sequence
/// order with no duplicates, across promotion boundaries, with
/// catch-up rejoins resetting that member's stamp domain to the group
/// watermark), no phantom acks (a shard acks only what its group
/// applied), the stitched staleness bound, stamp monotonicity (lockstep
/// promotion must never regress a stamp), and outcome consistency.
pub fn check_failover_trace(
    report: &crate::failover::FailoverSimReport,
    cfg: &crate::failover::FailoverSimConfig,
) -> Result<(), Violation> {
    if report.outcome == Outcome::OutOfBudget {
        return Err(Violation::OutOfBudget);
    }
    let num_shards = cfg.shard.num_shards as usize;
    let replicas = cfg.replicas.max(1) as usize;
    let mut next_apply = vec![vec![0u64; replicas]; num_shards];
    let mut last_stamp = 0u64;
    let mut stamps: std::collections::BTreeMap<u64, Vec<u64>> = std::collections::BTreeMap::new();
    for e in &report.trace.events {
        match *e {
            TraceEvent::ReplicaApplied { shard, rank, seq } => {
                let slot = &mut next_apply[shard as usize][rank as usize];
                if seq < *slot {
                    return Err(Violation::ReplicaAppliedTwice { shard, rank, seq });
                }
                if seq > *slot {
                    return Err(Violation::ReplicaAppliedOutOfOrder {
                        shard,
                        rank,
                        seq,
                        expected: *slot,
                    });
                }
                *slot += 1;
            }
            TraceEvent::CatchupInstalled { shard, rank, applied } => {
                // the rejoiner restored the group watermark wholesale;
                // its stamp domain resumes there
                next_apply[shard as usize][rank as usize] = applied;
            }
            TraceEvent::ShardAcked { shard, seq } => {
                let group = next_apply[shard as usize].iter().max().copied().unwrap_or(0);
                if seq >= group {
                    return Err(Violation::ShardAckedWithoutApply { shard, seq });
                }
            }
            TraceEvent::ShardStamped { seq, applied, .. } => {
                stamps.entry(seq).or_default().push(applied);
            }
            TraceEvent::Gathered { seq, applied_through } => {
                let stitched = stamps
                    .get(&seq)
                    .filter(|v| v.len() == num_shards)
                    .and_then(|v| v.iter().min().copied());
                if stitched != Some(applied_through) {
                    return Err(Violation::ShardStampMismatch {
                        seq,
                        stitched: stitched.unwrap_or(u64::MAX),
                        stamped: applied_through,
                    });
                }
                if seq - applied_through > cfg.base.staleness_bound {
                    return Err(Violation::StalenessExceeded {
                        seq,
                        applied_through,
                        bound: cfg.base.staleness_bound,
                    });
                }
                if applied_through < last_stamp {
                    // lockstep replication guarantees a promoted backup
                    // is at the old primary's watermark: regression here
                    // means failover rewound training
                    return Err(Violation::StampRegressed {
                        seq,
                        applied_through,
                        prev: last_stamp,
                    });
                }
                last_stamp = applied_through;
            }
            TraceEvent::PrefetchSynced { seq, applied_through }
                if seq - applied_through > cfg.base.staleness_bound =>
            {
                return Err(Violation::StalenessExceeded {
                    seq,
                    applied_through,
                    bound: cfg.base.staleness_bound,
                });
            }
            _ => {}
        }
    }
    for (s, members) in report.member_applied.iter().enumerate() {
        for (r, reported) in members.iter().enumerate() {
            // dead members keep whatever the trace last said; survivors
            // must agree with it exactly
            if let Some(reported) = *reported {
                if next_apply[s][r] != reported {
                    return Err(Violation::ReplicaAppliedOutOfOrder {
                        shard: s as u32,
                        rank: r as u32,
                        seq: reported,
                        expected: next_apply[s][r],
                    });
                }
            }
        }
    }
    if report.outcome == Outcome::Completed {
        for (s, &applied) in report.applied.iter().enumerate() {
            if applied != cfg.base.num_batches {
                return Err(Violation::ShardIncomplete {
                    shard: s as u32,
                    applied,
                    expected: cfg.base.num_batches,
                });
            }
        }
    }
    Ok(())
}

/// Checks byte-identity of a replicated run against the oracles: every
/// surviving member of every group (primary, backups, and catch-up
/// rejoiners alike) must digest to the sharded sequential oracle's
/// prefix at that member's own applied count, and when the groups agree
/// on a watermark the merged tables must equal the global sequential
/// oracle at that prefix.
pub fn check_failover_against_oracle(
    report: &crate::failover::FailoverSimReport,
    shard_oracle: &crate::oracle::ShardOracle,
    global_oracle: &Oracle,
) -> Result<(), Violation> {
    for (s, (digests, applieds)) in
        report.member_digests.iter().zip(&report.member_applied).enumerate()
    {
        for (r, (digest, applied)) in digests.iter().zip(applieds).enumerate() {
            let (Some(got), Some(applied)) = (*digest, *applied) else { continue };
            let want = shard_oracle.per_shard[s][applied as usize];
            if got != want {
                return Err(Violation::ReplicaDiverged {
                    shard: s as u32,
                    rank: r as u32,
                    applied,
                    got,
                    want,
                });
            }
        }
    }
    if let [first, rest @ ..] = report.applied.as_slice() {
        if rest.iter().all(|a| a == first) {
            let want = global_oracle.prefix_digests[*first as usize];
            if report.merged_digest != want {
                return Err(Violation::OracleMismatch {
                    applied: *first,
                    got: report.merged_digest,
                    want,
                });
            }
        }
    }
    Ok(())
}

/// Runs a replicated `(cfg, plan, seed)` twice, demands bit-identical
/// traces and bytes, **requires completion** (every plan the failover
/// and netfault sweeps derive is survivable by construction — leaving
/// at least one member per group alive — so a run that fails to finish
/// is a failover bug, not an acceptable fault outcome), then checks
/// every replica-trace and oracle invariant. The full per-seed verdict
/// of the failover sweeps.
pub fn check_failover_run(
    cfg: &crate::failover::FailoverSimConfig,
    plan: &FaultPlan,
    schedule_seed: u64,
    shard_oracle: &crate::oracle::ShardOracle,
    global_oracle: &Oracle,
) -> Result<crate::failover::FailoverSimReport, Violation> {
    let a = crate::failover::run_failover(cfg, plan, schedule_seed);
    let b = crate::failover::run_failover(cfg, plan, schedule_seed);
    if a.trace != b.trace
        || a.merged_digest != b.merged_digest
        || a.member_digests != b.member_digests
        || a.final_tick != b.final_tick
    {
        return Err(Violation::ReplayDiverged { seed: schedule_seed });
    }
    if a.outcome == Outcome::OutOfBudget {
        return Err(Violation::OutOfBudget);
    }
    if a.outcome != Outcome::Completed {
        let (shard, applied) = a
            .applied
            .iter()
            .enumerate()
            .min_by_key(|(_, &ap)| ap)
            .map(|(s, &ap)| (s as u32, ap))
            .unwrap_or((0, 0));
        return Err(Violation::FailoverIncomplete {
            shard,
            applied,
            expected: cfg.base.num_batches,
        });
    }
    check_failover_trace(&a, cfg)?;
    check_failover_against_oracle(&a, shard_oracle, global_oracle)?;
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use crate::oracle::sequential_prefix;

    #[test]
    fn fault_free_run_passes_every_check() {
        let cfg = SimConfig::default();
        let oracle = sequential_prefix(&cfg);
        let report = check_run(&cfg, &FaultPlan::none(), 1, &oracle).expect("clean run");
        assert_eq!(report.outcome, Outcome::Completed);
    }

    #[test]
    fn faulted_runs_still_match_the_oracle_prefix() {
        let cfg = SimConfig::default();
        let oracle = sequential_prefix(&cfg);
        for plan in [
            FaultPlan::with(vec![Fault::WorkerDeath { at_batch: 9 }]),
            FaultPlan::with(vec![Fault::ServerDeath { after_applied: 4 }]),
            FaultPlan::with(vec![
                Fault::DropPush { seq: 1, delivery: 1 },
                Fault::GradQueueSaturation { start: 20, ticks: 30 },
            ]),
        ] {
            let report = check_run(&cfg, &plan, 77, &oracle)
                .unwrap_or_else(|v| panic!("plan [{plan}] violated: {v}"));
            // partial progress still matches the sequential prefix exactly
            assert_eq!(report.table_digest, oracle.prefix_digests[report.applied as usize]);
        }
    }

    #[test]
    fn checker_catches_a_double_apply() {
        let cfg = SimConfig::default();
        let mut report = run(&cfg, &FaultPlan::none(), 1);
        report.trace.push(TraceEvent::Applied { seq: 3 });
        assert_eq!(check_trace(&report, &cfg), Err(Violation::AppliedTwice { seq: 3 }));
    }

    #[test]
    fn checker_catches_a_stale_stamp() {
        let cfg = SimConfig::default();
        let mut report = run(&cfg, &FaultPlan::none(), 1);
        report
            .trace
            .push(TraceEvent::Gathered { seq: 23, applied_through: 23 - cfg.staleness_bound - 1 });
        assert!(matches!(
            check_trace(&report, &cfg),
            Err(Violation::StalenessExceeded { seq: 23, .. })
        ));
    }

    #[test]
    fn checker_catches_a_phantom_ack() {
        let cfg = SimConfig { num_batches: 0, ..SimConfig::default() };
        let mut report = run(&cfg, &FaultPlan::none(), 1);
        report.trace.push(TraceEvent::Acked { seq: 5 });
        assert_eq!(check_trace(&report, &cfg), Err(Violation::AckedWithoutApply { seq: 5 }));
    }

    #[test]
    fn shard_checker_passes_a_clean_multi_shard_run() {
        let cfg = crate::shard::ShardSimConfig::default();
        let shard_oracle = crate::oracle::sharded_prefix(&cfg);
        let global_oracle = sequential_prefix(&cfg.base);
        let report = check_shard_run(&cfg, &FaultPlan::none(), 1, &shard_oracle, &global_oracle)
            .expect("clean sharded run");
        assert_eq!(report.outcome, Outcome::Completed);
    }

    #[test]
    fn shard_checker_catches_a_per_shard_double_apply() {
        let cfg = crate::shard::ShardSimConfig::default();
        let mut report = crate::shard::run_sharded(&cfg, &FaultPlan::none(), 1);
        report.trace.push(TraceEvent::ShardApplied { shard: 1, seq: 3 });
        assert_eq!(
            check_shard_trace(&report, &cfg),
            Err(Violation::ShardAppliedTwice { shard: 1, seq: 3 })
        );
    }

    #[test]
    fn shard_checker_catches_a_mis_stitched_stamp() {
        let cfg = crate::shard::ShardSimConfig::default();
        let mut report = crate::shard::run_sharded(&cfg, &FaultPlan::none(), 1);
        // a gather stamp with no per-shard stamps backing it cannot be
        // the minimum of anything
        let seq = cfg.base.num_batches;
        report.trace.push(TraceEvent::Gathered { seq, applied_through: seq });
        assert!(matches!(
            check_shard_trace(&report, &cfg),
            Err(Violation::ShardStampMismatch { .. })
        ));
    }

    #[test]
    fn shard_checker_catches_a_phantom_shard_ack() {
        let cfg = crate::shard::ShardSimConfig::default();
        let mut report = crate::shard::run_sharded(&cfg, &FaultPlan::none(), 1);
        report.trace.push(TraceEvent::ShardAcked { shard: 2, seq: cfg.base.num_batches });
        assert!(matches!(
            check_shard_trace(&report, &cfg),
            Err(Violation::ShardAckedWithoutApply { shard: 2, .. })
        ));
    }

    #[test]
    fn shard_checker_catches_sub_table_corruption() {
        let cfg = crate::shard::ShardSimConfig::default();
        let shard_oracle = crate::oracle::sharded_prefix(&cfg);
        let global_oracle = sequential_prefix(&cfg.base);
        let mut report = crate::shard::run_sharded(&cfg, &FaultPlan::none(), 1);
        report.shard_digests[0] ^= 1;
        assert!(matches!(
            check_shard_against_oracle(&report, &shard_oracle, &global_oracle),
            Err(Violation::ShardOracleMismatch { shard: 0, .. })
        ));
    }

    #[test]
    fn failover_checker_passes_a_clean_replicated_run() {
        let cfg = crate::failover::FailoverSimConfig::default();
        let shard_oracle = crate::oracle::sharded_prefix(&crate::shard::ShardSimConfig {
            base: cfg.base,
            shard: cfg.shard,
        });
        let global_oracle = sequential_prefix(&cfg.base);
        let report = check_failover_run(&cfg, &FaultPlan::none(), 1, &shard_oracle, &global_oracle)
            .expect("clean replicated run");
        assert_eq!(report.outcome, Outcome::Completed);
    }

    #[test]
    fn failover_checker_passes_a_primary_kill_schedule() {
        let cfg = crate::failover::FailoverSimConfig::default();
        let shard_oracle = crate::oracle::sharded_prefix(&crate::shard::ShardSimConfig {
            base: cfg.base,
            shard: cfg.shard,
        });
        let global_oracle = sequential_prefix(&cfg.base);
        let plan = FaultPlan::with(vec![Fault::PrimaryDeath { shard: 0, after_applied: 6 }]);
        let report = check_failover_run(&cfg, &plan, 3, &shard_oracle, &global_oracle)
            .unwrap_or_else(|v| panic!("kill schedule violated: {v}"));
        assert!(report.promotions[0] >= 1);
    }

    #[test]
    fn failover_checker_catches_a_per_member_double_apply() {
        let cfg = crate::failover::FailoverSimConfig::default();
        let mut report = crate::failover::run_failover(&cfg, &FaultPlan::none(), 1);
        report.trace.push(TraceEvent::ReplicaApplied { shard: 1, rank: 2, seq: 3 });
        assert_eq!(
            check_failover_trace(&report, &cfg),
            Err(Violation::ReplicaAppliedTwice { shard: 1, rank: 2, seq: 3 })
        );
    }

    #[test]
    fn failover_checker_catches_a_diverged_backup() {
        let cfg = crate::failover::FailoverSimConfig::default();
        let shard_oracle = crate::oracle::sharded_prefix(&crate::shard::ShardSimConfig {
            base: cfg.base,
            shard: cfg.shard,
        });
        let global_oracle = sequential_prefix(&cfg.base);
        let mut report = crate::failover::run_failover(&cfg, &FaultPlan::none(), 1);
        if let Some(d) = report.member_digests[0][1].as_mut() {
            *d ^= 1;
        }
        assert!(matches!(
            check_failover_against_oracle(&report, &shard_oracle, &global_oracle),
            Err(Violation::ReplicaDiverged { shard: 0, rank: 1, .. })
        ));
    }

    #[test]
    fn failover_checker_requires_completion() {
        let cfg = crate::failover::FailoverSimConfig::default();
        let shard_oracle = crate::oracle::sharded_prefix(&crate::shard::ShardSimConfig {
            base: cfg.base,
            shard: cfg.shard,
        });
        let global_oracle = sequential_prefix(&cfg.base);
        // a worker death is NOT survivable by failover; the replicated
        // checker must flag the unfinished schedule rather than accept it
        let plan = FaultPlan::with(vec![Fault::WorkerDeath { at_batch: 5 }]);
        assert!(matches!(
            check_failover_run(&cfg, &plan, 1, &shard_oracle, &global_oracle),
            Err(Violation::FailoverIncomplete { .. })
        ));
    }

    #[test]
    fn checker_catches_table_corruption() {
        let cfg = SimConfig::default();
        let oracle = sequential_prefix(&cfg);
        let mut report = run(&cfg, &FaultPlan::none(), 1);
        report.table_digest ^= 1;
        assert!(matches!(
            check_against_oracle(&report, &oracle),
            Err(Violation::OracleMismatch { .. })
        ));
    }

    #[test]
    fn violations_render_for_humans() {
        let v = Violation::StalenessExceeded { seq: 9, applied_through: 1, bound: 6 };
        assert!(v.to_string().contains("staleness 8 exceeds bound 6"));
    }
}
