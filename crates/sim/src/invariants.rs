//! The staleness-protocol invariant checker.
//!
//! Four families of invariants, checked after (not during) a run so the
//! simulation itself stays an unjudged reproduction of events:
//!
//! 1. **exactly-once** — every acknowledged push was applied, and pushes
//!    were applied exactly once, in sequence order, no matter how the
//!    link dropped, duplicated or reordered deliveries;
//! 2. **staleness bound** — every `PrefetchedBatch` stamp satisfies
//!    `batch_seq − applied_through ≤ staleness_bound`, and the stamps are
//!    monotone across gathers (the server's `applied` never regresses);
//! 3. **schedule independence** — the final tables at `applied = k` are
//!    byte-identical to the sequential oracle's prefix digest at `k`
//!    ([`crate::oracle`]);
//! 4. **replay determinism** — the same `(config, plan, seed)` reproduces
//!    the same trace and the same final bytes.

use crate::fault::FaultPlan;
use crate::oracle::Oracle;
use crate::sim::{run, Outcome, SimConfig, SimReport};
use crate::trace::TraceEvent;
use std::fmt;

/// A detected invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A push was applied more than once (exactly-once broken).
    AppliedTwice {
        /// Re-applied batch.
        seq: u64,
    },
    /// Applies skipped or reordered sequence numbers.
    AppliedOutOfOrder {
        /// Batch that was applied.
        seq: u64,
        /// Batch that should have been next.
        expected: u64,
    },
    /// The worker was acknowledged for a push the server never applied.
    AckedWithoutApply {
        /// Acknowledged batch.
        seq: u64,
    },
    /// A batch was gathered or trained with a stamp beyond the bound.
    StalenessExceeded {
        /// Batch sequence number.
        seq: u64,
        /// The stamp it carried.
        applied_through: u64,
        /// The configured bound.
        bound: u64,
    },
    /// `applied_through` regressed between successive gathers.
    StampRegressed {
        /// Batch whose stamp regressed.
        seq: u64,
        /// The regressed stamp.
        applied_through: u64,
        /// The previous (higher) stamp.
        prev: u64,
    },
    /// Final tables differ from the sequential oracle at the same
    /// applied count — the pipeline computed something sequential
    /// training would not have.
    OracleMismatch {
        /// Applied batches at termination.
        applied: u64,
        /// Digest the run produced.
        got: u64,
        /// Digest the oracle requires.
        want: u64,
    },
    /// Two runs of the same `(config, plan, seed)` diverged.
    ReplayDiverged {
        /// The replayed schedule seed.
        seed: u64,
    },
    /// A run claimed completion without applying every batch.
    IncompleteCompletion {
        /// Batches actually applied.
        applied: u64,
        /// Batches scheduled.
        expected: u64,
    },
    /// The run exhausted its event budget — a livelock.
    OutOfBudget,
    /// A crash-recovered run failed to finish the schedule.
    RecoveryIncomplete {
        /// Batches applied when the recovered run ended.
        applied: u64,
        /// Batches scheduled.
        expected: u64,
    },
    /// A crash-recovered run finished with tables that differ from the
    /// sequential oracle — recovery lost or corrupted training state.
    RecoveryDiverged {
        /// Digest the recovered run produced.
        got: u64,
        /// Digest the oracle requires.
        want: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::AppliedTwice { seq } => write!(f, "push {seq} applied more than once"),
            Violation::AppliedOutOfOrder { seq, expected } => {
                write!(f, "push {seq} applied while {expected} was next in order")
            }
            Violation::AckedWithoutApply { seq } => {
                write!(f, "push {seq} acknowledged but never applied")
            }
            Violation::StalenessExceeded { seq, applied_through, bound } => write!(
                f,
                "batch {seq} stamped applied_through={applied_through}, \
                 staleness {} exceeds bound {bound}",
                seq - applied_through
            ),
            Violation::StampRegressed { seq, applied_through, prev } => write!(
                f,
                "batch {seq} stamped applied_through={applied_through} after a stamp of {prev}"
            ),
            Violation::OracleMismatch { applied, got, want } => write!(
                f,
                "tables at applied={applied} digest to {got:#018x}, \
                 sequential oracle requires {want:#018x}"
            ),
            Violation::ReplayDiverged { seed } => {
                write!(f, "replay of schedule seed {seed} diverged")
            }
            Violation::IncompleteCompletion { applied, expected } => {
                write!(f, "run completed with {applied}/{expected} batches applied")
            }
            Violation::OutOfBudget => write!(f, "event budget exhausted (livelock)"),
            Violation::RecoveryIncomplete { applied, expected } => {
                write!(f, "recovered run ended with {applied}/{expected} batches applied")
            }
            Violation::RecoveryDiverged { got, want } => write!(
                f,
                "recovered run's tables digest to {got:#018x}, \
                 sequential oracle requires {want:#018x}"
            ),
        }
    }
}

/// Checks the trace-level invariants (exactly-once, staleness bound,
/// stamp monotonicity, outcome consistency) of one finished run.
pub fn check_trace(report: &SimReport, cfg: &SimConfig) -> Result<(), Violation> {
    if report.outcome == Outcome::OutOfBudget {
        return Err(Violation::OutOfBudget);
    }
    let mut next_apply = 0u64;
    let mut last_stamp = 0u64;
    for e in &report.trace.events {
        match *e {
            TraceEvent::Applied { seq } => {
                if seq < next_apply {
                    return Err(Violation::AppliedTwice { seq });
                }
                if seq > next_apply {
                    return Err(Violation::AppliedOutOfOrder { seq, expected: next_apply });
                }
                next_apply += 1;
            }
            TraceEvent::Acked { seq } if seq >= next_apply => {
                return Err(Violation::AckedWithoutApply { seq });
            }
            TraceEvent::Gathered { seq, applied_through } => {
                if seq - applied_through > cfg.staleness_bound {
                    return Err(Violation::StalenessExceeded {
                        seq,
                        applied_through,
                        bound: cfg.staleness_bound,
                    });
                }
                if applied_through < last_stamp {
                    return Err(Violation::StampRegressed {
                        seq,
                        applied_through,
                        prev: last_stamp,
                    });
                }
                last_stamp = applied_through;
            }
            TraceEvent::PrefetchSynced { seq, applied_through }
                if seq - applied_through > cfg.staleness_bound =>
            {
                return Err(Violation::StalenessExceeded {
                    seq,
                    applied_through,
                    bound: cfg.staleness_bound,
                });
            }
            _ => {}
        }
    }
    if next_apply != report.applied {
        // the trace and the server disagree about progress
        return Err(Violation::AppliedOutOfOrder { seq: report.applied, expected: next_apply });
    }
    if report.outcome == Outcome::Completed && report.applied != cfg.num_batches {
        return Err(Violation::IncompleteCompletion {
            applied: report.applied,
            expected: cfg.num_batches,
        });
    }
    Ok(())
}

/// Checks schedule independence: the run's final tables must digest to
/// the oracle's prefix at the same applied count — even for runs a fault
/// cut short.
pub fn check_against_oracle(report: &SimReport, oracle: &Oracle) -> Result<(), Violation> {
    let want = oracle.prefix_digests[report.applied as usize];
    if report.table_digest != want {
        return Err(Violation::OracleMismatch {
            applied: report.applied,
            got: report.table_digest,
            want,
        });
    }
    Ok(())
}

/// Runs `(cfg, plan, seed)` twice, demands bit-identical traces and
/// tables, then checks every trace- and oracle-level invariant on the
/// result. This is the full per-seed verdict the sweep and the CLI use.
pub fn check_run(
    cfg: &SimConfig,
    plan: &FaultPlan,
    schedule_seed: u64,
    oracle: &Oracle,
) -> Result<SimReport, Violation> {
    let a = run(cfg, plan, schedule_seed);
    let b = run(cfg, plan, schedule_seed);
    if a.trace != b.trace || a.table_digest != b.table_digest || a.final_tick != b.final_tick {
        return Err(Violation::ReplayDiverged { seed: schedule_seed });
    }
    check_trace(&a, cfg)?;
    check_against_oracle(&a, oracle)?;
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use crate::oracle::sequential_prefix;

    #[test]
    fn fault_free_run_passes_every_check() {
        let cfg = SimConfig::default();
        let oracle = sequential_prefix(&cfg);
        let report = check_run(&cfg, &FaultPlan::none(), 1, &oracle).expect("clean run");
        assert_eq!(report.outcome, Outcome::Completed);
    }

    #[test]
    fn faulted_runs_still_match_the_oracle_prefix() {
        let cfg = SimConfig::default();
        let oracle = sequential_prefix(&cfg);
        for plan in [
            FaultPlan::with(vec![Fault::WorkerDeath { at_batch: 9 }]),
            FaultPlan::with(vec![Fault::ServerDeath { after_applied: 4 }]),
            FaultPlan::with(vec![
                Fault::DropPush { seq: 1, delivery: 1 },
                Fault::GradQueueSaturation { start: 20, ticks: 30 },
            ]),
        ] {
            let report = check_run(&cfg, &plan, 77, &oracle)
                .unwrap_or_else(|v| panic!("plan [{plan}] violated: {v}"));
            // partial progress still matches the sequential prefix exactly
            assert_eq!(report.table_digest, oracle.prefix_digests[report.applied as usize]);
        }
    }

    #[test]
    fn checker_catches_a_double_apply() {
        let cfg = SimConfig::default();
        let mut report = run(&cfg, &FaultPlan::none(), 1);
        report.trace.push(TraceEvent::Applied { seq: 3 });
        assert_eq!(check_trace(&report, &cfg), Err(Violation::AppliedTwice { seq: 3 }));
    }

    #[test]
    fn checker_catches_a_stale_stamp() {
        let cfg = SimConfig::default();
        let mut report = run(&cfg, &FaultPlan::none(), 1);
        report
            .trace
            .push(TraceEvent::Gathered { seq: 23, applied_through: 23 - cfg.staleness_bound - 1 });
        assert!(matches!(
            check_trace(&report, &cfg),
            Err(Violation::StalenessExceeded { seq: 23, .. })
        ));
    }

    #[test]
    fn checker_catches_a_phantom_ack() {
        let cfg = SimConfig { num_batches: 0, ..SimConfig::default() };
        let mut report = run(&cfg, &FaultPlan::none(), 1);
        report.trace.push(TraceEvent::Acked { seq: 5 });
        assert_eq!(check_trace(&report, &cfg), Err(Violation::AckedWithoutApply { seq: 5 }));
    }

    #[test]
    fn checker_catches_table_corruption() {
        let cfg = SimConfig::default();
        let oracle = sequential_prefix(&cfg);
        let mut report = run(&cfg, &FaultPlan::none(), 1);
        report.table_digest ^= 1;
        assert!(matches!(
            check_against_oracle(&report, &oracle),
            Err(Violation::OracleMismatch { .. })
        ));
    }

    #[test]
    fn violations_render_for_humans() {
        let v = Violation::StalenessExceeded { seq: 9, applied_through: 1, bound: 6 };
        assert!(v.to_string().contains("staleness 8 exceeds bound 6"));
    }
}
