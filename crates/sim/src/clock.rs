//! Virtual time and the deterministic event queue.
//!
//! The simulator never reads a real clock (consistent with the repo's
//! `instant-now` lint): time is a `u64` tick counter that only advances
//! when the scheduler pops the next event. Determinism rests on two
//! properties enforced here:
//!
//! * **total order** — events are ordered by `(time, ticket)`, where the
//!   ticket is the insertion sequence number, so simultaneous events pop
//!   in the order they were scheduled, never in heap-internal order;
//! * **monotonicity** — popping asserts that virtual time never moves
//!   backwards, so a handler scheduling into the past is a bug caught at
//!   the source.

use std::collections::BinaryHeap;

/// One scheduled event. Ordering compares `(time, ticket)` only — the
/// payload never participates, so `E` needs no `Ord`.
struct Scheduled<E> {
    time: u64,
    ticket: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.ticket == other.ticket
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, ticket) first.
        other.time.cmp(&self.time).then_with(|| other.ticket.cmp(&self.ticket))
    }
}

/// A deterministic discrete-event scheduler with a virtual clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_ticket: u64,
    now: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at tick 0.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_ticket: 0, now: 0 }
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire `delay` ticks from now.
    pub fn schedule(&mut self, delay: u64, event: E) {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.heap.push(Scheduled { time: self.now.saturating_add(delay), ticket, event });
    }

    /// Pops the next event, advancing the virtual clock to its fire time.
    pub fn pop(&mut self) -> Option<E> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "virtual time must not regress");
        self.now = s.time;
        Some(s.event)
    }
}

/// splitmix64 — the simulator's seed-mixing primitive. Small, stateless
/// and well distributed; used to derive independent deterministic streams
/// (fault parameters, latency jitter, pseudo-loss constants) from one
/// master seed without coupling them.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "c");
        q.schedule(1, "a");
        q.schedule(3, "b");
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.now(), 1);
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c"));
        assert_eq!(q.now(), 5);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for k in 0..100 {
            q.schedule(7, k);
        }
        for k in 0..100 {
            assert_eq!(q.pop(), Some(k));
        }
    }

    #[test]
    fn delays_compose_from_current_time() {
        let mut q = EventQueue::new();
        q.schedule(2, "first");
        assert_eq!(q.pop(), Some("first"));
        q.schedule(2, "second"); // scheduled at now=2, fires at 4
        assert_eq!(q.pop(), Some("second"));
        assert_eq!(q.now(), 4);
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // low bits must differ across consecutive seeds (used modulo small n)
        let lows: std::collections::HashSet<u64> = (0..64).map(|x| splitmix64(x) % 16).collect();
        assert!(lows.len() > 8);
    }
}
