//! Crash → recover → resume scenarios, and the crash sweep CI runs.
//!
//! The scenario under test is the durability claim of DESIGN.md §11:
//! *crash the process at any point — including between any two steps of
//! the checkpoint store's atomic write protocol, or mid-write with a torn
//! file — recover from whatever survived, resume, and the final tables
//! are byte-identical to the sequential oracle.*
//!
//! [`run_with_recovery`] drives it in two phases:
//!
//! 1. a faulted session ([`crate::sim::run_session`]) checkpointing
//!    through a [`CkptStore`] over [`FaultyStorage`] — process crashes
//!    ([`crate::fault::Fault::Crash`]) and storage faults
//!    ([`StorageFaultPlan`]) both kill it;
//! 2. power loss ([`MemStorage::crash`][el_pipeline::ckpt::MemStorage::crash]),
//!    at-rest corruption of the newest durable checkpoint, then a
//!    post-crash scan ([`CkptStore::latest_valid_with`]) that resumes
//!    from the newest *valid* checkpoint — or restarts cold when nothing
//!    valid survived — and runs fault-free to completion.
//!
//! The invariant ([`check_recovery`]) is that phase 2 completes with a
//! table digest equal to the oracle's final digest, and that the whole
//! two-phase scenario replays bit-for-bit. Correctness rests on schedule
//! independence: a valid checkpoint at watermark `c` is byte-identical to
//! the oracle prefix at `c`, so resuming from it can only converge back
//! to the oracle.

use crate::clock::splitmix64;
use crate::fault::{Fault, FaultPlan};
use crate::invariants::Violation;
use crate::oracle::Oracle;
use crate::sim::{build_tables, run_session, CkptSink, Outcome, ResumeState, SimConfig, SimReport};
use crate::storage::{FaultyStorage, StorageFaultPlan};
use crate::trace::TraceEvent;
use el_dlrm::embedding_bag::EmbeddingBag;
use el_pipeline::ckpt::{
    encode_frames, CkptError, CkptStore, HostedTableCheckpoint, Section, Storage,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Payload format version of [`SimCheckpoint`]'s `meta` section.
pub const SIM_CKPT_FORMAT: u32 = 1;

/// The simulator's checkpoint payload: the applied-batch watermark and
/// the hosted tables, stored through the pipeline crate's [`CkptStore`]
/// in the same framed container as training checkpoints (a `meta`
/// section `verify_bytes` understands, plus a `tables` section).
#[derive(Clone, Debug)]
pub struct SimCheckpoint {
    /// Gradient batches applied when the checkpoint was taken.
    pub applied: u64,
    /// Which shard slot these tables belong to (0 for a single-server
    /// checkpoint).
    pub shard: u32,
    /// Total shards in the layout the checkpoint was drained under (1
    /// for a single-server checkpoint).
    pub num_shards: u32,
    /// Hosted tables as of the checkpoint.
    pub tables: Vec<(usize, EmbeddingBag)>,
}

/// The `meta` section, field-compatible with the pipeline store's
/// training-checkpoint meta so `ckpt verify` reports the cursor (extra
/// fields are ignored by that tolerant parse).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct SimMeta {
    format: u32,
    next_batch: u64,
    shard: u32,
    num_shards: u32,
}

impl SimCheckpoint {
    /// A single-server checkpoint: slot 0 of a 1-shard layout.
    pub fn single(applied: u64, tables: Vec<(usize, EmbeddingBag)>) -> Self {
        Self { applied, shard: 0, num_shards: 1, tables }
    }

    /// Validates that this checkpoint belongs to slot `shard` of an
    /// `num_shards`-wide layout, rejecting a layout or slot change with a
    /// typed [`CkptError::StateMismatch`] instead of silently resuming
    /// the wrong sub-tables.
    pub fn for_slot(self, shard: u32, num_shards: u32) -> Result<Self, CkptError> {
        if self.shard != shard || self.num_shards != num_shards {
            return Err(CkptError::StateMismatch(format!(
                "checkpoint is shard {}/{} but slot {}/{} was requested",
                self.shard, self.num_shards, shard, num_shards
            )));
        }
        Ok(self)
    }

    /// Serializes into the framed container.
    pub fn to_framed_bytes(&self) -> Vec<u8> {
        let meta = SimMeta {
            format: SIM_CKPT_FORMAT,
            next_batch: self.applied,
            shard: self.shard,
            num_shards: self.num_shards,
        };
        let tables: Vec<HostedTableCheckpoint> = self
            .tables
            .iter()
            .map(|(id, table)| HostedTableCheckpoint { id: *id, table: table.clone() })
            .collect();
        let sections = vec![
            Section {
                name: "meta".into(),
                payload: serde_json::to_vec(&meta).expect("serializing to a Vec cannot fail"),
            },
            Section {
                name: "tables".into(),
                payload: serde_json::to_vec(&tables).expect("serializing to a Vec cannot fail"),
            },
        ];
        encode_frames(&sections)
    }

    /// Decodes and fully verifies a framed container.
    pub fn from_framed_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let sections = el_pipeline::ckpt::decode_frames(bytes)?;
        let find = |name: &str| -> Result<&[u8], CkptError> {
            sections
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.payload.as_slice())
                .ok_or_else(|| CkptError::Corrupt(format!("missing `{name}` section")))
        };
        let meta: SimMeta = parse_json(find("meta")?, "meta")?;
        if meta.format == 0 || meta.format > SIM_CKPT_FORMAT {
            return Err(CkptError::Version { got: meta.format, supported: SIM_CKPT_FORMAT });
        }
        if meta.num_shards == 0 || meta.shard >= meta.num_shards {
            return Err(CkptError::Corrupt(format!(
                "impossible shard slot {}/{}",
                meta.shard, meta.num_shards
            )));
        }
        let tables: Vec<HostedTableCheckpoint> = parse_json(find("tables")?, "tables")?;
        Ok(Self {
            applied: meta.next_batch,
            shard: meta.shard,
            num_shards: meta.num_shards,
            tables: tables.into_iter().map(|h| (h.id, h.table)).collect(),
        })
    }
}

/// JSON-parses a section payload with a typed corruption error.
fn parse_json<T: serde::Deserialize>(bytes: &[u8], what: &str) -> Result<T, CkptError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| CkptError::Corrupt(format!("`{what}` section not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| CkptError::Corrupt(format!("`{what}` section: {e}")))
}

/// A [`CkptSink`] that frames [`SimCheckpoint`]s into a [`CkptStore`].
pub struct StoreSink<S: Storage> {
    store: CkptStore<S>,
}

impl<S: Storage> StoreSink<S> {
    /// Wraps a store.
    pub fn new(store: CkptStore<S>) -> Self {
        Self { store }
    }
}

impl<S: Storage> CkptSink for StoreSink<S> {
    fn save(&mut self, applied: u64, tables: &[(usize, EmbeddingBag)]) -> Result<(), CkptError> {
        let ckpt = SimCheckpoint::single(applied, tables.to_vec());
        self.store.save_bytes(&ckpt.to_framed_bytes()).map(|_| ())
    }
}

/// Configuration of one crash-recovery scenario.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// The simulated run.
    pub sim: SimConfig,
    /// Checkpoint cadence in applied batches.
    pub ckpt_every: u64,
    /// Checkpoints the store retains.
    pub retain: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self { sim: SimConfig::default(), ckpt_every: 4, retain: 2 }
    }
}

/// What one crash-recovery scenario did.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The faulted, checkpointing first phase.
    pub phase1: SimReport,
    /// The fault-free resumed second phase (`None` when phase 1 already
    /// completed and no recovery was needed).
    pub phase2: Option<SimReport>,
    /// Name of the checkpoint recovery resumed from (`None` = phase 1
    /// completed, or nothing valid survived and the restart was cold).
    pub restored_from: Option<String>,
    /// Applied-batch watermark the resumed session started at.
    pub resumed_applied: u64,
    /// Digest of the scenario's final tables.
    pub final_digest: u64,
}

/// Runs one full crash-recovery scenario. Infallible by design: every
/// fault combination — including "no valid checkpoint survived" — has a
/// defined recovery (worst case a cold restart), so the only failures are
/// invariant violations, which [`check_recovery`] detects.
pub fn run_with_recovery(
    rc: &RecoveryConfig,
    plan: &FaultPlan,
    storage_plan: &StorageFaultPlan,
    schedule_seed: u64,
) -> RecoveryReport {
    // Open the store before arming the plan: creation on an empty
    // MemStorage cannot fail, and the fault timeline starts at the
    // first checkpointed save.
    let storage = FaultyStorage::new(StorageFaultPlan::none());
    let store =
        CkptStore::open(storage.clone(), rc.retain).expect("opening an empty MemStorage store");
    storage.arm(storage_plan.clone());
    let mut sink = StoreSink::new(store);

    let phase1 = run_session(&rc.sim, plan, schedule_seed, None, Some((&mut sink, rc.ckpt_every)));
    if phase1.outcome == Outcome::Completed {
        return RecoveryReport {
            resumed_applied: phase1.applied,
            final_digest: phase1.table_digest,
            phase1,
            phase2: None,
            restored_from: None,
        };
    }

    // Power loss: un-synced state vanishes, then at-rest rot sets in.
    storage.mem().crash();
    storage_plan.apply_at_rest(storage.mem());

    // Recovery scan on the surviving bytes (no injection: the new
    // process's storage is healthy).
    let store = CkptStore::open(Arc::clone(storage.mem()), rc.retain)
        .expect("reopening a MemStorage store");
    let (restored_from, resume) = match store.latest_valid_with(SimCheckpoint::from_framed_bytes) {
        Ok((name, ckpt)) => {
            (Some(name), ResumeState { applied: ckpt.applied, tables: ckpt.tables })
        }
        Err(_) => (None, ResumeState { applied: 0, tables: build_tables(&rc.sim) }),
    };
    let resumed_applied = resume.applied;

    // The restarted process draws a fresh schedule; determinism comes
    // from deriving it from the scenario seed.
    let phase2 = run_session(
        &rc.sim,
        &FaultPlan::none(),
        splitmix64(schedule_seed ^ 0x4EC0_4EC0_4EC0_4EC0),
        Some(resume),
        None,
    );
    RecoveryReport {
        final_digest: phase2.table_digest,
        phase1,
        phase2: Some(phase2),
        restored_from,
        resumed_applied,
    }
}

/// Runs a crash-recovery scenario twice, demands bit-identical outcomes,
/// and checks the durability invariant: the recovered run completes and
/// its final tables are byte-identical to the sequential oracle.
pub fn check_recovery(
    rc: &RecoveryConfig,
    plan: &FaultPlan,
    storage_plan: &StorageFaultPlan,
    schedule_seed: u64,
    oracle: &Oracle,
) -> Result<RecoveryReport, Violation> {
    let a = run_with_recovery(rc, plan, storage_plan, schedule_seed);
    let b = run_with_recovery(rc, plan, storage_plan, schedule_seed);
    if a.final_digest != b.final_digest
        || a.restored_from != b.restored_from
        || a.resumed_applied != b.resumed_applied
        || a.phase1.trace != b.phase1.trace
        || a.phase2.as_ref().map(|r| &r.trace) != b.phase2.as_ref().map(|r| &r.trace)
    {
        return Err(Violation::ReplayDiverged { seed: schedule_seed });
    }
    let last = a.phase2.as_ref().unwrap_or(&a.phase1);
    if last.outcome != Outcome::Completed {
        return Err(Violation::RecoveryIncomplete {
            applied: last.applied,
            expected: rc.sim.num_batches,
        });
    }
    let want = oracle.prefix_digests[rc.sim.num_batches as usize];
    if a.final_digest != want {
        return Err(Violation::RecoveryDiverged { got: a.final_digest, want });
    }
    Ok(a)
}

/// The fault plans seed `seed` derives for the crash sweep: the regular
/// seeded plan, guaranteed to contain at least one
/// [`Fault::Crash`] (so every sweep seed actually exercises recovery),
/// plus a seeded storage-fault plan.
pub fn crash_plans_for_seed(seed: u64, num_batches: u64) -> (FaultPlan, StorageFaultPlan) {
    let mut plan = FaultPlan::from_seed(seed, num_batches);
    if plan.crash_after().is_none() {
        let n = num_batches.max(1);
        plan.faults
            .push(Fault::Crash { after_applied: splitmix64(seed ^ 0xC4A5_11C4_A511_C4A5) % n });
    }
    (plan, StorageFaultPlan::from_seed(seed))
}

/// The reproduction record of a failed crash-sweep seed.
#[derive(Clone, Debug, PartialEq)]
pub struct CrashSweepFailure {
    /// The failing seed (derives both plans and the schedule).
    pub seed: u64,
    /// The fault plan that seed derived.
    pub plan: FaultPlan,
    /// The storage-fault plan that seed derived.
    pub storage_plan: StorageFaultPlan,
    /// What went wrong.
    pub violation: Violation,
}

impl fmt::Display for CrashSweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed: {}", self.seed)?;
        writeln!(f, "violation: {}", self.violation)?;
        writeln!(f, "fault plan:")?;
        writeln!(f, "{}", self.plan)?;
        writeln!(f, "storage-fault plan:")?;
        writeln!(f, "{}", self.storage_plan)?;
        write!(f, "reproduce with: cargo xtask sim --crash-seed {}", self.seed)
    }
}

/// Aggregate statistics of a clean crash sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashSweepSummary {
    /// Seeds swept.
    pub seeds: u64,
    /// Scenarios whose first phase died (crash fault or storage fault).
    pub crashed: u64,
    /// Recoveries that resumed from a surviving valid checkpoint.
    pub resumed: u64,
    /// Recoveries that found nothing valid and restarted cold.
    pub cold_restarts: u64,
    /// Checkpoints made durable across all first phases.
    pub checkpoints_saved: u64,
    /// Checkpoint saves that died mid-protocol.
    pub saves_failed: u64,
    /// Storage faults injected across all scenarios.
    pub storage_faults: u64,
}

/// Sweeps crash-recovery seeds `start .. start + count`, stopping at the
/// first violation. Every seed derives a plan with at least one process
/// crash plus seeded storage faults, so every scenario exercises the
/// recover-and-resume path against the shared sequential oracle.
pub fn run_crash_sweep(
    rc: &RecoveryConfig,
    start: u64,
    count: u64,
) -> Result<CrashSweepSummary, CrashSweepFailure> {
    let oracle = crate::oracle::sequential_prefix(&rc.sim);
    let mut summary = CrashSweepSummary::default();
    for seed in start..start.saturating_add(count) {
        let (plan, storage_plan) = crash_plans_for_seed(seed, rc.sim.num_batches);
        match check_recovery(rc, &plan, &storage_plan, seed, &oracle) {
            Ok(report) => {
                summary.seeds += 1;
                summary.storage_faults += storage_plan.faults.len() as u64;
                if report.phase1.outcome == Outcome::Crashed {
                    summary.crashed += 1;
                }
                if report.phase2.is_some() {
                    match report.restored_from {
                        Some(_) => summary.resumed += 1,
                        None => summary.cold_restarts += 1,
                    }
                }
                summary.checkpoints_saved +=
                    report.phase1.trace.count(|e| matches!(e, TraceEvent::CheckpointSaved { .. }))
                        as u64;
                summary.saves_failed +=
                    report.phase1.trace.count(|e| matches!(e, TraceEvent::CheckpointFailed { .. }))
                        as u64;
            }
            Err(violation) => {
                return Err(CrashSweepFailure { seed, plan, storage_plan, violation })
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::sequential_prefix;
    use crate::storage::StorageFault;

    fn rc() -> RecoveryConfig {
        RecoveryConfig::default()
    }

    #[test]
    fn sim_checkpoint_round_trips() {
        let tables = build_tables(&SimConfig::default());
        for num_shards in [1u32, 2, 4] {
            for shard in 0..num_shards {
                let ckpt = SimCheckpoint { applied: 7, shard, num_shards, tables: tables.clone() };
                let bytes = ckpt.to_framed_bytes();
                let back = SimCheckpoint::from_framed_bytes(&bytes).unwrap();
                assert_eq!((back.applied, back.shard, back.num_shards), (7, shard, num_shards));
                assert_eq!(
                    crate::sim::digest_tables(&back.tables),
                    crate::sim::digest_tables(&tables),
                    "tables must survive byte-identically"
                );
                // the shared verifier understands the meta section
                let info = el_pipeline::ckpt::verify_bytes(&bytes).unwrap();
                assert_eq!(info.next_batch, 7);
            }
        }
    }

    #[test]
    fn sim_checkpoint_rejects_a_layout_or_slot_change() {
        let tables = build_tables(&SimConfig::default());
        let ckpt = SimCheckpoint { applied: 7, shard: 1, num_shards: 4, tables };
        // the right slot passes through unchanged
        let same = ckpt.clone().for_slot(1, 4).unwrap();
        assert_eq!((same.shard, same.num_shards), (1, 4));
        // wrong slot and wrong layout are both typed rejections
        for (shard, num_shards) in [(2, 4), (1, 2), (0, 1)] {
            match ckpt.clone().for_slot(shard, num_shards) {
                Err(CkptError::StateMismatch(msg)) => {
                    assert!(msg.contains("1/4"), "message names the stored slot: {msg}");
                }
                Err(other) => panic!("slot {shard}/{num_shards} must be StateMismatch: {other:?}"),
                Ok(_) => panic!("slot {shard}/{num_shards} must be rejected"),
            }
        }
        // an impossible slot on disk is corruption, not a resume target
        let mut bad = ckpt.clone();
        bad.shard = 9;
        let bytes = bad.to_framed_bytes();
        assert!(matches!(SimCheckpoint::from_framed_bytes(&bytes), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn crash_then_recover_matches_the_oracle() {
        let rc = rc();
        let oracle = sequential_prefix(&rc.sim);
        let plan = FaultPlan::with(vec![Fault::Crash { after_applied: 13 }]);
        let report = check_recovery(&rc, &plan, &StorageFaultPlan::none(), 3, &oracle)
            .unwrap_or_else(|v| panic!("violated: {v}"));
        assert_eq!(report.phase1.outcome, Outcome::Crashed);
        assert_eq!(report.resumed_applied, 12, "newest cadence-4 checkpoint before 13");
        assert!(report.restored_from.is_some());
    }

    #[test]
    fn crash_before_any_checkpoint_restarts_cold() {
        let rc = rc();
        let oracle = sequential_prefix(&rc.sim);
        let plan = FaultPlan::with(vec![Fault::Crash { after_applied: 2 }]);
        let report = check_recovery(&rc, &plan, &StorageFaultPlan::none(), 5, &oracle)
            .unwrap_or_else(|v| panic!("violated: {v}"));
        assert_eq!(report.restored_from, None, "no checkpoint at cadence 4 before applied=2");
        assert_eq!(report.resumed_applied, 0);
    }

    #[test]
    fn torn_checkpoint_write_falls_back_to_previous() {
        let rc = rc();
        let oracle = sequential_prefix(&rc.sim);
        // Crash late so several checkpoints exist; tear an op in the
        // second save's window so its temp write dies half-flushed.
        let plan = FaultPlan::with(vec![Fault::Crash { after_applied: 23 }]);
        for op in 0..40 {
            let sp = StorageFaultPlan::with(vec![StorageFault::TornWriteAtOp {
                op,
                keep_permille: 700,
            }]);
            let report = check_recovery(&rc, &plan, &sp, 11, &oracle)
                .unwrap_or_else(|v| panic!("torn op {op} violated: {v}"));
            assert!(report.phase2.is_some(), "torn op {op}: a death mid-save must force recovery");
        }
    }

    #[test]
    fn at_rest_rot_is_detected_and_routed_around() {
        let rc = rc();
        let oracle = sequential_prefix(&rc.sim);
        let plan = FaultPlan::with(vec![Fault::Crash { after_applied: 17 }]);
        for sp in [
            StorageFaultPlan::with(vec![StorageFault::BitFlipAtRest { pos_seed: 99 }]),
            StorageFaultPlan::with(vec![StorageFault::TruncateAtRest { keep_permille: 400 }]),
        ] {
            let report = check_recovery(&rc, &plan, &sp, 21, &oracle)
                .unwrap_or_else(|v| panic!("plan [{sp}] violated: {v}"));
            // the newest checkpoint (applied=16) rotted; recovery must
            // land on the retained previous one (applied=12) instead
            assert_eq!(
                report.resumed_applied, 12,
                "plan [{sp}]: rot in the newest checkpoint must fall back"
            );
        }
    }

    #[test]
    fn crash_at_every_protocol_step_recovers() {
        let rc = rc();
        let oracle = sequential_prefix(&rc.sim);
        let plan = FaultPlan::with(vec![Fault::Crash { after_applied: 23 }]);
        for op in 0..60 {
            let sp = StorageFaultPlan::with(vec![StorageFault::CrashAtOp { op }]);
            check_recovery(&rc, &plan, &sp, 13, &oracle)
                .unwrap_or_else(|v| panic!("crash at op {op} violated: {v}"));
        }
    }

    #[test]
    fn a_quick_crash_sweep_is_clean_and_diverse() {
        let rc = rc();
        let summary =
            run_crash_sweep(&rc, 0, 30).unwrap_or_else(|f| panic!("crash sweep failed:\n{f}"));
        assert_eq!(summary.seeds, 30);
        assert!(summary.crashed > 0, "every seed injects a crash; most must fire");
        assert!(summary.resumed > 0, "some recoveries must resume from a checkpoint");
        assert!(summary.checkpoints_saved > 0);
        assert!(summary.storage_faults > 0, "seeds must inject storage faults");
    }

    #[test]
    fn failures_print_a_reproduction_recipe() {
        let (plan, storage_plan) = crash_plans_for_seed(17, 24);
        assert!(plan.crash_after().is_some(), "sweep plans always crash");
        let f =
            CrashSweepFailure { seed: 17, plan, storage_plan, violation: Violation::OutOfBudget };
        let text = f.to_string();
        assert!(text.contains("seed: 17"));
        assert!(text.contains("storage-fault plan:"));
        assert!(text.contains("cargo xtask sim --crash-seed 17"));
    }
}
