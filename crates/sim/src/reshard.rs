//! Elastic resharding scenarios: drain → migrate → resume, and the
//! reshard-under-crash sweep CI runs.
//!
//! The scenario under test is the elasticity claim of DESIGN.md §14: a
//! running sharded tier can be *resharded* — drained through the durable
//! [`CkptStore`], its row ranges split and migrated onto a new placement
//! (more shards, fewer shards, a different placement seed), and resumed —
//! and the final tables are **byte-identical to a tier that never
//! resharded**, even when the process crashes at any step of the drain
//! protocol or the drained bytes rot at rest.
//!
//! [`run_reshard`] drives it in two phases around a drain:
//!
//! 1. a faulted sharded session ([`run_shard_session`]) under the *old*
//!    layout up to the reshard point;
//! 2. the drain: a pre-drain full checkpoint of the merged tables is
//!    made durable, then every old shard's sub-tables are checkpointed
//!    per-slot through a [`CkptStore`] over [`FaultyStorage`] — a storage
//!    fault anywhere in that protocol kills the process mid-drain;
//! 3. power loss, at-rest rot, then a recovery scan that prefers (a) a
//!    complete per-slot drain set merged under the old layout, falling
//!    back to (b) the pre-drain full checkpoint, or worst case (c) a cold
//!    restart — and resumes under the *new* layout, fault-free, to
//!    completion.
//!
//! The invariant ([`check_reshard`]) is that the resumed run completes
//! with a merged digest equal to the never-resharded sequential oracle's
//! final digest, that both phases pass every shard-trace invariant, and
//! that the whole scenario replays bit-for-bit.

use crate::clock::splitmix64;
use crate::fault::FaultPlan;
use crate::invariants::{check_shard_trace, Violation};
use crate::oracle::Oracle;
use crate::recovery::SimCheckpoint;
use crate::shard::{run_shard_session, ShardSimConfig, ShardSimReport};
use crate::sim::{build_tables, Outcome, ResumeState, SimConfig};
use crate::storage::{FaultyStorage, StorageFault, StorageFaultPlan};
use el_pipeline::ckpt::{CkptStore, Storage};
use el_pipeline::{merge_tables, ShardConfig};
use std::fmt;
use std::sync::Arc;

/// Configuration of one resharding scenario.
#[derive(Clone, Copy, Debug)]
pub struct ReshardConfig {
    /// The model/data universe; `num_batches` is the *total* batch count
    /// across both phases.
    pub base: SimConfig,
    /// The layout the run starts under.
    pub from: ShardConfig,
    /// The layout the run resumes under after the drain.
    pub to: ShardConfig,
    /// Applied-batch watermark at which the tier is drained and
    /// resharded. Must be `<= base.num_batches`.
    pub reshard_at: u64,
    /// Checkpoints the drain store retains; must be at least
    /// `from.num_shards + 1` so a complete drain set plus the pre-drain
    /// checkpoint survive pruning.
    pub retain: usize,
}

impl Default for ReshardConfig {
    fn default() -> Self {
        Self {
            base: SimConfig::default(),
            from: ShardConfig { num_shards: 3, rows_per_range: 16, placement_seed: 0xE1 },
            to: ShardConfig { num_shards: 2, rows_per_range: 16, placement_seed: 0xE2 },
            reshard_at: 12,
            retain: 6,
        }
    }
}

impl ReshardConfig {
    /// The phase-1 sim config: the old layout, truncated at the reshard
    /// point.
    pub fn phase_a(&self) -> ShardSimConfig {
        ShardSimConfig {
            base: SimConfig { num_batches: self.reshard_at, ..self.base },
            shard: self.from,
        }
    }

    /// The phase-2 sim config: the new layout over the full batch range.
    pub fn phase_b(&self) -> ShardSimConfig {
        ShardSimConfig { base: self.base, shard: self.to }
    }
}

/// Which durable state the post-drain recovery scan resumed from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveredFrom {
    /// A complete per-slot drain set, merged under the old layout.
    DrainSet,
    /// The pre-drain full checkpoint (some drain slot was lost).
    PreDrain,
    /// Nothing valid survived; the tier restarted cold from batch zero.
    Cold,
}

impl fmt::Display for RecoveredFrom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveredFrom::DrainSet => write!(f, "complete drain set"),
            RecoveredFrom::PreDrain => write!(f, "pre-drain checkpoint"),
            RecoveredFrom::Cold => write!(f, "cold restart"),
        }
    }
}

/// What one resharding scenario did.
#[derive(Debug)]
pub struct ReshardReport {
    /// The faulted first phase under the old layout.
    pub phase_a: ShardSimReport,
    /// The fault-free resumed second phase under the new layout.
    pub phase_b: ShardSimReport,
    /// Where recovery found its resume state.
    pub recovered_from: RecoveredFrom,
    /// Applied-batch watermark the resumed session started at.
    pub resumed_applied: u64,
    /// True when a storage fault killed the process mid-drain.
    pub drain_crashed: bool,
    /// Digest of the scenario's final merged tables.
    pub final_digest: u64,
}

/// Runs one full resharding scenario. Infallible by design, like
/// [`crate::recovery::run_with_recovery`]: every fault combination has a
/// defined recovery (worst case a cold restart under the new layout), so
/// the only failures are invariant violations, which [`check_reshard`]
/// detects.
pub fn run_reshard(
    rc: &ReshardConfig,
    live_plan: &FaultPlan,
    storage_plan: &StorageFaultPlan,
    schedule_seed: u64,
) -> ReshardReport {
    let phase_a = run_shard_session(&rc.phase_a(), live_plan, schedule_seed, None);

    // The drain store opens unarmed (creation on empty MemStorage cannot
    // fail) and the pre-drain full checkpoint is saved before the fault
    // timeline starts: the worst crash mid-drain falls back to it.
    let storage = FaultyStorage::new(StorageFaultPlan::none());
    let mut store =
        CkptStore::open(storage.clone(), rc.retain).expect("opening an empty MemStorage store");
    let mut drain_crashed = false;
    if phase_a.outcome == Outcome::Completed {
        let pre = SimCheckpoint::single(rc.reshard_at, phase_a.merged_tables.clone());
        store.save_bytes(&pre.to_framed_bytes()).expect("unarmed pre-drain save cannot fail");
        storage.arm(storage_plan.clone());
        // The drain protocol: one durable per-slot checkpoint per old
        // shard. A storage fault at any step kills the process here.
        for (s, tables) in phase_a.shard_tables.iter().enumerate() {
            let ckpt = SimCheckpoint {
                applied: rc.reshard_at,
                shard: s as u32,
                num_shards: rc.from.num_shards,
                tables: tables.clone(),
            };
            if store.save_bytes(&ckpt.to_framed_bytes()).is_err() {
                drain_crashed = true;
                break;
            }
        }
    }

    // Power loss: un-synced state vanishes, then at-rest rot sets in.
    storage.mem().crash();
    storage_plan.apply_at_rest(storage.mem());

    // Recovery scan on the surviving bytes (the new process's storage is
    // healthy). Prefer a complete drain set; fall back to the pre-drain
    // checkpoint; worst case restart cold.
    let store = CkptStore::open(Arc::clone(storage.mem()), rc.retain)
        .expect("reopening a MemStorage store");
    let (recovered_from, resume) = scan_drained(&store, rc);
    let resumed_applied = resume.applied;

    // The restarted process draws a fresh schedule; determinism comes
    // from deriving it from the scenario seed.
    let phase_b = run_shard_session(
        &rc.phase_b(),
        &FaultPlan::none(),
        splitmix64(schedule_seed ^ 0x2E5A_4DC0_2E5A_4DC0),
        Some(resume),
    );
    ReshardReport {
        final_digest: phase_b.merged_digest,
        phase_a,
        phase_b,
        recovered_from,
        resumed_applied,
        drain_crashed,
    }
}

/// The recovery scan: newest-first over whatever survived, collecting the
/// newest valid checkpoint per old-layout slot and the newest valid
/// pre-drain full checkpoint along the way.
fn scan_drained<S: Storage>(
    store: &CkptStore<S>,
    rc: &ReshardConfig,
) -> (RecoveredFrom, ResumeState) {
    let n = rc.from.num_shards as usize;
    let mut slots: Vec<Option<SimCheckpoint>> = (0..n).map(|_| None).collect();
    let mut pre_drain: Option<SimCheckpoint> = None;
    for name in store.names_newest_first().unwrap_or_default() {
        let Ok(bytes) = store.storage().read_file(&name) else { continue };
        let Ok(ckpt) = SimCheckpoint::from_framed_bytes(&bytes) else { continue };
        if ckpt.applied != rc.reshard_at {
            continue;
        }
        if ckpt.num_shards == rc.from.num_shards {
            let slot = &mut slots[ckpt.shard as usize];
            if slot.is_none() {
                *slot = Some(ckpt);
            }
        } else if ckpt.num_shards == 1 && pre_drain.is_none() {
            pre_drain = Some(ckpt);
        }
    }
    if slots.iter().all(Option::is_some) {
        let layout = rc.phase_a().layout();
        let sub: Vec<Vec<_>> = slots.into_iter().map(|s| s.unwrap().tables).collect();
        if let Ok(tables) = merge_tables(&sub, &layout) {
            return (RecoveredFrom::DrainSet, ResumeState { applied: rc.reshard_at, tables });
        }
    }
    if let Some(ckpt) = pre_drain {
        return (
            RecoveredFrom::PreDrain,
            ResumeState { applied: ckpt.applied, tables: ckpt.tables },
        );
    }
    (RecoveredFrom::Cold, ResumeState { applied: 0, tables: build_tables(&rc.base) })
}

/// Runs a resharding scenario twice, demands bit-identical outcomes, and
/// checks the elasticity invariant: both phases pass every shard-trace
/// check, the resumed run completes, and its final merged tables are
/// byte-identical to the never-resharded sequential oracle.
pub fn check_reshard(
    rc: &ReshardConfig,
    live_plan: &FaultPlan,
    storage_plan: &StorageFaultPlan,
    schedule_seed: u64,
    oracle: &Oracle,
) -> Result<ReshardReport, Violation> {
    let a = run_reshard(rc, live_plan, storage_plan, schedule_seed);
    let b = run_reshard(rc, live_plan, storage_plan, schedule_seed);
    if a.final_digest != b.final_digest
        || a.recovered_from != b.recovered_from
        || a.resumed_applied != b.resumed_applied
        || a.phase_a.trace != b.phase_a.trace
        || a.phase_b.trace != b.phase_b.trace
    {
        return Err(Violation::ReplayDiverged { seed: schedule_seed });
    }
    check_shard_trace(&a.phase_a, &rc.phase_a())?;
    check_shard_trace(&a.phase_b, &rc.phase_b())?;
    if a.phase_a.outcome == Outcome::Completed {
        let want = oracle.prefix_digests[rc.reshard_at as usize];
        if a.phase_a.merged_digest != want {
            return Err(Violation::OracleMismatch {
                applied: rc.reshard_at,
                got: a.phase_a.merged_digest,
                want,
            });
        }
    }
    if a.phase_b.outcome != Outcome::Completed {
        return Err(Violation::RecoveryIncomplete {
            applied: a.phase_b.applied.iter().copied().min().unwrap_or(0),
            expected: rc.base.num_batches,
        });
    }
    let want = oracle.prefix_digests[rc.base.num_batches as usize];
    if a.final_digest != want {
        return Err(Violation::RecoveryDiverged { got: a.final_digest, want });
    }
    Ok(a)
}

/// The scenario seed `seed` derives for the reshard sweep: an old layout
/// of 2–4 shards, a *different* new layout of 1–5 shards, a reshard point
/// inside the run, a live fault plan filtered to faults phase 1 absorbs
/// (deaths are removed so the drain always has a complete tier to drain —
/// crash coverage comes from the storage plan), and a storage plan
/// guaranteed to crash the drain protocol at some op.
pub fn reshard_plans_for_seed(
    seed: u64,
    base: &SimConfig,
) -> (ReshardConfig, FaultPlan, StorageFaultPlan) {
    let mut ctr = seed ^ 0x4E54_A4D0_4E54_A4D0;
    let mut draw = move || {
        ctr = ctr.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(ctr)
    };
    let from = 2 + (draw() % 3) as u32; // 2..=4
    let mut to = 1 + (draw() % 4) as u32; // 1..=4, bumped past `from`
    if to >= from {
        to += 1;
    }
    let reshard_at = 1 + draw() % (base.num_batches - 2);
    let rc = ReshardConfig {
        base: *base,
        from: ShardConfig {
            num_shards: from,
            rows_per_range: 16,
            placement_seed: splitmix64(seed ^ 0xA11C),
        },
        to: ShardConfig {
            num_shards: to,
            rows_per_range: 16,
            placement_seed: splitmix64(seed ^ 0xB22D),
        },
        reshard_at,
        retain: from as usize + 2,
    };
    let mut live = FaultPlan::from_seed_sharded(seed, reshard_at, from);
    live.faults.retain(|f| {
        !matches!(
            f,
            crate::fault::Fault::WorkerDeath { .. } | crate::fault::Fault::ShardDeath { .. }
        )
    });
    let mut storage = StorageFaultPlan::from_seed(seed);
    if storage.faults.is_empty() {
        storage
            .faults
            .push(StorageFault::CrashAtOp { op: splitmix64(seed ^ 0xD4A1_4D4A_14D4_A14D) % 40 });
    }
    (rc, live, storage)
}

/// The reproduction record of a failed reshard-sweep seed.
#[derive(Clone, Debug)]
pub struct ReshardSweepFailure {
    /// The failing seed (derives the layouts, both plans and the
    /// schedule).
    pub seed: u64,
    /// The scenario configuration that seed derived.
    pub config: ReshardConfig,
    /// The live fault plan that seed derived.
    pub plan: FaultPlan,
    /// The storage-fault plan that seed derived.
    pub storage_plan: StorageFaultPlan,
    /// What went wrong.
    pub violation: Violation,
}

impl fmt::Display for ReshardSweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed: {}", self.seed)?;
        writeln!(f, "violation: {}", self.violation)?;
        writeln!(
            f,
            "layout: {} -> {} shards, reshard at batch {}",
            self.config.from.num_shards, self.config.to.num_shards, self.config.reshard_at
        )?;
        writeln!(f, "live fault plan:")?;
        writeln!(f, "{}", self.plan)?;
        writeln!(f, "storage-fault plan:")?;
        writeln!(f, "{}", self.storage_plan)?;
        write!(f, "reproduce with: cargo xtask sim --reshard-seed {}", self.seed)
    }
}

/// Aggregate statistics of a clean reshard sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReshardSweepSummary {
    /// Seeds swept.
    pub seeds: u64,
    /// Scenarios whose drain died mid-protocol.
    pub drain_crashes: u64,
    /// Recoveries that merged a complete drain set.
    pub drained: u64,
    /// Recoveries that fell back to the pre-drain checkpoint.
    pub fell_back: u64,
    /// Recoveries that restarted cold.
    pub cold_restarts: u64,
    /// Scenarios that grew the shard count.
    pub grew: u64,
    /// Scenarios that shrank the shard count.
    pub shrank: u64,
    /// Storage faults injected across all scenarios.
    pub storage_faults: u64,
}

/// Sweeps resharding seeds `start .. start + count`, stopping at the
/// first violation. Every seed drains under a seed-derived old layout,
/// crashes or rots storage somewhere in the protocol, and resumes under a
/// different new layout — all checked byte-identical to the shared
/// never-resharded oracle.
pub fn run_reshard_sweep(
    base: &SimConfig,
    start: u64,
    count: u64,
) -> Result<ReshardSweepSummary, Box<ReshardSweepFailure>> {
    let oracle = crate::oracle::sequential_prefix(base);
    let mut summary = ReshardSweepSummary::default();
    for seed in start..start.saturating_add(count) {
        let (rc, plan, storage_plan) = reshard_plans_for_seed(seed, base);
        match check_reshard(&rc, &plan, &storage_plan, seed, &oracle) {
            Ok(report) => {
                summary.seeds += 1;
                summary.storage_faults += storage_plan.faults.len() as u64;
                if report.drain_crashed {
                    summary.drain_crashes += 1;
                }
                match report.recovered_from {
                    RecoveredFrom::DrainSet => summary.drained += 1,
                    RecoveredFrom::PreDrain => summary.fell_back += 1,
                    RecoveredFrom::Cold => summary.cold_restarts += 1,
                }
                if rc.to.num_shards > rc.from.num_shards {
                    summary.grew += 1;
                } else {
                    summary.shrank += 1;
                }
            }
            Err(violation) => {
                return Err(Box::new(ReshardSweepFailure {
                    seed,
                    config: rc,
                    plan,
                    storage_plan,
                    violation,
                }))
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::sequential_prefix;

    #[test]
    fn fault_free_reshard_matches_the_never_resharded_oracle() {
        let rc = ReshardConfig::default();
        let oracle = sequential_prefix(&rc.base);
        let report = check_reshard(&rc, &FaultPlan::none(), &StorageFaultPlan::none(), 3, &oracle)
            .unwrap_or_else(|v| panic!("violated: {v}"));
        assert_eq!(report.recovered_from, RecoveredFrom::DrainSet);
        assert_eq!(report.resumed_applied, rc.reshard_at);
        assert!(!report.drain_crashed);
        assert_eq!(report.final_digest, *oracle.prefix_digests.last().unwrap());
    }

    #[test]
    fn growing_and_shrinking_layouts_both_recover() {
        let base = SimConfig::default();
        let oracle = sequential_prefix(&base);
        for (from, to) in [(2u32, 4u32), (4, 2), (3, 1), (1, 3)] {
            let rc = ReshardConfig {
                base,
                from: ShardConfig { num_shards: from, rows_per_range: 16, placement_seed: 7 },
                to: ShardConfig { num_shards: to, rows_per_range: 32, placement_seed: 8 },
                reshard_at: 10,
                retain: from as usize + 2,
            };
            let report =
                check_reshard(&rc, &FaultPlan::none(), &StorageFaultPlan::none(), 5, &oracle)
                    .unwrap_or_else(|v| panic!("{from} -> {to} violated: {v}"));
            assert_eq!(report.recovered_from, RecoveredFrom::DrainSet, "{from} -> {to}");
        }
    }

    #[test]
    fn crash_at_every_drain_step_recovers() {
        let rc = ReshardConfig::default();
        let oracle = sequential_prefix(&rc.base);
        let (mut drained, mut fell_back) = (0u32, 0u32);
        for op in 0..80 {
            let sp = StorageFaultPlan::with(vec![StorageFault::CrashAtOp { op }]);
            let report = check_reshard(&rc, &FaultPlan::none(), &sp, 13, &oracle)
                .unwrap_or_else(|v| panic!("crash at op {op} violated: {v}"));
            match report.recovered_from {
                RecoveredFrom::DrainSet => drained += 1,
                RecoveredFrom::PreDrain => fell_back += 1,
                RecoveredFrom::Cold => {}
            }
        }
        assert!(drained > 0, "late crashes must leave a complete drain set");
        assert!(fell_back > 0, "mid-drain crashes must fall back to the pre-drain checkpoint");
    }

    #[test]
    fn at_rest_rot_of_a_drained_slot_falls_back() {
        let rc = ReshardConfig::default();
        let oracle = sequential_prefix(&rc.base);
        // rot the newest durable file — the last drained slot — at rest
        let sp = StorageFaultPlan::with(vec![StorageFault::BitFlipAtRest { pos_seed: 99 }]);
        let report = check_reshard(&rc, &FaultPlan::none(), &sp, 21, &oracle)
            .unwrap_or_else(|v| panic!("violated: {v}"));
        assert_eq!(
            report.recovered_from,
            RecoveredFrom::PreDrain,
            "a rotted slot must disqualify the drain set"
        );
        assert_eq!(report.resumed_applied, rc.reshard_at);
    }

    #[test]
    fn reshard_plans_cover_layout_diversity() {
        let base = SimConfig::default();
        let mut froms = std::collections::BTreeSet::new();
        let (mut grew, mut shrank) = (0u32, 0u32);
        for seed in 0..200 {
            let (rc, _, storage) = reshard_plans_for_seed(seed, &base);
            assert_ne!(rc.from.num_shards, rc.to.num_shards, "seed {seed} must change layout");
            assert!((2..=4).contains(&rc.from.num_shards));
            assert!((1..=5).contains(&rc.to.num_shards));
            assert!((1..base.num_batches - 1).contains(&rc.reshard_at));
            assert!(!storage.faults.is_empty(), "seed {seed} must fault storage");
            froms.insert(rc.from.num_shards);
            if rc.to.num_shards > rc.from.num_shards {
                grew += 1;
            } else {
                shrank += 1;
            }
        }
        assert_eq!(froms.len(), 3, "old layouts must cover 2..=4 shards");
        assert!(grew > 0 && shrank > 0, "sweeps must both grow and shrink");
    }

    #[test]
    fn a_quick_reshard_sweep_is_clean_and_diverse() {
        let base = SimConfig::default();
        let summary = run_reshard_sweep(&base, 0, 12)
            .unwrap_or_else(|f| panic!("reshard sweep failed:\n{f}"));
        assert_eq!(summary.seeds, 12);
        assert_eq!(summary.grew + summary.shrank, 12);
        assert!(summary.storage_faults > 0, "seeds must inject storage faults");
        assert!(
            summary.drained + summary.fell_back > 0,
            "recoveries must use the drained state, not only cold restarts"
        );
    }

    #[test]
    fn failures_print_a_reproduction_recipe() {
        let (rc, plan, storage_plan) = reshard_plans_for_seed(17, &SimConfig::default());
        let f = ReshardSweepFailure {
            seed: 17,
            config: rc,
            plan,
            storage_plan,
            violation: Violation::OutOfBudget,
        };
        let text = f.to_string();
        assert!(text.contains("seed: 17"));
        assert!(text.contains("layout:"));
        assert!(text.contains("cargo xtask sim --reshard-seed 17"));
    }
}
