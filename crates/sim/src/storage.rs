//! Fault-injecting storage for crash-recovery scenarios.
//!
//! [`FaultyStorage`] wraps the pipeline crate's deterministic
//! [`MemStorage`] and counts every [`Storage`]-trait call as one *storage
//! operation*. A seeded [`StorageFaultPlan`] can kill the process at any
//! operation index — i.e. between any two steps of the checkpoint store's
//! atomic write protocol — or tear a `write_file` so that only a prefix
//! of the bytes reaches the platter. Two further fault kinds corrupt the
//! newest *durable* checkpoint after the crash (a flipped bit, a
//! truncated tail), modelling at-rest rot the recovery scan must detect
//! by checksum and route around.
//!
//! Like [`crate::fault::FaultPlan`], plans derive deterministically from
//! a seed, so a failing crash-sweep seed replays bit-for-bit.

use crate::clock::splitmix64;
use el_pipeline::ckpt::{CkptError, MemStorage, Storage};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// One injected storage fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageFault {
    /// The process dies *instead of* executing storage operation `op`
    /// (a 0-based count over all [`Storage`]-trait calls). Everything the
    /// protocol made durable before that operation survives; nothing
    /// else does.
    CrashAtOp {
        /// Operation index at which the process dies.
        op: u64,
    },
    /// If storage operation `op` is a `write_file`, only the leading
    /// `keep_permille`/1000 of the bytes are written — and *those reach
    /// the platter* — before the process dies. The classic torn write.
    TornWriteAtOp {
        /// Operation index of the torn write.
        op: u64,
        /// How much of the payload survives, in 1/1000ths.
        keep_permille: u16,
    },
    /// After the crash, one bit of the newest durable checkpoint file
    /// flips at rest (bit rot the frame checksums must catch).
    BitFlipAtRest {
        /// Seed selecting the flipped byte and bit.
        pos_seed: u64,
    },
    /// After the crash, the newest durable checkpoint file is truncated
    /// at rest to `keep_permille`/1000 of its length.
    TruncateAtRest {
        /// How much of the file survives, in 1/1000ths.
        keep_permille: u16,
    },
}

impl fmt::Display for StorageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageFault::CrashAtOp { op } => write!(f, "process dies at storage op {op}"),
            StorageFault::TornWriteAtOp { op, keep_permille } => {
                write!(f, "write at storage op {op} torn to {keep_permille}/1000 of its bytes")
            }
            StorageFault::BitFlipAtRest { pos_seed } => {
                write!(
                    f,
                    "one bit of the newest durable checkpoint flips at rest (seed {pos_seed})"
                )
            }
            StorageFault::TruncateAtRest { keep_permille } => {
                write!(
                    f,
                    "newest durable checkpoint truncated at rest to {keep_permille}/1000 of its \
                     length"
                )
            }
        }
    }
}

/// A replayable set of storage faults for one crash-recovery scenario.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StorageFaultPlan {
    /// The injected faults, in generation order.
    pub faults: Vec<StorageFault>,
}

impl fmt::Display for StorageFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "(storage-fault-free)");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "- {fault}")?;
        }
        Ok(())
    }
}

impl StorageFaultPlan {
    /// The empty (fault-free) plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan containing exactly the given faults.
    pub fn with(faults: Vec<StorageFault>) -> Self {
        Self { faults }
    }

    /// Derives a plan deterministically from `seed`: zero to two faults,
    /// every parameter from a splitmix64 stream. Crash/torn-write
    /// operation indices are drawn in `0..96`, which spans the first
    /// several checkpoint saves of a default-sized run (each save is a
    /// handful of operations plus the manifest rewrite).
    pub fn from_seed(seed: u64) -> Self {
        let mut ctr = seed ^ 0x57_0F_A0_17_57_0F_A0_17;
        let mut draw = move || {
            ctr = ctr.wrapping_add(1);
            splitmix64(ctr)
        };
        let count = (draw() % 3) as usize; // 0..=2 faults
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let fault = match draw() % 4 {
                0 => StorageFault::CrashAtOp { op: draw() % 96 },
                1 => StorageFault::TornWriteAtOp {
                    op: draw() % 96,
                    keep_permille: (draw() % 1000) as u16,
                },
                2 => StorageFault::BitFlipAtRest { pos_seed: draw() },
                _ => StorageFault::TruncateAtRest { keep_permille: (draw() % 1000) as u16 },
            };
            faults.push(fault);
        }
        Self { faults }
    }

    /// True when the process dies instead of executing operation `op`.
    pub fn crashes_at(&self, op: u64) -> bool {
        self.faults.iter().any(|f| matches!(f, StorageFault::CrashAtOp { op: o } if *o == op))
    }

    /// The surviving fraction of a torn write at operation `op`, if any.
    pub fn torn_at(&self, op: u64) -> Option<u16> {
        self.faults.iter().find_map(|f| match f {
            StorageFault::TornWriteAtOp { op: o, keep_permille } if *o == op => {
                Some(*keep_permille)
            }
            _ => None,
        })
    }

    /// Applies the at-rest faults (bit flips, truncation) to the newest
    /// durable checkpoint file. Called by the recovery driver after the
    /// crash, before the post-crash scan.
    pub fn apply_at_rest(&self, mem: &MemStorage) {
        let newest = mem
            .durable_snapshot()
            .into_iter()
            .filter(|(n, _)| n.starts_with("ckpt-") && n.ends_with(".elck"))
            // zero-padded sequence numbers make lexicographic max the newest
            .max_by(|a, b| a.0.cmp(&b.0));
        let Some((name, mut bytes)) = newest else { return };
        let mut touched = false;
        for fault in &self.faults {
            match fault {
                StorageFault::BitFlipAtRest { pos_seed } if !bytes.is_empty() => {
                    let pos = (splitmix64(*pos_seed) % bytes.len() as u64) as usize;
                    let bit = splitmix64(pos_seed.wrapping_add(0xB17)) % 8;
                    bytes[pos] ^= 1 << bit;
                    touched = true;
                }
                StorageFault::TruncateAtRest { keep_permille } => {
                    let keep = bytes.len() * usize::from(*keep_permille) / 1000;
                    bytes.truncate(keep);
                    touched = true;
                }
                _ => {}
            }
        }
        if touched {
            mem.corrupt_file(&name, bytes);
        }
    }
}

/// Mutable injection state shared by all clones of a [`FaultyStorage`].
struct FaultCtl {
    plan: StorageFaultPlan,
    /// Storage operations executed so far.
    op: u64,
    /// Once dead, every further operation fails (the process is gone).
    dead: bool,
}

/// A [`Storage`] wrapper that injects the operation-indexed faults of a
/// [`StorageFaultPlan`] into a shared [`MemStorage`]. Clones share both
/// the backing store and the operation counter, so a [`crate::sim::CkptSink`]
/// and the recovery driver observe one consistent fault timeline.
#[derive(Clone)]
pub struct FaultyStorage {
    mem: Arc<MemStorage>,
    ctl: Arc<Mutex<FaultCtl>>,
}

impl FaultyStorage {
    /// Fresh empty storage with `plan` armed.
    pub fn new(plan: StorageFaultPlan) -> Self {
        Self {
            mem: Arc::new(MemStorage::new()),
            ctl: Arc::new(Mutex::new(FaultCtl { plan, op: 0, dead: false })),
        }
    }

    /// Replaces the armed plan (used to open the store fault-free before
    /// the faulted run begins).
    pub fn arm(&self, plan: StorageFaultPlan) {
        self.ctl.lock().plan = plan;
    }

    /// The shared backing store (for [`MemStorage::crash`] and the
    /// post-crash recovery scan, which bypasses injection).
    pub fn mem(&self) -> &Arc<MemStorage> {
        &self.mem
    }

    /// True once an injected fault has killed the process.
    pub fn dead(&self) -> bool {
        self.ctl.lock().dead
    }

    /// Counts one operation; returns its index and any torn-write fraction
    /// assigned to it, or the injected death.
    fn begin_op(&self) -> Result<(u64, Option<u16>), CkptError> {
        let mut ctl = self.ctl.lock();
        if ctl.dead {
            return Err(CkptError::Io("simulated process death: storage unavailable".into()));
        }
        let op = ctl.op;
        ctl.op += 1;
        if ctl.plan.crashes_at(op) {
            ctl.dead = true;
            return Err(CkptError::Io(format!("simulated crash at storage op {op}")));
        }
        Ok((op, ctl.plan.torn_at(op)))
    }

    fn die(&self, msg: String) -> CkptError {
        self.ctl.lock().dead = true;
        CkptError::Io(msg)
    }
}

impl Storage for FaultyStorage {
    fn write_file(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        let (op, torn) = self.begin_op()?;
        if let Some(keep_permille) = torn {
            let keep = bytes.len() * usize::from(keep_permille) / 1000;
            // The torn prefix reached the platter: write it and force
            // durability so the post-crash view contains the fragment.
            self.mem.write_file(name, &bytes[..keep])?;
            self.mem.sync_file(name)?;
            return Err(self.die(format!(
                "simulated torn write of `{name}` at storage op {op}: {keep}/{} bytes persisted",
                bytes.len()
            )));
        }
        self.mem.write_file(name, bytes)
    }

    fn sync_file(&self, name: &str) -> Result<(), CkptError> {
        self.begin_op()?;
        self.mem.sync_file(name)
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), CkptError> {
        self.begin_op()?;
        self.mem.rename(from, to)
    }

    fn sync_dir(&self) -> Result<(), CkptError> {
        self.begin_op()?;
        self.mem.sync_dir()
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        self.begin_op()?;
        self.mem.read_file(name)
    }

    fn list(&self) -> Result<Vec<String>, CkptError> {
        self.begin_op()?;
        self.mem.list()
    }

    fn remove_file(&self, name: &str) -> Result<(), CkptError> {
        self.begin_op()?;
        self.mem.remove_file(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_diverse() {
        let mut kinds = [false; 4];
        for seed in 0..500u64 {
            assert_eq!(StorageFaultPlan::from_seed(seed), StorageFaultPlan::from_seed(seed));
            for f in &StorageFaultPlan::from_seed(seed).faults {
                let k = match f {
                    StorageFault::CrashAtOp { .. } => 0,
                    StorageFault::TornWriteAtOp { .. } => 1,
                    StorageFault::BitFlipAtRest { .. } => 2,
                    StorageFault::TruncateAtRest { .. } => 3,
                };
                kinds[k] = true;
            }
        }
        assert!(kinds.iter().all(|&k| k), "500 seeds must cover all kinds: {kinds:?}");
        assert!(
            (0..100u64).any(|s| StorageFaultPlan::from_seed(s).faults.is_empty()),
            "the sweep must include storage-fault-free baselines"
        );
    }

    #[test]
    fn crash_at_op_kills_the_process_permanently() {
        let st =
            FaultyStorage::new(StorageFaultPlan::with(vec![StorageFault::CrashAtOp { op: 1 }]));
        st.write_file("a", b"hello").unwrap(); // op 0
        assert!(st.sync_file("a").is_err()); // op 1: dies
        assert!(st.dead());
        assert!(st.read_file("a").is_err(), "a dead process cannot read");
        // the un-synced write never became durable
        st.mem().crash();
        assert!(st.mem().durable_snapshot().is_empty());
    }

    #[test]
    fn torn_write_persists_exactly_the_prefix() {
        let st = FaultyStorage::new(StorageFaultPlan::with(vec![StorageFault::TornWriteAtOp {
            op: 0,
            keep_permille: 500,
        }]));
        assert!(st.write_file("f", &[7u8; 10]).is_err());
        assert!(st.dead());
        st.mem().crash();
        let snap = st.mem().durable_snapshot();
        assert_eq!(snap.get("f").map(Vec::len), Some(5), "half the bytes reached the platter");
    }

    #[test]
    fn at_rest_faults_hit_only_the_newest_checkpoint() {
        let mem = MemStorage::new();
        let put = |name: &str, bytes: &[u8]| {
            mem.write_file(name, bytes).unwrap();
            mem.sync_file(name).unwrap();
        };
        put("ckpt-00000000.elck", &[1u8; 8]);
        put("ckpt-00000001.elck", &[2u8; 8]);
        put("MANIFEST.json", b"{}");
        let plan =
            StorageFaultPlan::with(vec![StorageFault::TruncateAtRest { keep_permille: 500 }]);
        plan.apply_at_rest(&mem);
        let snap = mem.durable_snapshot();
        assert_eq!(snap["ckpt-00000000.elck"].len(), 8, "older checkpoint untouched");
        assert_eq!(snap["ckpt-00000001.elck"].len(), 4, "newest checkpoint truncated");
        assert_eq!(snap["MANIFEST.json"], b"{}", "manifest untouched");
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mem = MemStorage::new();
        mem.write_file("ckpt-00000000.elck", &[0u8; 16]).unwrap();
        mem.sync_file("ckpt-00000000.elck").unwrap();
        StorageFaultPlan::with(vec![StorageFault::BitFlipAtRest { pos_seed: 42 }])
            .apply_at_rest(&mem);
        let bytes = mem.durable_snapshot()["ckpt-00000000.elck"].clone();
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped: {bytes:?}");
    }
}
