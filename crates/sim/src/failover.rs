//! The replicated-tier discrete-event simulation.
//!
//! [`crate::shard`] drives N independent [`HostServer`] shards;
//! this module drives the **replicated** tier of
//! `el_pipeline::replica`: each shard is a K-member replica group whose
//! intake applies in lockstep to every alive member, so primary and
//! backups are byte-identical at every applied watermark. On top of the
//! shard sim's worker/router/link machinery it models:
//!
//! * **heartbeats + failure detection** — each shard's believed primary
//!   beats on the jittered [`HeartbeatConfig`] schedule; the worker runs
//!   one [`FailureDetector`] per shard (the exact types the pipeline
//!   trainer uses) and, on suspicion, promotes the next rank cyclically
//!   and reroutes traffic ([`TraceEvent::Promoted`]);
//! * **fencing** — a falsely-suspected primary (its heartbeats were
//!   dropped, not its life) steps down ([`TraceEvent::SteppedDown`]);
//!   lockstep replication makes the hand-off byte-exact either way;
//! * **catch-up** — a dead backup scheduled to rejoin restores a real
//!   framed [`SimCheckpoint`] taken from the current primary (the PR 5
//!   byte format, round-tripped through
//!   [`SimCheckpoint::to_framed_bytes`]) and resumes lockstep intake
//!   ([`TraceEvent::CatchupInstalled`]);
//! * **partitions** — [`crate::fault::Fault::Partition`] drops all
//!   worker↔shard traffic in a window (gathers gate, pushes and acks
//!   vanish, heartbeats go silent), which retransmission and failover
//!   must ride out together; [`crate::fault::Fault::HeartbeatLoss`]
//!   drops only the beats — the false-suspicion fault.
//!
//! Every run is a pure function of `(FailoverSimConfig, FaultPlan,
//! schedule_seed)`; [`crate::invariants::check_failover_run`] verifies
//! per-member exactly-once across promotion and catch-up boundaries,
//! byte-identity of every member against the sharded sequential oracle,
//! and that kill-the-primary schedules complete without a cold restart.

use crate::clock::{splitmix64, EventQueue};
use crate::fault::FaultPlan;
use crate::recovery::SimCheckpoint;
use crate::sim::{build_dataset, build_tables, digest_tables, worker_push, Outcome, SimConfig};
use crate::trace::{Trace, TraceEvent};
use el_data::SyntheticDataset;
use el_dlrm::embedding_bag::EmbeddingBag;
use el_pipeline::cache::EmbeddingCache;
use el_pipeline::server::{ApplyOutcome, GradientPush, HostServer, PrefetchedBatch};
use el_pipeline::{
    merge_tables, split_tables, FailureDetector, HeartbeatConfig, ShardConfig, ShardLayout,
    ShardRouter,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

// The same latency model as the shard sim (crate::shard), copied because
// those constants are private by design: the simulations stay
// independently tunable.
const PREFETCH_LATENCY: u64 = 3;
const COMPUTE_LATENCY: u64 = 4;
const PUSH_LATENCY: u64 = 3;
const ACK_LATENCY: u64 = 2;
const RETRY_TIMEOUT: u64 = 24;
const MAX_RETRIES: u32 = 8;
const JITTER: u64 = 4;
// Failover-specific timing.
const HEARTBEAT_LATENCY: u64 = 2;
const SUSPECT_CHECK_EVERY: u64 = 6;
const REJOIN_RETRY: u64 = 8;
/// Promotions per shard before the worker stops cycling (a livelock
/// fuse, far above what any bounded fault window can cause).
const PROMOTION_CAP: u32 = 16;

/// Static configuration of one replicated run.
#[derive(Clone, Copy, Debug)]
pub struct FailoverSimConfig {
    /// The model/data universe and pipeline knobs (shared with the
    /// single-server sim and the oracle).
    pub base: SimConfig,
    /// The shard layout knobs (count, row-range size, placement seed).
    pub shard: ShardConfig,
    /// Members per replica group (primary + K-1 backups).
    pub replicas: u32,
    /// Base ticks between primary heartbeats.
    pub heartbeat_every: u64,
    /// Ticks of heartbeat silence before the worker suspects a primary.
    pub suspicion_after: u64,
}

impl Default for FailoverSimConfig {
    fn default() -> Self {
        Self {
            base: SimConfig::default(),
            shard: ShardConfig { num_shards: 3, rows_per_range: 16, placement_seed: 0xE1 },
            replicas: 3,
            heartbeat_every: 8,
            suspicion_after: 30,
        }
    }
}

impl FailoverSimConfig {
    /// The placement every participant of this config derives.
    pub fn layout(&self) -> ShardLayout {
        let sizes: Vec<(usize, usize)> =
            (0..self.base.num_tables).map(|t| (t, self.base.rows_per_table)).collect();
        ShardLayout::place(&self.shard, &sizes)
    }

    /// The jittered heartbeat schedule of one shard's primary.
    pub fn heartbeat(&self, shard: u32, schedule_seed: u64) -> HeartbeatConfig {
        let every = self.heartbeat_every.max(1);
        HeartbeatConfig {
            every,
            suspicion_after: self.suspicion_after.max(HeartbeatConfig::min_suspicion(every)),
            jitter: HeartbeatConfig::max_jitter(every),
            seed: splitmix64(schedule_seed ^ 0x48B8_48B8_48B8_48B8 ^ u64::from(shard)),
        }
    }
}

/// Result of one replicated run.
#[derive(Debug)]
pub struct FailoverSimReport {
    /// Terminal state ([`Outcome::Completed`] iff **every** group's
    /// watermark reached the schedule).
    pub outcome: Outcome,
    /// Per-shard group watermarks at termination (the maximum over that
    /// group's alive members — lockstep keeps them equal).
    pub applied: Vec<u64>,
    /// Full protocol trace, in virtual-time order.
    pub trace: Trace,
    /// Per-member applied watermarks at termination (`None` = dead).
    pub member_applied: Vec<Vec<Option<u64>>>,
    /// Per-member FNV-1a digests of the final sub-tables (`None` = dead).
    pub member_digests: Vec<Vec<Option<u64>>>,
    /// Digest of the merged (one surviving member per shard) tables.
    pub merged_digest: u64,
    /// The merged global tables.
    pub merged_tables: Vec<(usize, EmbeddingBag)>,
    /// Promotions the worker performed per shard.
    pub promotions: Vec<u32>,
    /// Stale pre-fetched rows the worker's cache corrected.
    pub stale_hits: u64,
    /// Virtual time at termination.
    pub final_tick: u64,
    /// Events processed.
    pub events_processed: u64,
}

/// In-flight scattered push awaiting one shard's acknowledgement.
struct UnackedPush {
    push: GradientPush,
    attempts: u32,
    deliveries: u32,
}

/// Events on the virtual timeline.
enum Ev {
    /// A reassembled pre-fetched batch reaches the worker.
    PrefetchArrive(Box<PrefetchedBatch>),
    /// A worker stall window ends.
    StallOver,
    /// The worker finishes computing a batch.
    ComputeDone(u64),
    /// A scattered push delivery reaches one shard's believed primary.
    PushArrive { shard: u32, push: Box<GradientPush> },
    /// One shard's acknowledgement reaches the worker.
    AckArrive { shard: u32, seq: u64 },
    /// The worker's retransmission timer for one shard's push fires.
    RetryFire { shard: u32, seq: u64 },
    /// One shard's believed primary emits its `n`-th heartbeat.
    HeartbeatFire { shard: u32, n: u64 },
    /// A heartbeat from `rank` reaches the worker.
    HeartbeatArrive { shard: u32, rank: u32 },
    /// The worker's periodic failure-detector check for one shard.
    SuspectCheck { shard: u32 },
    /// A dead member's scheduled catch-up rejoin fires.
    RejoinFire { shard: u32, rank: u32 },
}

/// The running replicated simulation state.
struct FailoverSim {
    cfg: FailoverSimConfig,
    plan: FaultPlan,
    q: EventQueue<Ev>,
    rng: StdRng,
    dataset: SyntheticDataset,
    trace: Trace,
    // the replicated host tier: [shard][rank], None = dead
    router: ShardRouter,
    groups: Vec<Vec<Option<HostServer>>>,
    pending: Vec<BTreeMap<u64, GradientPush>>,
    primary_kills: Vec<Vec<u64>>, // remaining, sorted ascending
    backup_kills: Vec<Vec<(u32, u64, u64)>>, // remaining (rank, watermark, rejoin)
    next_gather: u64,
    occupancy: usize,
    // worker-side failover state
    believed: Vec<usize>,
    promotions: Vec<u32>,
    detectors: Vec<FailureDetector>,
    heartbeats: Vec<HeartbeatConfig>,
    // worker
    worker_alive: bool,
    stalled: bool,
    stalls_done: BTreeSet<u64>,
    inbox: BTreeMap<u64, PrefetchedBatch>,
    next_train: u64,
    computing: Option<GradientPush>,
    caches: Vec<(usize, EmbeddingCache)>,
    unacked: BTreeMap<(u32, u64), UnackedPush>,
}

/// Runs one replicated simulation to termination.
pub fn run_failover(
    cfg: &FailoverSimConfig,
    plan: &FaultPlan,
    schedule_seed: u64,
) -> FailoverSimReport {
    let layout = cfg.layout();
    let global = build_tables(&cfg.base);
    let replicas = cfg.replicas.max(1) as usize;
    let groups: Vec<Vec<Option<HostServer>>> = split_tables(&global, &layout)
        .expect("the layout places exactly the config's tables")
        .into_iter()
        .map(|sub| {
            (0..replicas)
                .map(|_| Some(HostServer::new(sub.clone(), cfg.base.lr)))
                .collect::<Vec<_>>()
        })
        .collect();
    let n = groups.len();
    // The same clamp the detectors' HeartbeatConfig applies, so detector
    // timeouts and suspect-check scheduling agree.
    let suspicion =
        cfg.suspicion_after.max(HeartbeatConfig::min_suspicion(cfg.heartbeat_every.max(1)));
    let mut sim = FailoverSim {
        cfg: *cfg,
        plan: plan.clone(),
        q: EventQueue::new(),
        rng: StdRng::seed_from_u64(cfg.base.model_seed ^ splitmix64(schedule_seed)),
        dataset: build_dataset(&cfg.base),
        trace: Trace::default(),
        router: ShardRouter::new(layout),
        pending: (0..n).map(|_| BTreeMap::new()).collect(),
        primary_kills: (0..n).map(|s| plan.primary_deaths(s as u32)).collect(),
        backup_kills: (0..n).map(|s| plan.backup_deaths(s as u32)).collect(),
        groups,
        next_gather: 0,
        occupancy: 0,
        believed: vec![0; n],
        promotions: vec![0; n],
        detectors: (0..n).map(|_| FailureDetector::new(suspicion, 0)).collect(),
        heartbeats: (0..n).map(|s| cfg.heartbeat(s as u32, schedule_seed)).collect(),
        worker_alive: true,
        stalled: false,
        stalls_done: BTreeSet::new(),
        inbox: BTreeMap::new(),
        next_train: 0,
        computing: None,
        caches: (0..cfg.base.num_tables).map(|t| (t, EmbeddingCache::new())).collect(),
        unacked: BTreeMap::new(),
    };
    for s in 0..n {
        let first_beat = sim.heartbeats[s].delay(0);
        sim.q.schedule(first_beat, Ev::HeartbeatFire { shard: s as u32, n: 0 });
        sim.q.schedule(suspicion, Ev::SuspectCheck { shard: s as u32 });
    }
    sim.drive()
}

impl FailoverSim {
    fn jitter(&mut self) -> u64 {
        self.rng.gen_range(0..JITTER)
    }

    /// One shard group's applied watermark: the maximum over its alive
    /// members (lockstep keeps alive members equal; a rejoiner lands at
    /// the watermark before resuming intake).
    fn group_applied(&self, s: usize) -> u64 {
        self.groups[s].iter().flatten().map(|m| m.applied).max().unwrap_or(0)
    }

    /// Whether the shard's believed primary is an alive member.
    fn believed_alive(&self, s: usize) -> bool {
        self.groups[s][self.believed[s]].is_some()
    }

    fn min_applied(&self) -> u64 {
        (0..self.groups.len()).map(|s| self.group_applied(s)).min().unwrap_or(0)
    }

    /// True once the worker no longer needs shard `s`'s recurring
    /// timers: the group finished the schedule (or the worker is gone).
    fn shard_done(&self, s: usize) -> bool {
        !self.worker_alive || self.group_applied(s) >= self.cfg.base.num_batches
    }

    fn drive(mut self) -> FailoverSimReport {
        let mut events = 0u64;
        let mut out_of_budget = false;
        self.step();
        while let Some(ev) = self.q.pop() {
            events += 1;
            if events > self.cfg.base.max_events {
                out_of_budget = true;
                break;
            }
            self.handle(ev);
            self.step();
        }
        let n = self.groups.len();
        let outcome = if out_of_budget {
            Outcome::OutOfBudget
        } else if (0..n).all(|s| self.group_applied(s) == self.cfg.base.num_batches) {
            Outcome::Completed
        } else {
            Outcome::Stalled
        };
        let stale_hits = self.caches.iter().map(|(_, c)| c.stale_hits).sum();
        let member_applied: Vec<Vec<Option<u64>>> = self
            .groups
            .iter()
            .map(|g| g.iter().map(|m| m.as_ref().map(|s| s.applied)).collect())
            .collect();
        let member_digests: Vec<Vec<Option<u64>>> = self
            .groups
            .iter()
            .map(|g| g.iter().map(|m| m.as_ref().map(|s| digest_tables(&s.tables))).collect())
            .collect();
        // merge one surviving copy per shard: the believed member when
        // alive, else any alive member (byte-identical by lockstep)
        let survivor_tables: Vec<Vec<(usize, EmbeddingBag)>> = (0..n)
            .map(|s| {
                let pick = self.groups[s][self.believed[s]]
                    .as_ref()
                    .or_else(|| self.groups[s].iter().flatten().next())
                    .expect("fault plans never kill a whole group");
                pick.tables.clone()
            })
            .collect();
        let merged_tables = merge_tables(&survivor_tables, self.router.layout())
            .expect("sub-tables always merge under their own layout");
        FailoverSimReport {
            outcome,
            applied: (0..n).map(|s| self.group_applied(s)).collect(),
            member_applied,
            member_digests,
            merged_digest: digest_tables(&merged_tables),
            merged_tables,
            promotions: self.promotions.clone(),
            stale_hits,
            final_tick: self.q.now(),
            events_processed: events,
            trace: self.trace,
        }
    }

    /// Runs every immediately-enabled action: scheduled deaths fire,
    /// each group drains its intake in lockstep, the router gathers, the
    /// worker starts compute.
    fn step(&mut self) {
        for s in 0..self.groups.len() {
            self.drain_group(s);
        }
        self.host_gather();
        self.worker_start();
    }

    /// Fires death schedules whose watermark the group has reached. A
    /// primary kill takes whoever is believed primary *now* — two kills
    /// at adjacent watermarks on one shard therefore kill the freshly
    /// promoted member, the kill-during-promotion case. A kill whose
    /// target is already dead waits for the next promotion to land on a
    /// live target.
    fn fire_deaths(&mut self, s: usize) {
        let watermark = self.group_applied(s);
        while let Some(&w) = self.primary_kills[s].first() {
            if watermark < w || !self.believed_alive(s) {
                break;
            }
            self.primary_kills[s].remove(0);
            let rank = self.believed[s];
            let applied = self.groups[s][rank].as_ref().map_or(0, |m| m.applied);
            self.groups[s][rank] = None;
            self.pending[s].clear(); // the intake buffer dies with it
            self.trace.push(TraceEvent::PrimaryDied {
                shard: s as u32,
                rank: rank as u32,
                applied,
            });
        }
        self.backup_kills[s].retain(&mut |(rank, w, rejoin): &(u32, u64, u64)| {
            if watermark < *w {
                return true; // not yet due
            }
            let r = *rank as usize;
            if r == self.believed[s] || self.groups[s][r].is_none() {
                return false; // it is the primary now, or already dead: drop the drill
            }
            self.groups[s][r] = None;
            self.trace.push(TraceEvent::BackupDied {
                shard: s as u32,
                rank: *rank,
                applied: watermark,
            });
            if *rejoin > 0 {
                self.q.schedule(*rejoin, Ev::RejoinFire { shard: s as u32, rank: *rank });
            }
            false
        });
    }

    /// Applies one group's buffered pushes in order: every alive member
    /// applies the same push at the same tick (lockstep), so the group
    /// stays byte-identical at every watermark. Stops at a gap, or while
    /// the believed primary is dead (intake needs a live primary).
    fn drain_group(&mut self, s: usize) {
        loop {
            self.fire_deaths(s);
            if !self.believed_alive(s) {
                return;
            }
            let next = self.group_applied(s);
            let Some(push) = self.pending[s].remove(&next) else { return };
            for (rank, member) in self.groups[s].iter_mut().enumerate() {
                let Some(m) = member.as_mut() else { continue };
                match m.apply_checked(&push) {
                    Ok(ApplyOutcome::Applied) => {
                        self.trace.push(TraceEvent::ReplicaApplied {
                            shard: s as u32,
                            rank: rank as u32,
                            seq: next,
                        });
                    }
                    other => unreachable!("lockstep apply of seq {next} must land, got {other:?}"),
                }
            }
            if !self.plan.partitioned_at(s as u32, self.q.now()) {
                let d = ACK_LATENCY + self.jitter();
                self.q.schedule(d, Ev::AckArrive { shard: s as u32, seq: next });
            }
        }
    }

    /// Gathers while every shard has a live, reachable believed primary,
    /// the pre-fetch queue has room, and the stitched staleness gate
    /// allows — identical to the shard sim with "shard alive" replaced
    /// by "believed primary alive and not partitioned".
    fn host_gather(&mut self) {
        loop {
            let now = self.q.now();
            let reachable = (0..self.groups.len())
                .all(|s| self.believed_alive(s) && !self.plan.partitioned_at(s as u32, now));
            if !reachable
                || self.next_gather >= self.cfg.base.num_batches
                || self.occupancy >= self.cfg.base.prefetch_depth
                || self.next_gather - self.min_applied() > self.cfg.base.staleness_bound
            {
                return;
            }
            let k = self.next_gather;
            let mut primaries: Vec<HostServer> = (0..self.groups.len())
                .map(|s| {
                    self.groups[s][self.believed[s]].take().expect("reachability checked above")
                })
                .collect();
            for (s, p) in primaries.iter().enumerate() {
                self.trace.push(TraceEvent::ShardStamped {
                    shard: s as u32,
                    seq: k,
                    applied: p.applied,
                });
            }
            let batch = self.dataset.batch(k, self.cfg.base.batch_size);
            let pf = self
                .router
                .gather(&mut primaries, batch, k)
                .expect("config-derived layout always routes its own batches");
            for (s, p) in primaries.into_iter().enumerate() {
                self.groups[s][self.believed[s]] = Some(p);
            }
            self.trace.push(TraceEvent::Gathered { seq: k, applied_through: pf.applied_through });
            let delay = PREFETCH_LATENCY + self.jitter() + self.plan.prefetch_delay(k);
            self.q.schedule(delay, Ev::PrefetchArrive(Box::new(pf)));
            self.occupancy += 1;
            self.next_gather += 1;
        }
    }

    /// Starts computing the next in-order batch if the worker is idle —
    /// the replication seam is invisible to the worker, exactly as the
    /// sharding seam is.
    fn worker_start(&mut self) {
        if !self.worker_alive || self.stalled || self.computing.is_some() {
            return;
        }
        let Some(mut pf) = self.inbox.remove(&self.next_train) else { return };
        let seq = pf.batch_seq;
        if self.plan.kills_worker_at(seq) {
            self.worker_alive = false;
            self.trace.push(TraceEvent::WorkerDied { at_batch: seq });
            self.inbox.clear();
            return;
        }
        if !self.stalls_done.contains(&seq) {
            if let Some(ticks) = self.plan.stall_before(seq) {
                self.stalls_done.insert(seq);
                self.stalled = true;
                self.inbox.insert(seq, pf); // resume from here after the stall
                self.q.schedule(ticks, Ev::StallOver);
                return;
            }
        }
        self.occupancy -= 1;
        self.trace.push(TraceEvent::PrefetchSynced { seq, applied_through: pf.applied_through });
        let push =
            worker_push(&mut pf, &mut self.caches, self.cfg.base.lr, self.cfg.base.model_seed);
        self.computing = Some(push);
        self.next_train += 1;
        let delay = COMPUTE_LATENCY + self.jitter();
        self.q.schedule(delay, Ev::ComputeDone(seq));
    }

    /// Issues one transmission of the scattered push for `(shard, seq)`
    /// and arms that link's retransmission timer. Partition windows drop
    /// the delivery at the boundary.
    fn transmit(&mut self, shard: u32, seq: u64) {
        let Some(ent) = self.unacked.get_mut(&(shard, seq)) else { return };
        ent.deliveries += 1;
        let delivery = ent.deliveries;
        let attempts = ent.attempts;
        let push = ent.push.clone();
        self.trace.push(TraceEvent::ShardPushSent { shard, seq, delivery });
        let d = PUSH_LATENCY + self.jitter();
        self.q.schedule(d, Ev::PushArrive { shard, push: Box::new(push) });
        let timeout = RETRY_TIMEOUT << attempts.min(8);
        self.q.schedule(timeout, Ev::RetryFire { shard, seq });
    }

    /// The worker's failover action: advance the believed primary to the
    /// next rank cyclically, fence the old one if it still lives, resend
    /// everything unacknowledged toward the shard, and grant the new
    /// primary a fresh suspicion grace period.
    fn promote(&mut self, s: usize, silent_for: u64) {
        let old = self.believed[s];
        self.trace.push(TraceEvent::PrimarySuspected {
            shard: s as u32,
            rank: old as u32,
            silent_for,
        });
        self.promotions[s] += 1;
        let replicas = self.groups[s].len();
        self.believed[s] = (old + 1) % replicas;
        if self.groups[s][old].is_some() {
            // false suspicion: the deposed primary fences itself off the
            // write path (lockstep keeps its bytes current as a backup)
            self.trace.push(TraceEvent::SteppedDown { shard: s as u32, rank: old as u32 });
        }
        let applied = self.groups[s][self.believed[s]].as_ref().map_or(0, |m| m.applied);
        self.trace.push(TraceEvent::Promoted {
            shard: s as u32,
            rank: self.believed[s] as u32,
            applied,
        });
        let now = self.q.now();
        self.detectors[s].record_heartbeat(now);
        let resend: Vec<u64> =
            self.unacked.keys().filter(|(sh, _)| *sh == s as u32).map(|&(_, seq)| seq).collect();
        for seq in resend {
            if let Some(ent) = self.unacked.get_mut(&(s as u32, seq)) {
                ent.attempts = 0;
            }
            self.transmit(s as u32, seq);
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::PrefetchArrive(pf) => {
                if self.worker_alive {
                    self.inbox.insert(pf.batch_seq, *pf);
                }
            }
            Ev::StallOver => {
                self.stalled = false;
            }
            Ev::ComputeDone(seq) => {
                if !self.worker_alive {
                    return;
                }
                let push = self.computing.take().expect("ComputeDone without compute");
                debug_assert_eq!(push.batch_seq, seq);
                let scattered = self
                    .router
                    .scatter_push(&push)
                    .expect("worker pushes of a routed batch always scatter");
                for (s, shard_push) in scattered.into_iter().enumerate() {
                    self.unacked.insert(
                        (s as u32, seq),
                        UnackedPush { push: shard_push, attempts: 0, deliveries: 0 },
                    );
                    self.transmit(s as u32, seq);
                }
            }
            Ev::PushArrive { shard, push } => {
                let s = shard as usize;
                let now = self.q.now();
                if self.plan.partitioned_at(shard, now) {
                    return; // dropped at the partition boundary
                }
                let Some(primary) = self.groups[s][self.believed[s]].as_ref() else {
                    return; // delivered to a corpse: retries re-route later
                };
                let seq = push.batch_seq;
                self.trace.push(TraceEvent::ShardPushDelivered { shard, seq });
                let duplicate = seq < primary.applied || self.pending[s].contains_key(&seq);
                if duplicate {
                    self.trace.push(TraceEvent::ShardDuplicateIgnored { shard, seq });
                    if seq < self.group_applied(s) {
                        // already applied by the group: re-acknowledge so
                        // the worker stops retransmitting on this link
                        let d = ACK_LATENCY + self.jitter();
                        self.q.schedule(d, Ev::AckArrive { shard, seq });
                    }
                    return;
                }
                if self.pending[s].len() >= self.cfg.base.grad_capacity {
                    self.trace.push(TraceEvent::ShardPushBounced { shard, seq });
                    return;
                }
                self.pending[s].insert(seq, *push);
            }
            Ev::AckArrive { shard, seq } => {
                if self.worker_alive && self.unacked.remove(&(shard, seq)).is_some() {
                    self.trace.push(TraceEvent::ShardAcked { shard, seq });
                }
            }
            Ev::RetryFire { shard, seq } => {
                if !self.worker_alive || !self.unacked.contains_key(&(shard, seq)) {
                    return;
                }
                let ent = self.unacked.get_mut(&(shard, seq)).expect("checked above");
                ent.attempts += 1;
                if ent.attempts > MAX_RETRIES {
                    // the shard is unreachable beyond every failover
                    // remedy: degrade rather than livelock
                    self.unacked.remove(&(shard, seq));
                    self.trace.push(TraceEvent::ShardGaveUp { shard, seq });
                    self.worker_alive = false;
                } else {
                    self.transmit(shard, seq);
                }
            }
            Ev::HeartbeatFire { shard, n } => {
                let s = shard as usize;
                let now = self.q.now();
                // the believed primary beats; a dead one stays silent —
                // the schedule itself keeps ticking so a promoted
                // successor resumes beating on the same timeline
                if self.believed_alive(s)
                    && !self.plan.heartbeat_lost_at(shard, now)
                    && !self.plan.partitioned_at(shard, now)
                {
                    let rank = self.believed[s] as u32;
                    let d = HEARTBEAT_LATENCY + self.jitter();
                    self.q.schedule(d, Ev::HeartbeatArrive { shard, rank });
                }
                if !self.shard_done(s) {
                    let next = self.heartbeats[s].delay(n + 1);
                    self.q.schedule(next, Ev::HeartbeatFire { shard, n: n + 1 });
                }
            }
            Ev::HeartbeatArrive { shard, rank } => {
                let s = shard as usize;
                if self.worker_alive && rank as usize == self.believed[s] {
                    // beats from a deposed rank are fenced out
                    self.detectors[s].record_heartbeat(self.q.now());
                }
            }
            Ev::SuspectCheck { shard } => {
                let s = shard as usize;
                if self.shard_done(s) || self.promotions[s] >= PROMOTION_CAP {
                    return;
                }
                if let Some(silent) = self.detectors[s].suspected(self.q.now()) {
                    self.promote(s, silent);
                }
                self.q.schedule(SUSPECT_CHECK_EVERY, Ev::SuspectCheck { shard });
            }
            Ev::RejoinFire { shard, rank } => {
                let s = shard as usize;
                let r = rank as usize;
                if self.groups[s][r].is_some() {
                    return; // already alive
                }
                let Some(leader) = self.groups[s][self.believed[s]].as_ref() else {
                    // no primary to catch up from yet: retry after the
                    // failover machinery has promoted one
                    self.q.schedule(REJOIN_RETRY, Ev::RejoinFire { shard, rank });
                    return;
                };
                // a real checkpoint round-trip: the rejoiner restores the
                // primary's state through the PR 5 framed byte format
                let ckpt = SimCheckpoint {
                    applied: leader.applied,
                    shard,
                    num_shards: self.groups.len() as u32,
                    tables: leader.tables.clone(),
                };
                let restored = SimCheckpoint::from_framed_bytes(&ckpt.to_framed_bytes())
                    .expect("a just-encoded checkpoint decodes")
                    .for_slot(shard, self.groups.len() as u32)
                    .expect("the slot is its own");
                let mut member = HostServer::new(restored.tables, self.cfg.base.lr);
                member.applied = restored.applied;
                let applied = member.applied;
                self.groups[s][r] = Some(member);
                self.trace.push(TraceEvent::CatchupInstalled { shard, rank, applied });
            }
        }
    }
}

/// The reproduction record of a failed failover-sweep seed.
#[derive(Clone, Debug, PartialEq)]
pub struct FailoverSweepFailure {
    /// The failing seed (derives the plan and the schedule).
    pub seed: u64,
    /// Replicas per shard the sweep ran with.
    pub replicas: u32,
    /// The CLI flag that reproduces this seed's plan domain.
    pub mode: &'static str,
    /// The fault plan that seed derived.
    pub plan: FaultPlan,
    /// What went wrong.
    pub violation: crate::invariants::Violation,
}

impl fmt::Display for FailoverSweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed: {}", self.seed)?;
        writeln!(f, "replicas: {}", self.replicas)?;
        writeln!(f, "violation: {}", self.violation)?;
        writeln!(f, "fault plan:")?;
        writeln!(f, "{}", self.plan)?;
        write!(
            f,
            "reproduce with: cargo xtask sim --{}-seed {} --replicas {}",
            self.mode, self.seed, self.replicas
        )
    }
}

/// Aggregate statistics of a clean failover sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailoverSweepSummary {
    /// Seeds swept.
    pub seeds: u64,
    /// Runs where every group applied every batch (the sweep demands
    /// this of **all** seeds — a kill-the-primary schedule that stalls
    /// training is itself a violation).
    pub completed: u64,
    /// Faults injected across all runs.
    pub faults_injected: u64,
    /// Primaries killed across all runs.
    pub primaries_killed: u64,
    /// Backups killed across all runs.
    pub backups_killed: u64,
    /// Promotions performed across all runs.
    pub promotions: u64,
    /// Catch-up rejoins installed across all runs.
    pub rejoins: u64,
    /// Stale pre-fetched rows corrected across all runs.
    pub stale_hits: u64,
}

fn sweep_one(
    cfg: &FailoverSimConfig,
    plan: FaultPlan,
    seed: u64,
    mode: &'static str,
    shard_oracle: &crate::oracle::ShardOracle,
    global_oracle: &crate::oracle::Oracle,
    summary: &mut FailoverSweepSummary,
) -> Result<(), FailoverSweepFailure> {
    match crate::invariants::check_failover_run(cfg, &plan, seed, shard_oracle, global_oracle) {
        Ok(report) => {
            summary.seeds += 1;
            summary.completed += u64::from(report.outcome == Outcome::Completed);
            summary.faults_injected += plan.faults.len() as u64;
            summary.primaries_killed +=
                report.trace.count(|e| matches!(e, TraceEvent::PrimaryDied { .. })) as u64;
            summary.backups_killed +=
                report.trace.count(|e| matches!(e, TraceEvent::BackupDied { .. })) as u64;
            summary.promotions += report.promotions.iter().map(|&p| u64::from(p)).sum::<u64>();
            summary.rejoins +=
                report.trace.count(|e| matches!(e, TraceEvent::CatchupInstalled { .. })) as u64;
            summary.stale_hits += report.stale_hits;
            Ok(())
        }
        Err(violation) => {
            Err(FailoverSweepFailure { seed, replicas: cfg.replicas, mode, plan, violation })
        }
    }
}

/// Sweeps failover seeds `start .. start + count`, stopping at the first
/// violation. Every seed derives a kill-the-primary plan
/// ([`FaultPlan::from_seed_failover`]) and must complete byte-identical
/// to the sequential oracle — no cold restarts.
pub fn run_failover_sweep(
    cfg: &FailoverSimConfig,
    start: u64,
    count: u64,
) -> Result<FailoverSweepSummary, FailoverSweepFailure> {
    let shard_oracle = crate::oracle::sharded_prefix(&crate::shard::ShardSimConfig {
        base: cfg.base,
        shard: cfg.shard,
    });
    let global_oracle = crate::oracle::sequential_prefix(&cfg.base);
    let mut summary = FailoverSweepSummary::default();
    for seed in start..start.saturating_add(count) {
        let plan = FaultPlan::from_seed_failover(
            seed,
            cfg.base.num_batches,
            cfg.shard.num_shards,
            cfg.replicas,
        );
        sweep_one(cfg, plan, seed, "failover", &shard_oracle, &global_oracle, &mut summary)?;
    }
    Ok(summary)
}

/// Sweeps network-fault seeds `start .. start + count`: heartbeat-loss
/// and partition windows ([`FaultPlan::from_seed_netfault`]) that must
/// be ridden out — false suspicion included — with the same
/// byte-identity verdict as the failover sweep.
pub fn run_netfault_sweep(
    cfg: &FailoverSimConfig,
    start: u64,
    count: u64,
) -> Result<FailoverSweepSummary, FailoverSweepFailure> {
    let shard_oracle = crate::oracle::sharded_prefix(&crate::shard::ShardSimConfig {
        base: cfg.base,
        shard: cfg.shard,
    });
    let global_oracle = crate::oracle::sequential_prefix(&cfg.base);
    let mut summary = FailoverSweepSummary::default();
    for seed in start..start.saturating_add(count) {
        let plan = FaultPlan::from_seed_netfault(seed, cfg.base.num_batches, cfg.shard.num_shards);
        sweep_one(cfg, plan, seed, "netfault", &shard_oracle, &global_oracle, &mut summary)?;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use crate::oracle::sequential_prefix;

    #[test]
    fn fault_free_replicated_run_completes_in_lockstep() {
        let cfg = FailoverSimConfig::default();
        let r = run_failover(&cfg, &FaultPlan::none(), 1);
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.applied.iter().all(|&a| a == cfg.base.num_batches));
        assert!(r.promotions.iter().all(|&p| p == 0), "no fault, no failover");
        // every member applied every batch: lockstep = replicas × shards
        assert_eq!(
            r.trace.count(|e| matches!(e, TraceEvent::ReplicaApplied { .. })),
            (cfg.base.num_batches * u64::from(cfg.replicas * cfg.shard.num_shards)) as usize
        );
        // and all members of a group digest identically
        for members in &r.member_digests {
            let first = members[0].expect("all alive");
            assert!(members.iter().all(|&d| d == Some(first)), "lockstep members diverged");
        }
    }

    #[test]
    fn replicated_run_is_byte_identical_to_the_sequential_oracle() {
        let cfg = FailoverSimConfig::default();
        let oracle = sequential_prefix(&cfg.base);
        let r = run_failover(&cfg, &FaultPlan::none(), 7);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.merged_digest, oracle.prefix_digests[cfg.base.num_batches as usize]);
    }

    #[test]
    fn primary_death_promotes_and_training_completes_unchanged() {
        let cfg = FailoverSimConfig::default();
        let oracle = sequential_prefix(&cfg.base);
        let plan = FaultPlan::with(vec![Fault::PrimaryDeath { shard: 1, after_applied: 5 }]);
        let r = run_failover(&cfg, &plan, 3);
        assert_eq!(r.outcome, Outcome::Completed, "failover must ride out the kill");
        assert!(r.trace.any(|e| matches!(e, TraceEvent::PrimaryDied { shard: 1, rank: 0, .. })));
        assert!(r
            .trace
            .any(|e| matches!(e, TraceEvent::PrimarySuspected { shard: 1, rank: 0, .. })));
        assert!(r.trace.any(|e| matches!(e, TraceEvent::Promoted { shard: 1, rank: 1, .. })));
        assert_eq!(r.promotions[1], 1);
        assert_eq!(
            r.merged_digest, oracle.prefix_digests[cfg.base.num_batches as usize],
            "the promoted backup trained the exact bytes the primary would have"
        );
    }

    #[test]
    fn kill_during_promotion_burns_through_both_spares() {
        let cfg = FailoverSimConfig::default();
        let oracle = sequential_prefix(&cfg.base);
        // adjacent watermarks: the second kill lands on the member the
        // first promotion just installed
        let plan = FaultPlan::with(vec![
            Fault::PrimaryDeath { shard: 0, after_applied: 4 },
            Fault::PrimaryDeath { shard: 0, after_applied: 5 },
        ]);
        let r = run_failover(&cfg, &plan, 9);
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.trace.any(|e| matches!(e, TraceEvent::PrimaryDied { shard: 0, rank: 0, .. })));
        assert!(r.trace.any(|e| matches!(e, TraceEvent::PrimaryDied { shard: 0, rank: 1, .. })));
        assert_eq!(r.promotions[0], 2);
        assert_eq!(r.merged_digest, oracle.prefix_digests[cfg.base.num_batches as usize]);
    }

    #[test]
    fn backup_death_and_catch_up_rejoin_byte_identically() {
        let cfg = FailoverSimConfig::default();
        let plan = FaultPlan::with(vec![Fault::BackupDeath {
            shard: 2,
            rank: 1,
            after_applied: 4,
            rejoin_after: 20,
        }]);
        let r = run_failover(&cfg, &plan, 5);
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.trace.any(|e| matches!(e, TraceEvent::BackupDied { shard: 2, rank: 1, .. })));
        assert!(r
            .trace
            .any(|e| matches!(e, TraceEvent::CatchupInstalled { shard: 2, rank: 1, .. })));
        // the rejoined member finished byte-identical to its peers
        let members = &r.member_digests[2];
        let first = members[0].expect("alive");
        assert!(members.iter().all(|&d| d == Some(first)), "catch-up member diverged");
    }

    #[test]
    fn kill_during_catch_up_still_completes() {
        let cfg = FailoverSimConfig::default();
        let oracle = sequential_prefix(&cfg.base);
        // the backup dies, and while it is scheduled to rejoin the
        // primary dies too: the rejoin must wait for a promoted leader
        let plan = FaultPlan::with(vec![
            Fault::BackupDeath { shard: 0, rank: 1, after_applied: 3, rejoin_after: 25 },
            Fault::PrimaryDeath { shard: 0, after_applied: 4 },
        ]);
        let r = run_failover(&cfg, &plan, 11);
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.trace.any(|e| matches!(e, TraceEvent::CatchupInstalled { shard: 0, .. })));
        assert_eq!(r.merged_digest, oracle.prefix_digests[cfg.base.num_batches as usize]);
    }

    #[test]
    fn heartbeat_loss_forces_a_false_suspicion_that_fences() {
        let cfg = FailoverSimConfig::default();
        let oracle = sequential_prefix(&cfg.base);
        let plan = FaultPlan::with(vec![Fault::HeartbeatLoss { shard: 1, start: 10, ticks: 60 }]);
        let r = run_failover(&cfg, &plan, 13);
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(
            r.trace.any(|e| matches!(e, TraceEvent::PrimarySuspected { shard: 1, .. })),
            "a 60-tick silent window must trip the 30-tick detector"
        );
        assert!(
            r.trace.any(|e| matches!(e, TraceEvent::SteppedDown { shard: 1, rank: 0 })),
            "the healthy-but-silent primary must step down, not split-brain"
        );
        assert_eq!(r.merged_digest, oracle.prefix_digests[cfg.base.num_batches as usize]);
    }

    #[test]
    fn partitions_are_ridden_out_by_retries_and_failover() {
        let cfg = FailoverSimConfig::default();
        let oracle = sequential_prefix(&cfg.base);
        let plan = FaultPlan::with(vec![Fault::Partition { shard: 0, start: 15, ticks: 70 }]);
        let r = run_failover(&cfg, &plan, 17);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.merged_digest, oracle.prefix_digests[cfg.base.num_batches as usize]);
    }

    #[test]
    fn failover_replay_is_bit_identical() {
        let cfg = FailoverSimConfig::default();
        for seed in [0u64, 5, 23] {
            let plan = FaultPlan::from_seed_failover(
                seed,
                cfg.base.num_batches,
                cfg.shard.num_shards,
                cfg.replicas,
            );
            let a = run_failover(&cfg, &plan, seed);
            let b = run_failover(&cfg, &plan, seed);
            assert_eq!(a.trace, b.trace, "trace diverged for seed {seed}");
            assert_eq!(a.merged_digest, b.merged_digest);
            assert_eq!(a.final_tick, b.final_tick);
        }
    }

    #[test]
    fn a_quick_failover_sweep_is_clean_and_actually_kills() {
        let cfg = FailoverSimConfig::default();
        let summary = run_failover_sweep(&cfg, 0, 20)
            .unwrap_or_else(|f| panic!("failover sweep failed:\n{f}"));
        assert_eq!(summary.seeds, 20);
        assert_eq!(summary.completed, 20, "every kill schedule must complete");
        assert!(summary.primaries_killed >= 20, "every seed kills at least one primary");
        assert!(summary.promotions >= summary.primaries_killed);
    }

    #[test]
    fn a_quick_netfault_sweep_is_clean() {
        let cfg = FailoverSimConfig::default();
        let summary = run_netfault_sweep(&cfg, 0, 15)
            .unwrap_or_else(|f| panic!("netfault sweep failed:\n{f}"));
        assert_eq!(summary.seeds, 15);
        assert_eq!(summary.completed, 15, "every window must be ridden out");
        assert!(summary.faults_injected > 0);
    }

    #[test]
    fn failures_print_a_reproduction_recipe() {
        let f = FailoverSweepFailure {
            seed: 9,
            replicas: 3,
            mode: "failover",
            plan: FaultPlan::from_seed_failover(9, 24, 3, 3),
            violation: crate::invariants::Violation::OutOfBudget,
        };
        let text = f.to_string();
        assert!(text.contains("seed: 9"));
        assert!(text.contains("cargo xtask sim --failover-seed 9 --replicas 3"));
    }
}
