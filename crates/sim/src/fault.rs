//! Seeded fault plans.
//!
//! A [`FaultPlan`] is the complete, replayable description of everything
//! that goes wrong in one simulated run: which actor fails, when, and how
//! the unreliable gradient link mangles deliveries. Plans are either built
//! explicitly (the hand-written failure-injection tests) or derived
//! deterministically from a seed ([`FaultPlan::from_seed`]), so a failing
//! sweep seed reproduces bit-for-bit with `cargo xtask sim --seed N`.

use crate::clock::splitmix64;
use std::fmt;

/// One injected fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The worker pauses for `ticks` before computing batch `at_batch`.
    WorkerStall {
        /// Batch whose compute is delayed.
        at_batch: u64,
        /// Stall length in virtual ticks.
        ticks: u64,
    },
    /// The worker dies the moment it dequeues batch `at_batch` — nothing
    /// after that batch is computed, pushed, or retried.
    WorkerDeath {
        /// First batch the worker never trains.
        at_batch: u64,
    },
    /// The server dies after applying `after_applied` gradient batches:
    /// no more gathering, applying, or acknowledging.
    ServerDeath {
        /// Number of applied batches after which the server vanishes.
        after_applied: u64,
    },
    /// Delivery of pre-fetched batch `batch` to the worker is delayed by
    /// an extra `ticks`.
    PrefetchDelay {
        /// Delayed batch.
        batch: u64,
        /// Extra delivery latency in ticks.
        ticks: u64,
    },
    /// The server's gradient intake is saturated during
    /// `[start, start + ticks)`: every push delivery in the window
    /// bounces and must be retransmitted.
    GradQueueSaturation {
        /// First saturated tick.
        start: u64,
        /// Window length in ticks.
        ticks: u64,
    },
    /// The `delivery`-th transmission (1-based) of the gradient push for
    /// batch `seq` is dropped by the link.
    DropPush {
        /// Batch whose push is affected.
        seq: u64,
        /// Which transmission attempt is dropped.
        delivery: u32,
    },
    /// The `delivery`-th transmission of the gradient push for batch
    /// `seq` is duplicated by the link: it arrives twice.
    DuplicatePush {
        /// Batch whose push is affected.
        seq: u64,
        /// Which transmission attempt is duplicated.
        delivery: u32,
    },
    /// The whole process (server *and* worker) dies once the server has
    /// applied `after_applied` gradient batches. Recovery — reopening the
    /// checkpoint store and resuming — is driven by
    /// [`crate::recovery::run_with_recovery`], not by the run itself.
    Crash {
        /// Number of applied batches after which the process dies.
        after_applied: u64,
    },
    /// Shard `shard` of the sharded parameter tier dies after applying
    /// `after_applied` gradient batches; the other shards keep running
    /// (multi-shard runs only — ignored by the single-server sim).
    ShardDeath {
        /// The dying shard.
        shard: u32,
        /// Applied batches after which that shard vanishes.
        after_applied: u64,
    },
    /// Shard `shard`'s gradient intake is saturated during
    /// `[start, start + ticks)`: every push delivery to that shard in
    /// the window bounces and must be retransmitted. Other shards are
    /// unaffected, so the same batch's scattered pushes land at
    /// different times — per-shard saturation *is* cross-shard
    /// delivery reordering.
    ShardSaturation {
        /// The saturated shard.
        shard: u32,
        /// First saturated tick.
        start: u64,
        /// Window length in ticks.
        ticks: u64,
    },
    /// The `delivery`-th transmission (1-based) of batch `seq`'s
    /// scattered push toward shard `shard` is dropped by the link.
    DropShardPush {
        /// The shard whose delivery is affected.
        shard: u32,
        /// Batch whose push is affected.
        seq: u64,
        /// Which transmission attempt is dropped.
        delivery: u32,
    },
    /// The `delivery`-th transmission of batch `seq`'s scattered push
    /// toward shard `shard` is duplicated by the link: it arrives twice.
    DuplicateShardPush {
        /// The shard whose delivery is affected.
        shard: u32,
        /// Batch whose push is affected.
        seq: u64,
        /// Which transmission attempt is duplicated.
        delivery: u32,
    },
    /// Every delivery of batch `seq`'s scattered push toward shard
    /// `shard` takes an extra `ticks` — the cross-shard reordering
    /// fault: one shard receives and applies the batch long before its
    /// peers do.
    ShardDelay {
        /// The delayed shard.
        shard: u32,
        /// Batch whose deliveries are delayed.
        seq: u64,
        /// Extra delivery latency in ticks.
        ticks: u64,
    },
    /// The current primary of shard `shard`'s replica group dies after
    /// it has applied `after_applied` gradient batches. The worker
    /// suspects it via heartbeat silence and promotes the next alive
    /// backup — training continues from the promoted copy, no cold
    /// restart (replicated runs only).
    PrimaryDeath {
        /// The shard whose primary dies.
        shard: u32,
        /// Applied batches after which the primary vanishes.
        after_applied: u64,
    },
    /// Backup replica `rank` of shard `shard` dies after the group has
    /// applied `after_applied` batches, optionally rejoining later
    /// through the snapshot + log-replay catch-up path.
    BackupDeath {
        /// The shard whose backup dies.
        shard: u32,
        /// The dying member's rank within the group.
        rank: u32,
        /// Applied batches after which the backup vanishes.
        after_applied: u64,
        /// Ticks after the death at which the member rejoins via
        /// catch-up (0 = it never rejoins).
        rejoin_after: u64,
    },
    /// Heartbeats from shard `shard`'s primary are dropped during
    /// `[start, start + ticks)` while data traffic flows normally —
    /// the false-suspicion fault: the worker may promote a backup away
    /// from a perfectly healthy primary, which must then step down.
    HeartbeatLoss {
        /// The shard whose heartbeats are lost.
        shard: u32,
        /// First silent tick.
        start: u64,
        /// Window length in ticks.
        ticks: u64,
    },
    /// All worker traffic to and from shard `shard` (gathers, pushes,
    /// acks, heartbeats) is dropped during `[start, start + ticks)` —
    /// the network-partition fault. Retransmission and failover must
    /// ride it out together.
    Partition {
        /// The partitioned shard.
        shard: u32,
        /// First partitioned tick.
        start: u64,
        /// Window length in ticks.
        ticks: u64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::WorkerStall { at_batch, ticks } => {
                write!(f, "worker stalls {ticks} ticks before batch {at_batch}")
            }
            Fault::WorkerDeath { at_batch } => write!(f, "worker dies at batch {at_batch}"),
            Fault::ServerDeath { after_applied } => {
                write!(f, "server dies after applying {after_applied} batches")
            }
            Fault::PrefetchDelay { batch, ticks } => {
                write!(f, "prefetch of batch {batch} delayed {ticks} ticks")
            }
            Fault::GradQueueSaturation { start, ticks } => {
                write!(f, "gradient queue saturated during ticks [{start}, {})", start + ticks)
            }
            Fault::DropPush { seq, delivery } => {
                write!(f, "delivery {delivery} of push {seq} dropped")
            }
            Fault::DuplicatePush { seq, delivery } => {
                write!(f, "delivery {delivery} of push {seq} duplicated")
            }
            Fault::Crash { after_applied } => {
                write!(f, "process crashes after applying {after_applied} batches")
            }
            Fault::ShardDeath { shard, after_applied } => {
                write!(f, "shard {shard} dies after applying {after_applied} batches")
            }
            Fault::ShardSaturation { shard, start, ticks } => write!(
                f,
                "shard {shard}'s gradient queue saturated during ticks [{start}, {})",
                start + ticks
            ),
            Fault::DropShardPush { shard, seq, delivery } => {
                write!(f, "delivery {delivery} of push {seq} to shard {shard} dropped")
            }
            Fault::DuplicateShardPush { shard, seq, delivery } => {
                write!(f, "delivery {delivery} of push {seq} to shard {shard} duplicated")
            }
            Fault::ShardDelay { shard, seq, ticks } => {
                write!(f, "push {seq} to shard {shard} delayed {ticks} ticks")
            }
            Fault::PrimaryDeath { shard, after_applied } => {
                write!(f, "shard {shard}'s primary dies after applying {after_applied} batches")
            }
            Fault::BackupDeath { shard, rank, after_applied, rejoin_after } => {
                write!(
                    f,
                    "shard {shard}'s backup {rank} dies after {after_applied} applied batches"
                )?;
                if *rejoin_after > 0 {
                    write!(f, ", rejoining {rejoin_after} ticks later")?;
                }
                Ok(())
            }
            Fault::HeartbeatLoss { shard, start, ticks } => write!(
                f,
                "shard {shard}'s heartbeats lost during ticks [{start}, {})",
                start + ticks
            ),
            Fault::Partition { shard, start, ticks } => {
                write!(f, "shard {shard} partitioned during ticks [{start}, {})", start + ticks)
            }
        }
    }
}

/// A replayable set of faults for one simulated run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injected faults, in generation order.
    pub faults: Vec<Fault>,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "(fault-free)");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "- {fault}")?;
        }
        Ok(())
    }
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan containing exactly the given faults.
    pub fn with(faults: Vec<Fault>) -> Self {
        Self { faults }
    }

    /// Derives a plan deterministically from `seed` for a run of
    /// `num_batches`. Between zero and three faults are drawn; every
    /// parameter comes from a splitmix64 stream of the seed, so the same
    /// seed always yields the same plan.
    pub fn from_seed(seed: u64, num_batches: u64) -> Self {
        let mut ctr = seed ^ 0xFA01_7FA0_17FA_017F;
        let mut draw = move || {
            ctr = ctr.wrapping_add(1);
            splitmix64(ctr)
        };
        let n = num_batches.max(1);
        let count = (draw() % 4) as usize; // 0..=3 faults
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let fault = match draw() % 8 {
                0 => Fault::WorkerStall { at_batch: draw() % n, ticks: 1 + draw() % 64 },
                1 => Fault::WorkerDeath { at_batch: draw() % n },
                2 => Fault::ServerDeath { after_applied: draw() % n },
                3 => Fault::PrefetchDelay { batch: draw() % n, ticks: 1 + draw() % 48 },
                4 => Fault::GradQueueSaturation {
                    // runs take roughly 10 ticks per batch; place the
                    // window somewhere it can actually bite
                    start: draw() % (n * 10),
                    ticks: 5 + draw() % 60,
                },
                5 => Fault::DropPush { seq: draw() % n, delivery: 1 + (draw() % 2) as u32 },
                6 => Fault::DuplicatePush { seq: draw() % n, delivery: 1 + (draw() % 2) as u32 },
                _ => Fault::Crash { after_applied: draw() % n },
            };
            faults.push(fault);
        }
        Self { faults }
    }

    /// Stall ticks injected before computing `batch`, if any (summed over
    /// duplicate entries).
    pub fn stall_before(&self, batch: u64) -> Option<u64> {
        let total: u64 = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::WorkerStall { at_batch, ticks } if *at_batch == batch => Some(*ticks),
                _ => None,
            })
            .sum();
        (total > 0).then_some(total)
    }

    /// True when the worker dies upon dequeuing `batch`.
    pub fn kills_worker_at(&self, batch: u64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::WorkerDeath { at_batch } if *at_batch == batch))
    }

    /// The applied-count after which the server dies, if any (the
    /// earliest wins when several are injected).
    pub fn server_death_after(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::ServerDeath { after_applied } => Some(*after_applied),
                _ => None,
            })
            .min()
    }

    /// Extra prefetch-delivery latency for `batch`.
    pub fn prefetch_delay(&self, batch: u64) -> u64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::PrefetchDelay { batch: b, ticks } if *b == batch => Some(*ticks),
                _ => None,
            })
            .sum()
    }

    /// True when the gradient intake is saturated at virtual tick `t`.
    pub fn saturated_at(&self, t: u64) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::GradQueueSaturation { start, ticks } => t >= *start && t < *start + *ticks,
            _ => false,
        })
    }

    /// True when transmission `delivery` of push `seq` is dropped.
    pub fn drops(&self, seq: u64, delivery: u32) -> bool {
        self.faults.iter().any(
            |f| matches!(f, Fault::DropPush { seq: s, delivery: d } if *s == seq && *d == delivery),
        )
    }

    /// True when transmission `delivery` of push `seq` is duplicated.
    pub fn duplicates(&self, seq: u64, delivery: u32) -> bool {
        self.faults.iter().any(|f| {
            matches!(f,
                Fault::DuplicatePush { seq: s, delivery: d } if *s == seq && *d == delivery)
        })
    }

    /// The applied-count after which the whole process crashes, if any
    /// (the earliest wins when several are injected).
    pub fn crash_after(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Crash { after_applied } => Some(*after_applied),
                _ => None,
            })
            .min()
    }

    /// Derives a plan for a **sharded** run: like [`FaultPlan::from_seed`]
    /// but drawing from the shard fault kinds (independent shard death,
    /// cross-shard delivery reordering, per-shard saturation) in place of
    /// the single-server ones. Same determinism contract: one seed, one
    /// plan, bit-for-bit.
    pub fn from_seed_sharded(seed: u64, num_batches: u64, num_shards: u32) -> Self {
        let mut ctr = seed ^ 0xFA01_7FA0_17FA_017F;
        let mut draw = move || {
            ctr = ctr.wrapping_add(1);
            splitmix64(ctr)
        };
        let n = num_batches.max(1);
        let shards = u64::from(num_shards.max(1));
        let count = (draw() % 4) as usize; // 0..=3 faults
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let fault = match draw() % 8 {
                0 => Fault::WorkerStall { at_batch: draw() % n, ticks: 1 + draw() % 64 },
                1 => Fault::WorkerDeath { at_batch: draw() % n },
                2 => {
                    Fault::ShardDeath { shard: (draw() % shards) as u32, after_applied: draw() % n }
                }
                3 => Fault::PrefetchDelay { batch: draw() % n, ticks: 1 + draw() % 48 },
                4 => Fault::ShardSaturation {
                    shard: (draw() % shards) as u32,
                    start: draw() % (n * 10),
                    ticks: 5 + draw() % 60,
                },
                5 => Fault::DropShardPush {
                    shard: (draw() % shards) as u32,
                    seq: draw() % n,
                    delivery: 1 + (draw() % 2) as u32,
                },
                6 => Fault::DuplicateShardPush {
                    shard: (draw() % shards) as u32,
                    seq: draw() % n,
                    delivery: 1 + (draw() % 2) as u32,
                },
                _ => Fault::ShardDelay {
                    shard: (draw() % shards) as u32,
                    seq: draw() % n,
                    ticks: 1 + draw() % 40,
                },
            };
            faults.push(fault);
        }
        Self { faults }
    }

    /// The applied-count after which `shard` dies, if any (earliest wins).
    pub fn shard_death_after(&self, shard: u32) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::ShardDeath { shard: s, after_applied } if *s == shard => {
                    Some(*after_applied)
                }
                _ => None,
            })
            .min()
    }

    /// True when `shard`'s gradient intake is saturated at tick `t`.
    pub fn shard_saturated_at(&self, shard: u32, t: u64) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::ShardSaturation { shard: s, start, ticks } => {
                *s == shard && t >= *start && t < *start + *ticks
            }
            _ => false,
        })
    }

    /// True when transmission `delivery` of push `seq` toward `shard` is
    /// dropped.
    pub fn shard_drops(&self, shard: u32, seq: u64, delivery: u32) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::DropShardPush { shard: sh, seq: s, delivery: d }
                if *sh == shard && *s == seq && *d == delivery)
        })
    }

    /// True when transmission `delivery` of push `seq` toward `shard` is
    /// duplicated.
    pub fn shard_duplicates(&self, shard: u32, seq: u64, delivery: u32) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::DuplicateShardPush { shard: sh, seq: s, delivery: d }
                if *sh == shard && *s == seq && *d == delivery)
        })
    }

    /// Derives a plan for a **replicated** run: kill-the-primary and
    /// kill-the-backup schedules for a K-replica sharded tier. Every
    /// seed kills at least one primary mid-training (that is the sweep's
    /// whole point — a fallback kill is injected when the draws produce
    /// none), primary deaths per shard are capped at `replicas - 1` so
    /// the last copy always survives, and adjacent-watermark kills on
    /// the same shard exercise death *during* a promotion. Same
    /// determinism contract: one seed, one plan, bit-for-bit.
    pub fn from_seed_failover(seed: u64, num_batches: u64, num_shards: u32, replicas: u32) -> Self {
        let mut ctr = seed ^ 0xFA11_0FE4_FA11_0FE4;
        let mut draw = move || {
            ctr = ctr.wrapping_add(1);
            splitmix64(ctr)
        };
        let n = num_batches.max(1);
        let shards = u64::from(num_shards.max(1));
        let spares = replicas.max(2) - 1; // deaths a shard can absorb
                                          // total deaths per shard (primary AND backup, rejoining or not)
                                          // stay under the spare budget so at least one copy always
                                          // survives and every sweep seed can complete
        let mut deaths = vec![0u32; shards as usize];
        let count = 1 + (draw() % 4) as usize; // 1..=4 faults
        let mut faults = Vec::with_capacity(count + 1);
        for _ in 0..count {
            let fault = match draw() % 4 {
                0 | 1 => {
                    let shard = (draw() % shards) as u32;
                    let after_applied = draw() % n;
                    if deaths[shard as usize] >= spares {
                        continue; // never schedule away the last copy
                    }
                    deaths[shard as usize] += 1;
                    Fault::PrimaryDeath { shard, after_applied }
                }
                2 => {
                    let shard = (draw() % shards) as u32;
                    let rank = 1 + (draw() % u64::from(spares)) as u32;
                    let after_applied = draw() % n;
                    let rejoin_after = if draw() % 2 == 0 { 8 + draw() % 40 } else { 0 };
                    if deaths[shard as usize] >= spares {
                        continue;
                    }
                    deaths[shard as usize] += 1;
                    Fault::BackupDeath { shard, rank, after_applied, rejoin_after }
                }
                _ => Fault::WorkerStall { at_batch: draw() % n, ticks: 1 + draw() % 32 },
            };
            faults.push(fault);
        }
        if !faults.iter().any(|f| matches!(f, Fault::PrimaryDeath { .. })) {
            // the sweep's contract: every seed kills at least one primary
            let first = splitmix64(seed ^ 0xC4A5_11C4_A511_C4A5) % shards;
            let shard = (0..shards)
                .map(|step| ((first + step) % shards) as u32)
                .find(|&s| deaths[s as usize] < spares);
            match shard {
                Some(shard) => {
                    let after_applied = splitmix64(seed ^ 0x11C4_A511_C4A5_11C4) % n;
                    faults.push(Fault::PrimaryDeath { shard, after_applied });
                }
                None => {
                    // every shard is at its death budget (only possible in
                    // tiny configs): replace the plan with one clean kill
                    let shard = first as u32;
                    let after_applied = splitmix64(seed ^ 0x11C4_A511_C4A5_11C4) % n;
                    faults = vec![Fault::PrimaryDeath { shard, after_applied }];
                }
            }
        }
        Self { faults }
    }

    /// Derives a plan of **network faults** for a replicated run:
    /// heartbeat-loss windows (false suspicion → spurious promotion →
    /// fenced step-down) and full partitions (retransmission + failover
    /// riding out total silence), with an optional primary kill mixed
    /// in. Windows are bounded so every seed's run can still finish.
    pub fn from_seed_netfault(seed: u64, num_batches: u64, num_shards: u32) -> Self {
        let mut ctr = seed ^ 0x4E7F_A017_4E7F_A017;
        let mut draw = move || {
            ctr = ctr.wrapping_add(1);
            splitmix64(ctr)
        };
        let n = num_batches.max(1);
        let shards = u64::from(num_shards.max(1));
        let count = 1 + (draw() % 3) as usize; // 1..=3 faults
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let fault = match draw() % 4 {
                0 | 1 => Fault::HeartbeatLoss {
                    shard: (draw() % shards) as u32,
                    start: draw() % (n * 10),
                    ticks: 20 + draw() % 56, // long enough to trip suspicion
                },
                2 => Fault::Partition {
                    shard: (draw() % shards) as u32,
                    start: draw() % (n * 10),
                    ticks: 10 + draw() % 66, // bounded: the run must finish
                },
                _ => Fault::PrimaryDeath {
                    shard: (draw() % shards) as u32,
                    after_applied: draw() % n,
                },
            };
            faults.push(fault);
        }
        Self { faults }
    }

    /// Applied-watermarks at which `shard`'s primary dies, sorted
    /// ascending (one promotion per entry).
    pub fn primary_deaths(&self, shard: u32) -> Vec<u64> {
        let mut deaths: Vec<u64> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::PrimaryDeath { shard: s, after_applied } if *s == shard => {
                    Some(*after_applied)
                }
                _ => None,
            })
            .collect();
        deaths.sort_unstable();
        deaths
    }

    /// Backup deaths scheduled for `shard`: `(rank, after_applied,
    /// rejoin_after)` tuples in plan order.
    pub fn backup_deaths(&self, shard: u32) -> Vec<(u32, u64, u64)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::BackupDeath { shard: s, rank, after_applied, rejoin_after }
                    if *s == shard =>
                {
                    Some((*rank, *after_applied, *rejoin_after))
                }
                _ => None,
            })
            .collect()
    }

    /// True when `shard`'s heartbeats are dropped at tick `t`.
    pub fn heartbeat_lost_at(&self, shard: u32, t: u64) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::HeartbeatLoss { shard: s, start, ticks } => {
                *s == shard && t >= *start && t < *start + *ticks
            }
            _ => false,
        })
    }

    /// True when all traffic to and from `shard` is dropped at tick `t`.
    pub fn partitioned_at(&self, shard: u32, t: u64) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::Partition { shard: s, start, ticks } => {
                *s == shard && t >= *start && t < *start + *ticks
            }
            _ => false,
        })
    }

    /// Extra delivery latency for push `seq` toward `shard` (summed over
    /// duplicate entries).
    pub fn shard_delay(&self, shard: u32, seq: u64) -> u64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::ShardDelay { shard: sh, seq: s, ticks } if *sh == shard && *s == seq => {
                    Some(*ticks)
                }
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        for seed in 0..200u64 {
            assert_eq!(FaultPlan::from_seed(seed, 24), FaultPlan::from_seed(seed, 24));
        }
    }

    #[test]
    fn seeds_cover_every_fault_kind() {
        let mut kinds = [false; 8];
        for seed in 0..500u64 {
            for f in &FaultPlan::from_seed(seed, 24).faults {
                let k = match f {
                    Fault::WorkerStall { .. } => 0,
                    Fault::WorkerDeath { .. } => 1,
                    Fault::ServerDeath { .. } => 2,
                    Fault::PrefetchDelay { .. } => 3,
                    Fault::GradQueueSaturation { .. } => 4,
                    Fault::DropPush { .. } => 5,
                    Fault::DuplicatePush { .. } => 6,
                    Fault::Crash { .. } => 7,
                    Fault::ShardDeath { .. }
                    | Fault::ShardSaturation { .. }
                    | Fault::DropShardPush { .. }
                    | Fault::DuplicateShardPush { .. }
                    | Fault::ShardDelay { .. }
                    | Fault::PrimaryDeath { .. }
                    | Fault::BackupDeath { .. }
                    | Fault::HeartbeatLoss { .. }
                    | Fault::Partition { .. } => {
                        panic!("single-server seeds must not draw shard faults: {f}")
                    }
                };
                kinds[k] = true;
            }
        }
        assert!(kinds.iter().all(|&k| k), "500 seeds must cover all kinds: {kinds:?}");
    }

    #[test]
    fn sharded_seeds_cover_every_shard_fault_kind() {
        let mut kinds = [false; 8];
        for seed in 0..500u64 {
            let plan = FaultPlan::from_seed_sharded(seed, 24, 3);
            assert_eq!(plan, FaultPlan::from_seed_sharded(seed, 24, 3));
            for f in &plan.faults {
                let k = match f {
                    Fault::WorkerStall { .. } => 0,
                    Fault::WorkerDeath { .. } => 1,
                    Fault::ShardDeath { shard, .. } => {
                        assert!(*shard < 3);
                        2
                    }
                    Fault::PrefetchDelay { .. } => 3,
                    Fault::ShardSaturation { shard, .. } => {
                        assert!(*shard < 3);
                        4
                    }
                    Fault::DropShardPush { shard, .. } => {
                        assert!(*shard < 3);
                        5
                    }
                    Fault::DuplicateShardPush { shard, .. } => {
                        assert!(*shard < 3);
                        6
                    }
                    Fault::ShardDelay { shard, .. } => {
                        assert!(*shard < 3);
                        7
                    }
                    other => panic!("sharded seeds must not draw single-server faults: {other}"),
                };
                kinds[k] = true;
            }
        }
        assert!(kinds.iter().all(|&k| k), "500 sharded seeds must cover all kinds: {kinds:?}");
    }

    #[test]
    fn shard_queries_answer_from_the_plan() {
        let plan = FaultPlan::with(vec![
            Fault::ShardDeath { shard: 1, after_applied: 5 },
            Fault::ShardSaturation { shard: 0, start: 50, ticks: 10 },
            Fault::DropShardPush { shard: 2, seq: 4, delivery: 1 },
            Fault::DuplicateShardPush { shard: 0, seq: 6, delivery: 2 },
            Fault::ShardDelay { shard: 1, seq: 3, ticks: 7 },
        ]);
        assert_eq!(plan.shard_death_after(1), Some(5));
        assert_eq!(plan.shard_death_after(0), None);
        assert!(plan.shard_saturated_at(0, 50) && plan.shard_saturated_at(0, 59));
        assert!(!plan.shard_saturated_at(0, 60) && !plan.shard_saturated_at(1, 55));
        assert!(plan.shard_drops(2, 4, 1) && !plan.shard_drops(1, 4, 1));
        assert!(plan.shard_duplicates(0, 6, 2) && !plan.shard_duplicates(0, 6, 1));
        assert_eq!(plan.shard_delay(1, 3), 7);
        assert_eq!(plan.shard_delay(0, 3), 0);
    }

    #[test]
    fn failover_seeds_always_kill_a_primary_within_the_spare_budget() {
        let replicas = 3u32;
        let mut saw_backup_death = false;
        let mut saw_rejoin = false;
        let mut saw_adjacent = false;
        for seed in 0..500u64 {
            let plan = FaultPlan::from_seed_failover(seed, 24, 3, replicas);
            assert_eq!(plan, FaultPlan::from_seed_failover(seed, 24, 3, replicas));
            assert!(
                plan.faults.iter().any(|f| matches!(f, Fault::PrimaryDeath { .. })),
                "seed {seed} kills no primary — the sweep's contract is broken"
            );
            for shard in 0..3 {
                let deaths = plan.primary_deaths(shard);
                let backups = plan.backup_deaths(shard);
                assert!(
                    deaths.len() + backups.len() <= (replicas - 1) as usize,
                    "seed {seed} schedules away shard {shard}'s last copy"
                );
                saw_adjacent |= deaths.windows(2).any(|w| w[1] - w[0] <= 1);
                for (rank, _, rejoin) in backups {
                    assert!(rank >= 1 && rank < replicas, "rank {rank} outside the group");
                    saw_backup_death = true;
                    saw_rejoin |= rejoin > 0;
                }
            }
        }
        assert!(saw_backup_death, "500 seeds must kill some backup");
        assert!(saw_rejoin, "500 seeds must exercise the catch-up rejoin path");
        assert!(saw_adjacent, "500 seeds must kill during a promotion window");
    }

    #[test]
    fn netfault_seeds_cover_both_window_kinds_and_stay_bounded() {
        let mut kinds = [false; 3];
        for seed in 0..500u64 {
            let plan = FaultPlan::from_seed_netfault(seed, 24, 3);
            assert_eq!(plan, FaultPlan::from_seed_netfault(seed, 24, 3));
            assert!(!plan.faults.is_empty(), "netfault seeds always inject something");
            for f in &plan.faults {
                match f {
                    Fault::HeartbeatLoss { ticks, .. } => {
                        assert!(*ticks <= 76, "unbounded window stalls the run");
                        kinds[0] = true;
                    }
                    Fault::Partition { ticks, .. } => {
                        assert!(*ticks <= 76, "unbounded window stalls the run");
                        kinds[1] = true;
                    }
                    Fault::PrimaryDeath { .. } => kinds[2] = true,
                    other => panic!("netfault seeds must not draw {other}"),
                }
            }
        }
        assert!(kinds.iter().all(|&k| k), "500 netfault seeds must cover all kinds: {kinds:?}");
    }

    #[test]
    fn failover_queries_answer_from_the_plan() {
        let plan = FaultPlan::with(vec![
            Fault::PrimaryDeath { shard: 0, after_applied: 7 },
            Fault::PrimaryDeath { shard: 0, after_applied: 3 },
            Fault::BackupDeath { shard: 1, rank: 2, after_applied: 5, rejoin_after: 12 },
            Fault::HeartbeatLoss { shard: 2, start: 40, ticks: 10 },
            Fault::Partition { shard: 1, start: 80, ticks: 20 },
        ]);
        assert_eq!(plan.primary_deaths(0), vec![3, 7], "sorted ascending");
        assert!(plan.primary_deaths(1).is_empty());
        assert_eq!(plan.backup_deaths(1), vec![(2, 5, 12)]);
        assert!(plan.heartbeat_lost_at(2, 40) && plan.heartbeat_lost_at(2, 49));
        assert!(!plan.heartbeat_lost_at(2, 50) && !plan.heartbeat_lost_at(0, 45));
        assert!(plan.partitioned_at(1, 80) && plan.partitioned_at(1, 99));
        assert!(!plan.partitioned_at(1, 100) && !plan.partitioned_at(0, 90));
    }

    #[test]
    fn some_seeds_are_fault_free() {
        assert!(
            (0..100u64).any(|s| FaultPlan::from_seed(s, 24).faults.is_empty()),
            "the sweep must include fault-free baselines"
        );
    }

    #[test]
    fn queries_answer_from_the_plan() {
        let plan = FaultPlan::with(vec![
            Fault::WorkerStall { at_batch: 3, ticks: 10 },
            Fault::WorkerDeath { at_batch: 7 },
            Fault::ServerDeath { after_applied: 5 },
            Fault::PrefetchDelay { batch: 2, ticks: 9 },
            Fault::GradQueueSaturation { start: 100, ticks: 20 },
            Fault::DropPush { seq: 4, delivery: 1 },
            Fault::DuplicatePush { seq: 6, delivery: 2 },
            Fault::Crash { after_applied: 9 },
        ]);
        assert_eq!(plan.stall_before(3), Some(10));
        assert_eq!(plan.stall_before(4), None);
        assert!(plan.kills_worker_at(7) && !plan.kills_worker_at(6));
        assert_eq!(plan.server_death_after(), Some(5));
        assert_eq!(plan.prefetch_delay(2), 9);
        assert_eq!(plan.prefetch_delay(3), 0);
        assert!(plan.saturated_at(100) && plan.saturated_at(119) && !plan.saturated_at(120));
        assert!(plan.drops(4, 1) && !plan.drops(4, 2));
        assert!(plan.duplicates(6, 2) && !plan.duplicates(6, 1));
        assert_eq!(plan.crash_after(), Some(9));
        assert_eq!(FaultPlan::none().crash_after(), None);
    }

    #[test]
    fn display_round_trips_the_story() {
        let plan = FaultPlan::with(vec![Fault::WorkerDeath { at_batch: 7 }]);
        assert_eq!(plan.to_string(), "- worker dies at batch 7");
        assert_eq!(FaultPlan::none().to_string(), "(fault-free)");
    }
}
