//! The multi-shard discrete-event simulation.
//!
//! [`crate::sim`] drives one [`HostServer`]; this module drives the
//! **sharded parameter tier** of `el_pipeline::router`: N independent
//! [`HostServer`] shards, each with its own bounded gradient intake and
//! push-stamp domain, fronted by a [`ShardRouter`] whose gather fans out
//! across the shards and stamps the reassembled batch with the *minimum*
//! per-shard applied watermark. The worker is unchanged — it runs the
//! same `worker_push` step from [`crate::sim`] over the reassembled batch
//! — and its
//! push is scattered into one push **per shard**, each transmitted over
//! its own unreliable link: a [`FaultPlan`] built with
//! [`FaultPlan::from_seed_sharded`] can kill an individual shard, delay,
//! drop or duplicate deliveries toward one shard while its peers receive
//! theirs on time (cross-shard reordering), and saturate one shard's
//! intake window.
//!
//! Single-server faults that name the whole process
//! ([`Fault::Crash`](crate::fault::Fault::Crash),
//! [`Fault::ServerDeath`](crate::fault::Fault::ServerDeath),
//! [`Fault::GradQueueSaturation`](crate::fault::Fault::GradQueueSaturation),
//! [`Fault::DropPush`](crate::fault::Fault::DropPush),
//! [`Fault::DuplicatePush`](crate::fault::Fault::DuplicatePush)) are not
//! modelled here and are ignored; sharded plans draw from the shard fault
//! kinds instead.
//!
//! Every run is a pure function of `(ShardSimConfig, FaultPlan,
//! schedule_seed)`; the invariant checker
//! ([`crate::invariants::check_shard_run`]) verifies per-shard
//! exactly-once, the stitched global staleness bound, and byte-identity
//! of every shard against the sharded sequential oracle
//! ([`crate::oracle::sharded_prefix`]).

use crate::clock::{splitmix64, EventQueue};
use crate::fault::FaultPlan;
use crate::sim::{
    build_dataset, build_tables, digest_tables, worker_push, Outcome, ResumeState, SimConfig,
};
use crate::trace::{Trace, TraceEvent};
use el_data::SyntheticDataset;
use el_dlrm::embedding_bag::EmbeddingBag;
use el_pipeline::cache::EmbeddingCache;
use el_pipeline::server::{ApplyOutcome, GradientPush, HostServer, PrefetchedBatch};
use el_pipeline::{merge_tables, split_tables, ShardConfig, ShardLayout, ShardRouter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

// The same latency model as the single-server sim (crate::sim), copied
// because those constants are private to that module by design: the two
// simulations must stay independently tunable.
const PREFETCH_LATENCY: u64 = 3;
const COMPUTE_LATENCY: u64 = 4;
const PUSH_LATENCY: u64 = 3;
const ACK_LATENCY: u64 = 2;
const RETRY_TIMEOUT: u64 = 24;
const MAX_RETRIES: u32 = 8;
const JITTER: u64 = 4;

/// Static configuration of one sharded run.
#[derive(Clone, Copy, Debug)]
pub struct ShardSimConfig {
    /// The model/data universe and pipeline knobs (shared with the
    /// single-server sim and the oracle).
    pub base: SimConfig,
    /// The shard layout knobs (count, row-range size, placement seed).
    pub shard: ShardConfig,
}

impl Default for ShardSimConfig {
    fn default() -> Self {
        Self {
            base: SimConfig::default(),
            shard: ShardConfig { num_shards: 3, rows_per_range: 16, placement_seed: 0xE1 },
        }
    }
}

impl ShardSimConfig {
    /// The placement every participant of this config derives.
    pub fn layout(&self) -> ShardLayout {
        let sizes: Vec<(usize, usize)> =
            (0..self.base.num_tables).map(|t| (t, self.base.rows_per_table)).collect();
        ShardLayout::place(&self.shard, &sizes)
    }
}

/// Result of one sharded run.
#[derive(Debug)]
pub struct ShardSimReport {
    /// Terminal state ([`Outcome::Completed`] iff **every** shard applied
    /// every batch).
    pub outcome: Outcome,
    /// Per-shard applied watermarks at termination.
    pub applied: Vec<u64>,
    /// Full protocol trace, in virtual-time order.
    pub trace: Trace,
    /// Per-shard FNV-1a digests of the final sub-tables.
    pub shard_digests: Vec<u64>,
    /// Digest of the merged (reassembled) global tables.
    pub merged_digest: u64,
    /// The final per-shard sub-tables (the drain input of a reshard).
    pub shard_tables: Vec<Vec<(usize, EmbeddingBag)>>,
    /// The merged global tables.
    pub merged_tables: Vec<(usize, EmbeddingBag)>,
    /// Stale pre-fetched rows the worker's cache corrected.
    pub stale_hits: u64,
    /// Virtual time at termination.
    pub final_tick: u64,
    /// Events processed.
    pub events_processed: u64,
}

/// In-flight scattered push awaiting one shard's acknowledgement.
struct UnackedPush {
    push: GradientPush,
    attempts: u32,
    deliveries: u32,
}

/// Events on the virtual timeline.
enum Ev {
    /// A reassembled pre-fetched batch reaches the worker.
    PrefetchArrive(Box<PrefetchedBatch>),
    /// A worker stall window ends.
    StallOver,
    /// The worker finishes computing a batch.
    ComputeDone(u64),
    /// A scattered push delivery reaches one shard.
    ShardPushArrive { shard: u32, push: Box<GradientPush> },
    /// One shard's acknowledgement reaches the worker.
    ShardAckArrive { shard: u32, seq: u64 },
    /// The worker's retransmission timer for one shard's push fires.
    RetryFire { shard: u32, seq: u64 },
}

/// The running sharded simulation state.
struct ShardSim {
    cfg: ShardSimConfig,
    plan: FaultPlan,
    q: EventQueue<Ev>,
    rng: StdRng,
    dataset: SyntheticDataset,
    trace: Trace,
    // the sharded host tier
    router: ShardRouter,
    shards: Vec<HostServer>,
    shard_alive: Vec<bool>,
    next_gather: u64,
    pending: Vec<BTreeMap<u64, GradientPush>>,
    occupancy: usize,
    // worker
    worker_alive: bool,
    stalled: bool,
    stalls_done: BTreeSet<u64>,
    inbox: BTreeMap<u64, PrefetchedBatch>,
    next_train: u64,
    computing: Option<GradientPush>,
    caches: Vec<(usize, EmbeddingCache)>,
    unacked: BTreeMap<(u32, u64), UnackedPush>,
}

/// Runs one sharded simulation to termination.
pub fn run_sharded(cfg: &ShardSimConfig, plan: &FaultPlan, schedule_seed: u64) -> ShardSimReport {
    run_shard_session(cfg, plan, schedule_seed, None)
}

/// Runs one sharded *session*: [`run_sharded`] plus resumption. `resume`
/// continues from recovered **global** tables at an applied watermark
/// (the session splits them under its own layout), which is how a
/// post-reshard phase restarts under a new placement.
pub fn run_shard_session(
    cfg: &ShardSimConfig,
    plan: &FaultPlan,
    schedule_seed: u64,
    resume: Option<ResumeState>,
) -> ShardSimReport {
    let layout = cfg.layout();
    let mut trace = Trace::default();
    let mut start = 0u64;
    let global = match resume {
        Some(rs) => {
            start = rs.applied;
            trace.push(TraceEvent::Resumed { applied: rs.applied });
            rs.tables
        }
        None => build_tables(&cfg.base),
    };
    let shards: Vec<HostServer> = split_tables(&global, &layout)
        .expect("the layout places exactly the config's tables")
        .into_iter()
        .map(|sub| {
            let mut s = HostServer::new(sub, cfg.base.lr);
            s.applied = start;
            s
        })
        .collect();
    let n = shards.len();
    let sim = ShardSim {
        cfg: *cfg,
        plan: plan.clone(),
        q: EventQueue::new(),
        rng: StdRng::seed_from_u64(cfg.base.model_seed ^ splitmix64(schedule_seed)),
        dataset: build_dataset(&cfg.base),
        trace,
        router: ShardRouter::new(layout),
        shards,
        shard_alive: vec![true; n],
        next_gather: start,
        pending: (0..n).map(|_| BTreeMap::new()).collect(),
        occupancy: 0,
        worker_alive: true,
        stalled: false,
        stalls_done: BTreeSet::new(),
        inbox: BTreeMap::new(),
        next_train: start,
        computing: None,
        caches: (0..cfg.base.num_tables).map(|t| (t, EmbeddingCache::new())).collect(),
        unacked: BTreeMap::new(),
    };
    sim.drive()
}

impl ShardSim {
    fn jitter(&mut self) -> u64 {
        self.rng.gen_range(0..JITTER)
    }

    fn min_applied(&self) -> u64 {
        self.shards.iter().map(|s| s.applied).min().unwrap_or(0)
    }

    fn drive(mut self) -> ShardSimReport {
        let mut events = 0u64;
        let mut out_of_budget = false;
        self.step();
        while let Some(ev) = self.q.pop() {
            events += 1;
            if events > self.cfg.base.max_events {
                out_of_budget = true;
                break;
            }
            self.handle(ev);
            self.step();
        }
        let outcome = if out_of_budget {
            Outcome::OutOfBudget
        } else if self.shards.iter().all(|s| s.applied == self.cfg.base.num_batches) {
            Outcome::Completed
        } else {
            Outcome::Stalled
        };
        let stale_hits = self.caches.iter().map(|(_, c)| c.stale_hits).sum();
        let shard_tables: Vec<Vec<(usize, EmbeddingBag)>> =
            self.shards.iter().map(|s| s.tables.clone()).collect();
        let merged_tables = merge_tables(&shard_tables, self.router.layout())
            .expect("sub-tables always merge under their own layout");
        ShardSimReport {
            outcome,
            applied: self.shards.iter().map(|s| s.applied).collect(),
            shard_digests: shard_tables.iter().map(|t| digest_tables(t)).collect(),
            merged_digest: digest_tables(&merged_tables),
            shard_tables,
            merged_tables,
            stale_hits,
            final_tick: self.q.now(),
            events_processed: events,
            trace: self.trace,
        }
    }

    /// Runs every immediately-enabled action: each shard applies, the
    /// router gathers, the worker starts compute.
    fn step(&mut self) {
        for s in 0..self.shards.len() {
            self.drain_shard(s);
        }
        self.host_gather();
        self.worker_start();
    }

    /// Applies one shard's buffered pushes in order until a gap (or that
    /// shard's injected death). Other shards are untouched: each shard's
    /// stamp domain advances independently.
    fn drain_shard(&mut self, s: usize) {
        while self.shard_alive[s] {
            if let Some(death) = self.plan.shard_death_after(s as u32) {
                if self.shards[s].applied >= death {
                    self.shard_alive[s] = false;
                    self.trace.push(TraceEvent::ShardDied {
                        shard: s as u32,
                        applied: self.shards[s].applied,
                    });
                    self.pending[s].clear();
                    return;
                }
            }
            let next = self.shards[s].applied;
            let Some(push) = self.pending[s].remove(&next) else { return };
            match self.shards[s].apply_checked(&push) {
                Ok(ApplyOutcome::Applied) => {
                    self.trace.push(TraceEvent::ShardApplied { shard: s as u32, seq: next });
                    let d = ACK_LATENCY + self.jitter();
                    self.q.schedule(d, Ev::ShardAckArrive { shard: s as u32, seq: next });
                }
                other => unreachable!("in-order drain of seq {next} must apply, got {other:?}"),
            }
        }
    }

    /// Gathers while every shard is alive, the pre-fetch queue has room,
    /// and the **stitched** staleness gate allows: batch `k` may only be
    /// gathered once `k - min(applied)` is within the bound, so the
    /// reassembled stamp (the per-shard minimum) always satisfies the
    /// global bound.
    fn host_gather(&mut self) {
        while self.shard_alive.iter().all(|&a| a)
            && self.next_gather < self.cfg.base.num_batches
            && self.occupancy < self.cfg.base.prefetch_depth
            && self.next_gather - self.min_applied() <= self.cfg.base.staleness_bound
        {
            let k = self.next_gather;
            for (s, shard) in self.shards.iter().enumerate() {
                self.trace.push(TraceEvent::ShardStamped {
                    shard: s as u32,
                    seq: k,
                    applied: shard.applied,
                });
            }
            let batch = self.dataset.batch(k, self.cfg.base.batch_size);
            let pf = self
                .router
                .gather(&mut self.shards, batch, k)
                .expect("config-derived layout always routes its own batches");
            self.trace.push(TraceEvent::Gathered { seq: k, applied_through: pf.applied_through });
            let delay = PREFETCH_LATENCY + self.jitter() + self.plan.prefetch_delay(k);
            self.q.schedule(delay, Ev::PrefetchArrive(Box::new(pf)));
            self.occupancy += 1;
            self.next_gather += 1;
        }
    }

    /// Starts computing the next in-order batch if the worker is idle —
    /// identical to the single-server worker: the sharding seam is
    /// invisible to it.
    fn worker_start(&mut self) {
        if !self.worker_alive || self.stalled || self.computing.is_some() {
            return;
        }
        let Some(mut pf) = self.inbox.remove(&self.next_train) else { return };
        let seq = pf.batch_seq;
        if self.plan.kills_worker_at(seq) {
            self.worker_alive = false;
            self.trace.push(TraceEvent::WorkerDied { at_batch: seq });
            self.inbox.clear();
            return;
        }
        if !self.stalls_done.contains(&seq) {
            if let Some(ticks) = self.plan.stall_before(seq) {
                self.stalls_done.insert(seq);
                self.stalled = true;
                self.inbox.insert(seq, pf); // resume from here after the stall
                self.q.schedule(ticks, Ev::StallOver);
                return;
            }
        }
        self.occupancy -= 1;
        self.trace.push(TraceEvent::PrefetchSynced { seq, applied_through: pf.applied_through });
        let push =
            worker_push(&mut pf, &mut self.caches, self.cfg.base.lr, self.cfg.base.model_seed);
        self.computing = Some(push);
        self.next_train += 1;
        let delay = COMPUTE_LATENCY + self.jitter();
        self.q.schedule(delay, Ev::ComputeDone(seq));
    }

    /// Issues one transmission of the scattered push for `(shard, seq)`
    /// (subject to the plan's per-shard drop/duplicate/delay faults) and
    /// arms that link's retransmission timer.
    fn transmit(&mut self, shard: u32, seq: u64) {
        let Some(ent) = self.unacked.get_mut(&(shard, seq)) else { return };
        ent.deliveries += 1;
        let delivery = ent.deliveries;
        let attempts = ent.attempts;
        let push = ent.push.clone();
        self.trace.push(TraceEvent::ShardPushSent { shard, seq, delivery });
        let delay_extra = self.plan.shard_delay(shard, seq);
        if !self.plan.shard_drops(shard, seq, delivery) {
            let d = PUSH_LATENCY + self.jitter() + delay_extra;
            self.q.schedule(d, Ev::ShardPushArrive { shard, push: Box::new(push.clone()) });
        }
        if self.plan.shard_duplicates(shard, seq, delivery) {
            let d = PUSH_LATENCY + 1 + self.jitter() + delay_extra;
            self.q.schedule(d, Ev::ShardPushArrive { shard, push: Box::new(push) });
        }
        let timeout = RETRY_TIMEOUT << attempts.min(8);
        self.q.schedule(timeout, Ev::RetryFire { shard, seq });
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::PrefetchArrive(pf) => {
                if self.worker_alive {
                    self.inbox.insert(pf.batch_seq, *pf);
                }
            }
            Ev::StallOver => {
                self.stalled = false;
            }
            Ev::ComputeDone(seq) => {
                if !self.worker_alive {
                    return;
                }
                let push = self.computing.take().expect("ComputeDone without compute");
                debug_assert_eq!(push.batch_seq, seq);
                let scattered = self
                    .router
                    .scatter_push(&push)
                    .expect("worker pushes of a routed batch always scatter");
                for (s, shard_push) in scattered.into_iter().enumerate() {
                    self.unacked.insert(
                        (s as u32, seq),
                        UnackedPush { push: shard_push, attempts: 0, deliveries: 0 },
                    );
                    self.transmit(s as u32, seq);
                }
            }
            Ev::ShardPushArrive { shard, push } => {
                let s = shard as usize;
                if !self.shard_alive[s] {
                    return;
                }
                let seq = push.batch_seq;
                self.trace.push(TraceEvent::ShardPushDelivered { shard, seq });
                let duplicate = seq < self.shards[s].applied || self.pending[s].contains_key(&seq);
                if duplicate {
                    self.trace.push(TraceEvent::ShardDuplicateIgnored { shard, seq });
                    if seq < self.shards[s].applied {
                        // already applied by this shard: re-acknowledge so
                        // the worker stops retransmitting on this link
                        let d = ACK_LATENCY + self.jitter();
                        self.q.schedule(d, Ev::ShardAckArrive { shard, seq });
                    }
                    return;
                }
                if self.plan.shard_saturated_at(shard, self.q.now())
                    || self.pending[s].len() >= self.cfg.base.grad_capacity
                {
                    self.trace.push(TraceEvent::ShardPushBounced { shard, seq });
                    return;
                }
                self.pending[s].insert(seq, *push);
            }
            Ev::ShardAckArrive { shard, seq } => {
                if self.worker_alive && self.unacked.remove(&(shard, seq)).is_some() {
                    self.trace.push(TraceEvent::ShardAcked { shard, seq });
                }
            }
            Ev::RetryFire { shard, seq } => {
                if !self.worker_alive || !self.unacked.contains_key(&(shard, seq)) {
                    return;
                }
                let ent = self.unacked.get_mut(&(shard, seq)).expect("checked above");
                ent.attempts += 1;
                if ent.attempts > MAX_RETRIES {
                    // this shard is unreachable (dead or stuck saturated):
                    // the worker cannot make exactly-once progress, so it
                    // degrades rather than livelocks
                    self.unacked.remove(&(shard, seq));
                    self.trace.push(TraceEvent::ShardGaveUp { shard, seq });
                    self.worker_alive = false;
                } else {
                    self.transmit(shard, seq);
                }
            }
        }
    }
}

/// The reproduction record of a failed shard-sweep seed.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSweepFailure {
    /// The failing seed (derives the plan and the schedule).
    pub seed: u64,
    /// Shards the sweep ran with.
    pub num_shards: u32,
    /// The fault plan that seed derived.
    pub plan: FaultPlan,
    /// What went wrong.
    pub violation: crate::invariants::Violation,
}

impl fmt::Display for ShardSweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed: {}", self.seed)?;
        writeln!(f, "shards: {}", self.num_shards)?;
        writeln!(f, "violation: {}", self.violation)?;
        writeln!(f, "fault plan:")?;
        writeln!(f, "{}", self.plan)?;
        write!(
            f,
            "reproduce with: cargo xtask sim --shard-seed {} --shards {}",
            self.seed, self.num_shards
        )
    }
}

/// Aggregate statistics of a clean shard sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSweepSummary {
    /// Seeds swept.
    pub seeds: u64,
    /// Runs where every shard applied every batch.
    pub completed: u64,
    /// Runs a fatal fault (worker or shard death) wound down early.
    pub stalled: u64,
    /// Faults injected across all runs.
    pub faults_injected: u64,
    /// Shard deaths that actually fired.
    pub shard_deaths: u64,
    /// Stale pre-fetched rows corrected across all runs.
    pub stale_hits: u64,
}

/// Sweeps sharded seeds `start .. start + count`, stopping at the first
/// violation. Every seed derives a shard fault plan
/// ([`FaultPlan::from_seed_sharded`]) and is checked against both the
/// per-shard and the global sequential oracle.
pub fn run_shard_sweep(
    cfg: &ShardSimConfig,
    start: u64,
    count: u64,
) -> Result<ShardSweepSummary, ShardSweepFailure> {
    let shard_oracle = crate::oracle::sharded_prefix(cfg);
    let global_oracle = crate::oracle::sequential_prefix(&cfg.base);
    let mut summary = ShardSweepSummary::default();
    for seed in start..start.saturating_add(count) {
        let plan = FaultPlan::from_seed_sharded(seed, cfg.base.num_batches, cfg.shard.num_shards);
        match crate::invariants::check_shard_run(cfg, &plan, seed, &shard_oracle, &global_oracle) {
            Ok(report) => {
                summary.seeds += 1;
                summary.faults_injected += plan.faults.len() as u64;
                summary.stale_hits += report.stale_hits;
                summary.shard_deaths +=
                    report.trace.count(|e| matches!(e, TraceEvent::ShardDied { .. })) as u64;
                match report.outcome {
                    Outcome::Completed => summary.completed += 1,
                    _ => summary.stalled += 1,
                }
            }
            Err(violation) => {
                return Err(ShardSweepFailure {
                    seed,
                    num_shards: cfg.shard.num_shards,
                    plan,
                    violation,
                })
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use crate::oracle::{sequential_prefix, sharded_prefix};

    #[test]
    fn fault_free_sharded_run_completes() {
        let cfg = ShardSimConfig::default();
        let r = run_sharded(&cfg, &FaultPlan::none(), 1);
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.applied.iter().all(|&a| a == cfg.base.num_batches));
        assert_eq!(
            r.trace.count(|e| matches!(e, TraceEvent::ShardApplied { .. })),
            (cfg.base.num_batches * u64::from(cfg.shard.num_shards)) as usize
        );
        assert!(r.stale_hits > 0, "pipelining must actually create staleness to correct");
    }

    #[test]
    fn sharded_run_is_byte_identical_to_the_sequential_oracle() {
        let cfg = ShardSimConfig::default();
        let oracle = sequential_prefix(&cfg.base);
        let r = run_sharded(&cfg, &FaultPlan::none(), 7);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(
            r.merged_digest, oracle.prefix_digests[cfg.base.num_batches as usize],
            "merged sharded tables must equal the never-sharded sequential tables"
        );
    }

    #[test]
    fn sharded_replay_is_bit_identical() {
        let cfg = ShardSimConfig::default();
        for seed in [0u64, 5, 23] {
            let plan =
                FaultPlan::from_seed_sharded(seed, cfg.base.num_batches, cfg.shard.num_shards);
            let a = run_sharded(&cfg, &plan, seed);
            let b = run_sharded(&cfg, &plan, seed);
            assert_eq!(a.trace, b.trace, "trace diverged for seed {seed}");
            assert_eq!(a.merged_digest, b.merged_digest);
            assert_eq!(a.final_tick, b.final_tick);
        }
    }

    #[test]
    fn shard_death_stops_that_shard_but_not_its_peers() {
        let cfg = ShardSimConfig::default();
        let plan = FaultPlan::with(vec![Fault::ShardDeath { shard: 1, after_applied: 5 }]);
        let r = run_sharded(&cfg, &plan, 3);
        assert_eq!(r.outcome, Outcome::Stalled);
        assert_eq!(r.applied[1], 5, "the dead shard froze at its death watermark");
        assert!(
            r.applied.iter().any(|&a| a > 5),
            "surviving shards kept applying while retries ran: {:?}",
            r.applied
        );
        assert!(r.trace.any(|e| matches!(e, TraceEvent::ShardDied { shard: 1, applied: 5 })));
        assert!(r.trace.any(|e| matches!(e, TraceEvent::ShardGaveUp { shard: 1, .. })));
        // every shard still matches its own oracle prefix
        let so = sharded_prefix(&cfg);
        for (s, &d) in r.shard_digests.iter().enumerate() {
            assert_eq!(d, so.per_shard[s][r.applied[s] as usize], "shard {s} diverged");
        }
    }

    #[test]
    fn per_shard_saturation_reorders_cross_shard_delivery() {
        let cfg = ShardSimConfig::default();
        let plan = FaultPlan::with(vec![Fault::ShardSaturation { shard: 0, start: 10, ticks: 40 }]);
        let r = run_sharded(&cfg, &plan, 9);
        assert_eq!(r.outcome, Outcome::Completed, "retries must ride out the window");
        assert!(r.trace.any(|e| matches!(e, TraceEvent::ShardPushBounced { shard: 0, .. })));
        assert!(!r.trace.any(|e| matches!(e, TraceEvent::ShardPushBounced { shard: 1, .. })));
    }

    #[test]
    fn shard_drops_duplicates_and_delays_are_absorbed() {
        let cfg = ShardSimConfig::default();
        let plan = FaultPlan::with(vec![
            Fault::DropShardPush { shard: 0, seq: 2, delivery: 1 },
            Fault::DuplicateShardPush { shard: 1, seq: 3, delivery: 1 },
            Fault::ShardDelay { shard: 2, seq: 4, ticks: 30 },
        ]);
        let oracle = sequential_prefix(&cfg.base);
        let r = run_sharded(&cfg, &plan, 4);
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(
            r.trace.count(|e| matches!(e, TraceEvent::ShardPushSent { shard: 0, seq: 2, .. })) >= 2,
            "the drop forced a retransmission toward shard 0"
        );
        assert_eq!(
            r.trace.count(|e| matches!(e, TraceEvent::ShardApplied { shard: 1, seq: 3 })),
            1,
            "the duplicated delivery was applied exactly once"
        );
        assert_eq!(r.merged_digest, oracle.prefix_digests[cfg.base.num_batches as usize]);
    }

    #[test]
    fn stitched_stamp_is_the_per_shard_minimum() {
        let cfg = ShardSimConfig::default();
        let r = run_sharded(&cfg, &FaultPlan::none(), 11);
        let mut stamps: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for e in &r.trace.events {
            match *e {
                TraceEvent::ShardStamped { seq, applied, .. } => {
                    stamps.entry(seq).or_default().push(applied)
                }
                TraceEvent::Gathered { seq, applied_through } => {
                    let per_shard = &stamps[&seq];
                    assert_eq!(per_shard.len(), cfg.shard.num_shards as usize);
                    assert_eq!(
                        applied_through,
                        *per_shard.iter().min().unwrap(),
                        "batch {seq}: the global stamp must be the per-shard minimum"
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn resumed_session_continues_from_the_watermark() {
        let cfg = ShardSimConfig::default();
        let oracle = sequential_prefix(&cfg.base);
        // run the first half, resume the second from the merged tables
        let half = ShardSimConfig { base: SimConfig { num_batches: 12, ..cfg.base }, ..cfg };
        let a = run_sharded(&half, &FaultPlan::none(), 2);
        assert_eq!(a.outcome, Outcome::Completed);
        let resume = ResumeState { tables: a.merged_tables, applied: 12 };
        let b = run_shard_session(&cfg, &FaultPlan::none(), 21, Some(resume));
        assert_eq!(b.outcome, Outcome::Completed);
        assert!(b.trace.any(|e| matches!(e, TraceEvent::Resumed { applied: 12 })));
        assert_eq!(b.merged_digest, oracle.prefix_digests[cfg.base.num_batches as usize]);
    }

    #[test]
    fn a_quick_shard_sweep_is_clean_and_diverse() {
        let cfg = ShardSimConfig::default();
        let summary =
            run_shard_sweep(&cfg, 0, 30).unwrap_or_else(|f| panic!("shard sweep failed:\n{f}"));
        assert_eq!(summary.seeds, 30);
        assert!(summary.completed > 0);
        assert!(summary.faults_injected > 0);
        assert!(summary.stale_hits > 0);
    }

    #[test]
    fn failures_print_a_reproduction_recipe() {
        let f = ShardSweepFailure {
            seed: 9,
            num_shards: 3,
            plan: FaultPlan::from_seed_sharded(9, 24, 3),
            violation: crate::invariants::Violation::OutOfBudget,
        };
        let text = f.to_string();
        assert!(text.contains("seed: 9"));
        assert!(text.contains("cargo xtask sim --shard-seed 9 --shards 3"));
    }
}
