//! Seed sweeps — the CI harness over the simulator.
//!
//! Each seed derives a [`FaultPlan`] and a schedule seed, runs the full
//! per-seed verdict ([`crate::invariants::check_run`]: replay twice,
//! check every invariant, compare against the sequential oracle), and the
//! first violation stops the sweep with everything needed to reproduce
//! it: the seed, the derived plan, and the violation itself. `cargo xtask
//! sim --seed N` replays exactly that run.

use crate::fault::FaultPlan;
use crate::invariants::{check_run, Violation};
use crate::oracle::sequential_prefix;
use crate::sim::{Outcome, SimConfig};
use std::fmt;

/// The reproduction record of a failed sweep seed.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepFailure {
    /// The failing seed (derives both the plan and the schedule).
    pub seed: u64,
    /// The fault plan that seed derived.
    pub plan: FaultPlan,
    /// What went wrong.
    pub violation: Violation,
}

impl fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed: {}", self.seed)?;
        writeln!(f, "violation: {}", self.violation)?;
        writeln!(f, "fault plan:")?;
        writeln!(f, "{}", self.plan)?;
        write!(f, "reproduce with: cargo xtask sim --seed {}", self.seed)
    }
}

/// Aggregate statistics of a clean sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Seeds swept.
    pub seeds: u64,
    /// Runs that trained every batch.
    pub completed: u64,
    /// Runs a fault legitimately cut short.
    pub stalled: u64,
    /// Total faults injected across all plans.
    pub faults_injected: u64,
    /// Total stale pre-fetched rows the worker caches corrected.
    pub stale_hits: u64,
}

/// Sweeps seeds `start .. start + count`, stopping at the first
/// violation. The oracle is computed once — every seed shares the same
/// model universe and differs only in faults and scheduling, which is
/// precisely the schedule-independence claim under test.
pub fn run_sweep(cfg: &SimConfig, start: u64, count: u64) -> Result<SweepSummary, SweepFailure> {
    let oracle = sequential_prefix(cfg);
    let mut summary = SweepSummary::default();
    for seed in start..start.saturating_add(count) {
        let plan = FaultPlan::from_seed(seed, cfg.num_batches);
        match check_run(cfg, &plan, seed, &oracle) {
            Ok(report) => {
                summary.seeds += 1;
                summary.faults_injected += plan.faults.len() as u64;
                summary.stale_hits += report.stale_hits;
                match report.outcome {
                    Outcome::Completed => summary.completed += 1,
                    // a crash without recovery is just another fatal
                    // fault; crash *recovery* is swept separately by
                    // `crate::recovery::run_crash_sweep`
                    Outcome::Stalled | Outcome::Crashed => summary.stalled += 1,
                    Outcome::OutOfBudget => unreachable!("check_run rejects budget overruns"),
                }
            }
            Err(violation) => return Err(SweepFailure { seed, plan, violation }),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quick_sweep_is_clean_and_diverse() {
        let cfg = SimConfig::default();
        let summary = run_sweep(&cfg, 0, 40).unwrap_or_else(|f| panic!("sweep failed:\n{f}"));
        assert_eq!(summary.seeds, 40);
        assert_eq!(summary.seeds, summary.completed + summary.stalled);
        assert!(summary.completed > 0, "some seeds must complete");
        assert!(summary.stalled > 0, "some seeds must hit fatal faults");
        assert!(summary.faults_injected > 0, "plans must actually inject faults");
        assert!(summary.stale_hits > 0, "pipelining must exercise the cache");
    }

    #[test]
    fn failures_print_a_reproduction_recipe() {
        let f = SweepFailure {
            seed: 17,
            plan: FaultPlan::from_seed(17, 24),
            violation: Violation::OutOfBudget,
        };
        let text = f.to_string();
        assert!(text.contains("seed: 17"));
        assert!(text.contains("cargo xtask sim --seed 17"));
    }
}
