//! The sequential reference execution.
//!
//! The embedding cache's contract (DESIGN.md §5) is that pipelined
//! training computes *exactly* what sequential training computes — the
//! cache corrects every stale pre-fetched row before the worker touches
//! it. The oracle runs the same model universe strictly sequentially
//! (gather → train → apply, one batch at a time, staleness always zero)
//! and records a table digest after every applied batch. Any simulated
//! run, however contorted its interleaving and whatever faults cut it
//! short at `applied = k`, must land on `prefix_digests[k]` exactly —
//! this single check subsumes exactly-once delivery *and* cache
//! correctness, because a lost, duplicated or stale-input push would
//! each perturb the final bytes.

use crate::shard::ShardSimConfig;
use crate::sim::{build_dataset, build_tables, digest_tables, worker_push, SimConfig};
use el_dlrm::embedding_bag::EmbeddingBag;
use el_pipeline::cache::EmbeddingCache;
use el_pipeline::server::{ApplyOutcome, HostServer};
use el_pipeline::{split_tables, ShardRouter};

/// The sequential reference for one [`SimConfig`].
pub struct Oracle {
    /// `prefix_digests[k]` is the table digest after `k` applied batches;
    /// index 0 is the initial (untrained) tables. Length `num_batches + 1`.
    pub prefix_digests: Vec<u64>,
    /// The tables after all batches, for byte-level diffing in reports.
    pub final_tables: Vec<(usize, EmbeddingBag)>,
}

/// Runs the sequential reference and captures every prefix digest.
pub fn sequential_prefix(cfg: &SimConfig) -> Oracle {
    let dataset = build_dataset(cfg);
    let mut server = HostServer::new(build_tables(cfg), cfg.lr);
    let mut caches: Vec<(usize, EmbeddingCache)> =
        (0..cfg.num_tables).map(|t| (t, EmbeddingCache::new())).collect();
    let mut prefix_digests = Vec::with_capacity(cfg.num_batches as usize + 1);
    prefix_digests.push(digest_tables(&server.tables));
    for k in 0..cfg.num_batches {
        let batch = dataset.batch(k, cfg.batch_size);
        let mut pf = server.gather(batch, k);
        debug_assert_eq!(pf.applied_through, k, "sequential gather is never stale");
        let push = worker_push(&mut pf, &mut caches, cfg.lr, cfg.model_seed);
        match server.apply_checked(&push) {
            Ok(ApplyOutcome::Applied) => {}
            other => unreachable!("sequential apply of batch {k} failed: {other:?}"),
        }
        prefix_digests.push(digest_tables(&server.tables));
    }
    Oracle { prefix_digests, final_tables: server.tables }
}

/// The sequential reference of the **sharded** tier: per-shard prefix
/// digests stitched from the same strictly-sequential execution as
/// [`sequential_prefix`].
pub struct ShardOracle {
    /// `per_shard[s][k]` is shard `s`'s sub-table digest after `s` has
    /// applied `k` scattered pushes; index 0 is the initial split.
    /// Every inner vector has length `num_batches + 1`.
    pub per_shard: Vec<Vec<u64>>,
}

/// Runs the sequential reference with the sharded tier alongside: every
/// batch is gathered from and applied to a single global server (the
/// trusted baseline) *and* scattered onto per-shard sub-servers, digesting
/// each shard after each apply. A sharded run whose shard `s` stopped at
/// `applied[s] = k` — whatever faults stopped it — must land on
/// `per_shard[s][k]` exactly: this is the per-shard half of the
/// schedule-independence invariant, valid even when shards are skewed.
pub fn sharded_prefix(cfg: &ShardSimConfig) -> ShardOracle {
    let dataset = build_dataset(&cfg.base);
    let tables = build_tables(&cfg.base);
    let layout = cfg.layout();
    let mut server = HostServer::new(tables.clone(), cfg.base.lr);
    let mut shards: Vec<HostServer> = split_tables(&tables, &layout)
        .expect("the layout places exactly the config's tables")
        .into_iter()
        .map(|sub| HostServer::new(sub, cfg.base.lr))
        .collect();
    let mut router = ShardRouter::new(layout);
    let mut caches: Vec<(usize, EmbeddingCache)> =
        (0..cfg.base.num_tables).map(|t| (t, EmbeddingCache::new())).collect();
    let mut per_shard: Vec<Vec<u64>> =
        shards.iter().map(|s| vec![digest_tables(&s.tables)]).collect();
    for k in 0..cfg.base.num_batches {
        let batch = dataset.batch(k, cfg.base.batch_size);
        let mut pf = server.gather(batch, k);
        let push = worker_push(&mut pf, &mut caches, cfg.base.lr, cfg.base.model_seed);
        match server.apply_checked(&push) {
            Ok(ApplyOutcome::Applied) => {}
            other => unreachable!("sequential apply of batch {k} failed: {other:?}"),
        }
        let scattered = router.scatter_push(&push).expect("oracle pushes always scatter");
        for (s, shard_push) in scattered.iter().enumerate() {
            match shards[s].apply_checked(shard_push) {
                Ok(ApplyOutcome::Applied) => {}
                other => unreachable!("sequential shard apply of batch {k} failed: {other:?}"),
            }
            per_shard[s].push(digest_tables(&shards[s].tables));
        }
    }
    ShardOracle { per_shard }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_digests_are_distinct_and_deterministic() {
        let cfg = SimConfig::default();
        let a = sequential_prefix(&cfg);
        let b = sequential_prefix(&cfg);
        assert_eq!(a.prefix_digests, b.prefix_digests);
        assert_eq!(a.prefix_digests.len() as u64, cfg.num_batches + 1);
        // every batch must actually move the tables
        for w in a.prefix_digests.windows(2) {
            assert_ne!(w[0], w[1], "an applied batch left the tables untouched");
        }
    }

    #[test]
    fn sharded_prefixes_agree_with_the_global_oracle() {
        let cfg = ShardSimConfig::default();
        let sharded = sharded_prefix(&cfg);
        assert_eq!(sharded.per_shard.len(), cfg.shard.num_shards as usize);
        for (s, digests) in sharded.per_shard.iter().enumerate() {
            assert_eq!(digests.len() as u64, cfg.base.num_batches + 1, "shard {s}");
        }
        // the stitched final state equals the sequential final state:
        // rebuild the shard servers, replay, merge, and compare digests
        let tables = crate::sim::build_tables(&cfg.base);
        let layout = cfg.layout();
        let split = el_pipeline::split_tables(&tables, &layout).unwrap();
        // per-shard digests are deterministic
        let again = sharded_prefix(&cfg);
        for (a, b) in sharded.per_shard.iter().zip(&again.per_shard) {
            assert_eq!(a, b);
        }
        // index 0 is the untrained split
        for (s, sub) in split.iter().enumerate() {
            assert_eq!(sharded.per_shard[s][0], digest_tables(sub));
        }
    }

    #[test]
    fn oracle_depends_on_the_model_seed() {
        let a = sequential_prefix(&SimConfig::default());
        let b = sequential_prefix(&SimConfig { model_seed: 12, ..SimConfig::default() });
        assert_ne!(a.prefix_digests.last(), b.prefix_digests.last());
    }
}
