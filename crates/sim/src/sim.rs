//! The discrete-event pipeline simulation.
//!
//! One virtual host (the real [`HostServer`]), one virtual worker (the
//! real [`EmbeddingCache`] plus the real pooling/aggregation helpers from
//! `el_pipeline::server`), and three virtual links — prefetch delivery,
//! gradient delivery, acknowledgement — with seeded latency jitter. The
//! gradient link is *unreliable*: a [`FaultPlan`] may drop or duplicate
//! individual deliveries, so the worker runs an at-least-once protocol
//! (retransmit with exponential backoff until acknowledged) and the
//! server an idempotent intake ([`HostServer::apply_checked`]: duplicates
//! ignored, out-of-order pushes buffered until the gap fills).
//!
//! The worker's gradient is a deterministic *pseudo-loss* of the pooled
//! embeddings (`d = 0.05 · pooled + bias(seq, table)`). Because it
//! depends on the embedding values the worker trains on, any staleness
//! the embedding cache fails to correct changes the pushed gradients and
//! therefore the final tables — which is exactly what the
//! schedule-independence check in [`crate::invariants`] detects.
//!
//! No real threads, no wall-clock reads: every run is a pure function of
//! `(SimConfig, FaultPlan, schedule_seed)`, so any failing seed replays
//! bit-for-bit.

use crate::clock::{splitmix64, EventQueue};
use crate::fault::FaultPlan;
use crate::trace::{Trace, TraceEvent};
use el_data::{DatasetSpec, SyntheticDataset};
use el_dlrm::embedding_bag::EmbeddingBag;
use el_pipeline::cache::EmbeddingCache;
use el_pipeline::ckpt::CkptError;
use el_pipeline::server::{
    aggregate_to_unique, pool_prefetched, ApplyOutcome, GradientPush, HostServer, PrefetchedBatch,
};
use el_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Base latency of prefetch delivery (host → worker), in ticks.
const PREFETCH_LATENCY: u64 = 3;
/// Base latency of one training step's compute, in ticks.
const COMPUTE_LATENCY: u64 = 4;
/// Base latency of gradient-push delivery (worker → host), in ticks.
const PUSH_LATENCY: u64 = 3;
/// Base latency of acknowledgement delivery (host → worker), in ticks.
const ACK_LATENCY: u64 = 2;
/// Initial retransmission timeout; doubles per attempt.
const RETRY_TIMEOUT: u64 = 24;
/// Retransmissions before the worker gives a push up and halts.
const MAX_RETRIES: u32 = 8;
/// Exclusive upper bound of the per-message latency jitter.
const JITTER: u64 = 4;

/// Static configuration of one simulated run (everything except the
/// faults and the schedule seed).
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Seed of the model/data universe: synthetic dataset, initial table
    /// weights, pseudo-loss constants.
    pub model_seed: u64,
    /// Batches to train.
    pub num_batches: u64,
    /// Samples per batch.
    pub batch_size: usize,
    /// Pre-fetch queue capacity (the paper's queue length).
    pub prefetch_depth: usize,
    /// Gradient-intake buffer capacity; deliveries beyond it bounce.
    pub grad_capacity: usize,
    /// Maximum tolerated staleness: the host refuses to gather batch `k`
    /// until `k - applied <= staleness_bound`, so every `PrefetchedBatch`
    /// stamp satisfies `batch_seq - applied_through <= staleness_bound`.
    pub staleness_bound: u64,
    /// Hosted embedding tables.
    pub num_tables: usize,
    /// Rows per hosted table.
    pub rows_per_table: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// SGD learning rate (worker prediction and server application).
    pub lr: f32,
    /// Safety cap on processed events; exceeding it is an error outcome.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            model_seed: 11,
            num_batches: 24,
            batch_size: 16,
            prefetch_depth: 4,
            grad_capacity: 8,
            staleness_bound: 6,
            num_tables: 2,
            rows_per_table: 100,
            dim: 8,
            lr: 0.05,
            max_events: 100_000,
        }
    }
}

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every scheduled batch was gathered, trained, pushed and applied.
    Completed,
    /// The event queue drained with work outstanding — an actor died or
    /// gave up, and the rest of the pipeline wound down cleanly.
    Stalled,
    /// The event budget was exhausted (a livelock; always a bug).
    OutOfBudget,
    /// The whole process died — a [`crate::fault::Fault::Crash`] fired or
    /// a checkpoint save failed mid-protocol. Only what the checkpoint
    /// store made durable survives; [`crate::recovery`] drives the
    /// restart.
    Crashed,
}

/// Result of one simulated run.
#[derive(Debug)]
pub struct SimReport {
    /// Terminal state.
    pub outcome: Outcome,
    /// Gradient batches the server applied.
    pub applied: u64,
    /// Full protocol trace, in virtual-time order.
    pub trace: Trace,
    /// FNV-1a digest over the final table weights (byte-identity proxy).
    pub table_digest: u64,
    /// The final hosted tables.
    pub tables: Vec<(usize, EmbeddingBag)>,
    /// Stale pre-fetched rows the worker's cache corrected.
    pub stale_hits: u64,
    /// Virtual time at termination.
    pub final_tick: u64,
    /// Events processed.
    pub events_processed: u64,
}

/// The synthetic dataset a config describes (shared with the oracle).
pub(crate) fn build_dataset(cfg: &SimConfig) -> SyntheticDataset {
    let spec = DatasetSpec::toy(cfg.num_tables, cfg.rows_per_table, 1_000_000);
    SyntheticDataset::new(spec, cfg.model_seed)
}

/// The hosted tables a config describes (shared with the oracle).
pub(crate) fn build_tables(cfg: &SimConfig) -> Vec<(usize, EmbeddingBag)> {
    let mut rng = StdRng::seed_from_u64(cfg.model_seed ^ 0x7AB1_E5EE_D000_0001);
    (0..cfg.num_tables)
        .map(|t| (t, EmbeddingBag::new(cfg.rows_per_table, cfg.dim, 0.2, &mut rng)))
        .collect()
}

/// The deterministic pseudo-loss gradient for one pooled activation: an
/// affine function of the values, so wrong (stale) inputs produce wrong
/// pushes and surface in the schedule-independence check.
fn pseudo_loss_grad(pooled: &Matrix, seq: u64, table: usize, model_seed: u64) -> Matrix {
    let h = splitmix64(model_seed ^ seq.wrapping_mul(0x9E37_79B9).wrapping_add(table as u64));
    let bias = ((h % 1024) as f32 - 512.0) / 20_480.0;
    let data = pooled.as_slice().iter().map(|v| 0.05 * v + bias).collect();
    Matrix::from_vec(pooled.rows(), pooled.cols(), data)
}

/// One worker training step over a pre-fetched batch: cache sync, pool,
/// pseudo-loss gradient, per-unique-row aggregation, predicted-update
/// cache refresh — the exact stage-1/stage-3 sequence of
/// `el_pipeline::trainer`. Shared by the simulation and the sequential
/// oracle (which runs it with staleness zero).
pub(crate) fn worker_push(
    pf: &mut PrefetchedBatch,
    caches: &mut [(usize, EmbeddingCache)],
    lr: f32,
    model_seed: u64,
) -> GradientPush {
    let mut tables = Vec::with_capacity(pf.tables.len());
    for (t, unique, rows) in &mut pf.tables {
        let cache =
            &mut caches.iter_mut().find(|(id, _)| id == t).expect("cache per hosted table").1;
        cache.sync(unique, rows, pf.applied_through);
        let field = &pf.batch.fields[*t];
        let pooled = pool_prefetched(&field.indices, &field.offsets, unique, rows);
        let d_out = pseudo_loss_grad(&pooled, pf.batch_seq, *t, model_seed);
        let grad = aggregate_to_unique(&field.indices, &field.offsets, unique, &d_out);
        let mut updated = rows.clone();
        for slot in 0..unique.len() {
            let g = &grad.values[slot * grad.dim..(slot + 1) * grad.dim];
            for (w, gv) in updated.row_mut(slot).iter_mut().zip(g) {
                *w -= lr * gv;
            }
        }
        cache.insert(unique, &updated, pf.batch_seq);
        tables.push((*t, grad));
    }
    GradientPush { batch_seq: pf.batch_seq, tables, pooled: Vec::new() }
}

/// FNV-1a digest of table ids and weight bit patterns — the
/// byte-identity proxy the determinism checks compare.
pub fn digest_tables(tables: &[(usize, EmbeddingBag)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (t, bag) in tables {
        mix(*t as u64);
        for &v in bag.weight.as_slice() {
            mix(u64::from(v.to_bits()));
        }
    }
    h
}

/// Durable state a restarted session resumes from: the hosted tables and
/// the applied-batch watermark of the newest valid checkpoint (or the
/// initial tables and zero for a cold restart). The simulator uses
/// *absolute* batch sequence numbers, so resuming sets the gather, train
/// and apply cursors all to `applied`.
#[derive(Clone, Debug)]
pub struct ResumeState {
    /// Hosted tables as of the checkpoint.
    pub tables: Vec<(usize, EmbeddingBag)>,
    /// Gradient batches applied when the checkpoint was taken.
    pub applied: u64,
}

/// Where a running session saves checkpoints. The simulator calls
/// [`CkptSink::save`] synchronously from the server's apply path; an
/// error means the process died mid-save (the store's atomic protocol
/// decides what survived) and the run ends [`Outcome::Crashed`].
pub trait CkptSink {
    /// Persists `(applied, tables)` durably.
    fn save(&mut self, applied: u64, tables: &[(usize, EmbeddingBag)]) -> Result<(), CkptError>;
}

/// In-flight gradient push awaiting acknowledgement.
struct UnackedPush {
    push: GradientPush,
    /// Retransmission attempts fired so far.
    attempts: u32,
    /// Transmissions issued (1-based delivery counter for fault matching).
    deliveries: u32,
}

/// Events on the virtual timeline.
enum Ev {
    /// A pre-fetched batch reaches the worker.
    PrefetchArrive(Box<PrefetchedBatch>),
    /// A worker stall window ends.
    StallOver,
    /// The worker finishes computing a batch.
    ComputeDone(u64),
    /// A gradient-push delivery reaches the server.
    PushArrive(Box<GradientPush>),
    /// An acknowledgement reaches the worker.
    AckArrive(u64),
    /// The worker's retransmission timer for a push fires.
    RetryFire(u64),
}

/// The running simulation state.
struct Simulation<'a> {
    cfg: SimConfig,
    plan: FaultPlan,
    q: EventQueue<Ev>,
    rng: StdRng,
    dataset: SyntheticDataset,
    trace: Trace,
    // host
    server: HostServer,
    server_alive: bool,
    next_gather: u64,
    pending: BTreeMap<u64, GradientPush>,
    occupancy: usize,
    // worker
    worker_alive: bool,
    stalled: bool,
    stalls_done: BTreeSet<u64>,
    inbox: BTreeMap<u64, PrefetchedBatch>,
    next_train: u64,
    computing: Option<GradientPush>,
    caches: Vec<(usize, EmbeddingCache)>,
    unacked: BTreeMap<u64, UnackedPush>,
    // durability
    ckpt: Option<(&'a mut dyn CkptSink, u64)>,
    crashed: bool,
}

/// Runs one simulation to termination.
pub fn run(cfg: &SimConfig, plan: &FaultPlan, schedule_seed: u64) -> SimReport {
    run_session(cfg, plan, schedule_seed, None, None)
}

/// Runs one *session*: [`run`] plus durability. `resume` continues from a
/// recovered checkpoint instead of the initial tables; `ckpt` saves a
/// checkpoint through the sink every `every` applied batches (a failed
/// save kills the process). Either may be `None`; `run` is the
/// `(None, None)` special case.
pub fn run_session(
    cfg: &SimConfig,
    plan: &FaultPlan,
    schedule_seed: u64,
    resume: Option<ResumeState>,
    ckpt: Option<(&mut dyn CkptSink, u64)>,
) -> SimReport {
    let mut server = HostServer::new(build_tables(cfg), cfg.lr);
    let mut start = 0u64;
    let mut trace = Trace::default();
    if let Some(rs) = resume {
        start = rs.applied;
        server = HostServer::new(rs.tables, cfg.lr);
        server.applied = rs.applied;
        trace.push(TraceEvent::Resumed { applied: rs.applied });
    }
    let sim = Simulation {
        cfg: *cfg,
        plan: plan.clone(),
        q: EventQueue::new(),
        rng: StdRng::seed_from_u64(cfg.model_seed ^ splitmix64(schedule_seed)),
        dataset: build_dataset(cfg),
        trace,
        server,
        server_alive: true,
        next_gather: start,
        pending: BTreeMap::new(),
        occupancy: 0,
        worker_alive: true,
        stalled: false,
        stalls_done: BTreeSet::new(),
        inbox: BTreeMap::new(),
        next_train: start,
        computing: None,
        caches: (0..cfg.num_tables).map(|t| (t, EmbeddingCache::new())).collect(),
        unacked: BTreeMap::new(),
        ckpt,
        crashed: false,
    };
    sim.drive()
}

impl Simulation<'_> {
    fn jitter(&mut self) -> u64 {
        self.rng.gen_range(0..JITTER)
    }

    fn drive(mut self) -> SimReport {
        let mut events = 0u64;
        let mut out_of_budget = false;
        self.step();
        while let Some(ev) = self.q.pop() {
            events += 1;
            if events > self.cfg.max_events {
                out_of_budget = true;
                break;
            }
            self.handle(ev);
            self.step();
        }
        let outcome = if out_of_budget {
            Outcome::OutOfBudget
        } else if self.crashed {
            Outcome::Crashed
        } else if self.server.applied == self.cfg.num_batches {
            Outcome::Completed
        } else {
            Outcome::Stalled
        };
        let stale_hits = self.caches.iter().map(|(_, c)| c.stale_hits).sum();
        SimReport {
            outcome,
            applied: self.server.applied,
            table_digest: digest_tables(&self.server.tables),
            tables: std::mem::take(&mut self.server.tables),
            stale_hits,
            final_tick: self.q.now(),
            events_processed: events,
            trace: self.trace,
        }
    }

    /// Runs every immediately-enabled action: server applies, server
    /// gathers, worker starts compute. Called after each event so no
    /// wake-up can be missed — enabling conditions only change when some
    /// event fires.
    fn step(&mut self) {
        self.drain_pending();
        self.host_gather();
        self.worker_start();
    }

    /// Kills both actors at once: the process is gone. Only checkpointed
    /// (durable) state survives into a [`crate::recovery`] restart.
    fn crash_now(&mut self) {
        self.crashed = true;
        self.server_alive = false;
        self.worker_alive = false;
        self.trace.push(TraceEvent::CrashInjected { applied: self.server.applied });
        self.pending.clear();
        self.inbox.clear();
        self.computing = None;
        self.unacked.clear();
    }

    /// Applies buffered pushes in order until a gap (or server death).
    fn drain_pending(&mut self) {
        while self.server_alive {
            if let Some(crash) = self.plan.crash_after() {
                if self.server.applied >= crash && !self.crashed {
                    self.crash_now();
                    return;
                }
            }
            if let Some(death) = self.plan.server_death_after() {
                if self.server.applied >= death {
                    self.server_alive = false;
                    self.trace.push(TraceEvent::ServerDied { applied: self.server.applied });
                    self.pending.clear();
                    return;
                }
            }
            let next = self.server.applied;
            let Some(push) = self.pending.remove(&next) else { return };
            match self.server.apply_checked(&push) {
                Ok(ApplyOutcome::Applied) => {
                    self.trace.push(TraceEvent::Applied { seq: next });
                    self.schedule_ack(next);
                }
                other => unreachable!("in-order drain of seq {next} must apply, got {other:?}"),
            }
            self.maybe_checkpoint();
        }
    }

    /// Saves a checkpoint when the apply watermark hits the cadence. A
    /// sink error is a process death mid-save: whatever the store's
    /// atomic protocol made durable before the failing step is all a
    /// restart will find.
    fn maybe_checkpoint(&mut self) {
        let applied = self.server.applied;
        let Some((sink, every)) = self.ckpt.as_mut() else { return };
        if !applied.is_multiple_of(*every) {
            return;
        }
        match sink.save(applied, &self.server.tables) {
            Ok(()) => self.trace.push(TraceEvent::CheckpointSaved { applied }),
            Err(_) => {
                self.trace.push(TraceEvent::CheckpointFailed { applied });
                self.crash_now();
            }
        }
    }

    /// Gathers while the pre-fetch queue has room and the staleness gate
    /// allows: batch `k` may only be gathered once `k - applied` is
    /// within the configured bound, which is what makes the bound a
    /// protocol *guarantee* rather than an accident of queue sizing.
    fn host_gather(&mut self) {
        while self.server_alive
            && self.next_gather < self.cfg.num_batches
            && self.occupancy < self.cfg.prefetch_depth
            && self.next_gather - self.server.applied <= self.cfg.staleness_bound
        {
            let k = self.next_gather;
            let batch = self.dataset.batch(k, self.cfg.batch_size);
            let pf = self.server.gather(batch, k);
            self.trace.push(TraceEvent::Gathered { seq: k, applied_through: pf.applied_through });
            let delay = PREFETCH_LATENCY + self.jitter() + self.plan.prefetch_delay(k);
            self.q.schedule(delay, Ev::PrefetchArrive(Box::new(pf)));
            self.occupancy += 1;
            self.next_gather += 1;
        }
    }

    /// Starts computing the next in-order batch if the worker is idle.
    /// The prefetch link preserves FIFO order toward the worker: batches
    /// are consumed strictly by sequence number even when jitter delivers
    /// them out of order.
    fn worker_start(&mut self) {
        if !self.worker_alive || self.stalled || self.computing.is_some() {
            return;
        }
        let Some(mut pf) = self.inbox.remove(&self.next_train) else { return };
        let seq = pf.batch_seq;
        if self.plan.kills_worker_at(seq) {
            self.worker_alive = false;
            self.trace.push(TraceEvent::WorkerDied { at_batch: seq });
            self.inbox.clear();
            return;
        }
        if !self.stalls_done.contains(&seq) {
            if let Some(ticks) = self.plan.stall_before(seq) {
                self.stalls_done.insert(seq);
                self.stalled = true;
                self.inbox.insert(seq, pf); // resume from here after the stall
                self.q.schedule(ticks, Ev::StallOver);
                return;
            }
        }
        self.occupancy -= 1;
        self.trace.push(TraceEvent::PrefetchSynced { seq, applied_through: pf.applied_through });
        let push = worker_push(&mut pf, &mut self.caches, self.cfg.lr, self.cfg.model_seed);
        self.computing = Some(push);
        self.next_train += 1;
        let delay = COMPUTE_LATENCY + self.jitter();
        self.q.schedule(delay, Ev::ComputeDone(seq));
    }

    /// Issues one transmission of the push for `seq` (subject to the
    /// plan's drop/duplicate faults) and arms the retransmission timer.
    fn transmit(&mut self, seq: u64) {
        let Some(ent) = self.unacked.get_mut(&seq) else { return };
        ent.deliveries += 1;
        let delivery = ent.deliveries;
        let attempts = ent.attempts;
        let push = ent.push.clone();
        self.trace.push(TraceEvent::PushSent { seq, delivery });
        if !self.plan.drops(seq, delivery) {
            let d = PUSH_LATENCY + self.jitter();
            self.q.schedule(d, Ev::PushArrive(Box::new(push.clone())));
        }
        if self.plan.duplicates(seq, delivery) {
            let d = PUSH_LATENCY + 1 + self.jitter();
            self.q.schedule(d, Ev::PushArrive(Box::new(push)));
        }
        let timeout = RETRY_TIMEOUT << attempts.min(8);
        self.q.schedule(timeout, Ev::RetryFire(seq));
    }

    fn schedule_ack(&mut self, seq: u64) {
        let d = ACK_LATENCY + self.jitter();
        self.q.schedule(d, Ev::AckArrive(seq));
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::PrefetchArrive(pf) => {
                if self.worker_alive {
                    self.inbox.insert(pf.batch_seq, *pf);
                }
            }
            Ev::StallOver => {
                self.stalled = false;
            }
            Ev::ComputeDone(seq) => {
                if !self.worker_alive {
                    // a crash killed the worker mid-compute
                    return;
                }
                let push = self.computing.take().expect("ComputeDone without compute");
                debug_assert_eq!(push.batch_seq, seq);
                self.unacked.insert(seq, UnackedPush { push, attempts: 0, deliveries: 0 });
                self.transmit(seq);
            }
            Ev::PushArrive(push) => {
                if !self.server_alive {
                    return;
                }
                let seq = push.batch_seq;
                self.trace.push(TraceEvent::PushDelivered { seq });
                let duplicate = seq < self.server.applied || self.pending.contains_key(&seq);
                if duplicate {
                    self.trace.push(TraceEvent::DuplicateIgnored { seq });
                    if seq < self.server.applied {
                        // already applied: re-acknowledge so the worker
                        // stops retransmitting (exactly-once is preserved
                        // because application, not delivery, is deduped)
                        self.schedule_ack(seq);
                    }
                    return;
                }
                if self.plan.saturated_at(self.q.now())
                    || self.pending.len() >= self.cfg.grad_capacity
                {
                    self.trace.push(TraceEvent::PushBounced { seq });
                    return;
                }
                self.pending.insert(seq, *push);
            }
            Ev::AckArrive(seq) => {
                if self.worker_alive && self.unacked.remove(&seq).is_some() {
                    self.trace.push(TraceEvent::Acked { seq });
                }
            }
            Ev::RetryFire(seq) => {
                if !self.worker_alive || !self.unacked.contains_key(&seq) {
                    return;
                }
                let ent = self.unacked.get_mut(&seq).expect("checked above");
                ent.attempts += 1;
                if ent.attempts > MAX_RETRIES {
                    // retry budget exhausted (the server is gone or the
                    // queue stayed saturated): degrade, don't livelock
                    self.unacked.remove(&seq);
                    self.trace.push(TraceEvent::GaveUp { seq });
                    self.worker_alive = false;
                } else {
                    self.transmit(seq);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;

    #[test]
    fn fault_free_run_completes() {
        let cfg = SimConfig::default();
        let r = run(&cfg, &FaultPlan::none(), 1);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.applied, cfg.num_batches);
        assert_eq!(r.trace.count(|e| matches!(e, TraceEvent::Applied { .. })), 24);
        assert!(!r.trace.any(|e| matches!(e, TraceEvent::PushBounced { .. })));
        assert!(r.stale_hits > 0, "pipelining must actually create staleness to correct");
    }

    #[test]
    fn replay_is_bit_identical() {
        let cfg = SimConfig::default();
        for seed in [0u64, 7, 42] {
            let plan = FaultPlan::from_seed(seed, cfg.num_batches);
            let a = run(&cfg, &plan, seed);
            let b = run(&cfg, &plan, seed);
            assert_eq!(a.trace, b.trace, "trace diverged for seed {seed}");
            assert_eq!(a.table_digest, b.table_digest, "tables diverged for seed {seed}");
            assert_eq!(a.final_tick, b.final_tick);
        }
    }

    #[test]
    fn worker_death_stalls_the_run_cleanly() {
        let cfg = SimConfig::default();
        let plan = FaultPlan::with(vec![Fault::WorkerDeath { at_batch: 5 }]);
        let r = run(&cfg, &plan, 3);
        assert_eq!(r.outcome, Outcome::Stalled);
        assert_eq!(r.applied, 5, "batches 0..5 trained and applied, nothing after");
        assert!(r.trace.any(|e| matches!(e, TraceEvent::WorkerDied { at_batch: 5 })));
    }

    #[test]
    fn saturation_bounces_then_recovers() {
        let cfg = SimConfig::default();
        let plan = FaultPlan::with(vec![Fault::GradQueueSaturation { start: 10, ticks: 40 }]);
        let r = run(&cfg, &plan, 9);
        assert_eq!(r.outcome, Outcome::Completed, "retries must ride out the window");
        assert!(r.trace.any(|e| matches!(e, TraceEvent::PushBounced { .. })));
    }

    #[test]
    fn dropped_and_duplicated_pushes_are_absorbed() {
        let cfg = SimConfig::default();
        let plan = FaultPlan::with(vec![
            Fault::DropPush { seq: 2, delivery: 1 },
            Fault::DuplicatePush { seq: 3, delivery: 1 },
        ]);
        let r = run(&cfg, &plan, 4);
        assert_eq!(r.outcome, Outcome::Completed);
        // the drop forced a retransmission of push 2
        assert!(r.trace.count(|e| matches!(e, TraceEvent::PushSent { seq: 2, .. })) >= 2);
        // the duplicate of push 3 was delivered twice but applied once
        assert_eq!(r.trace.count(|e| matches!(e, TraceEvent::Applied { seq: 3 })), 1);
    }

    #[test]
    fn staleness_gate_holds_on_every_stamp() {
        let cfg = SimConfig { staleness_bound: 2, ..SimConfig::default() };
        let r = run(&cfg, &FaultPlan::none(), 5);
        assert_eq!(r.outcome, Outcome::Completed);
        for e in &r.trace.events {
            if let TraceEvent::Gathered { seq, applied_through } = e {
                assert!(seq - applied_through <= 2, "stamp violates bound: {e:?}");
            }
        }
    }

    #[test]
    fn digest_distinguishes_different_tables() {
        let cfg = SimConfig::default();
        let a = run(&cfg, &FaultPlan::none(), 1);
        let shorter = SimConfig { num_batches: 12, ..cfg };
        let b = run(&shorter, &FaultPlan::none(), 1);
        assert_ne!(a.table_digest, b.table_digest);
    }
}
