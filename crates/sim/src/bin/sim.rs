//! CLI driver for the pipeline simulator (`cargo xtask sim`).
//!
//! Four modes:
//!
//! * `sim --seed N` — replay one seed with full diagnostics: the derived
//!   fault plan, the outcome, and every invariant verdict. This is the
//!   reproduction path DESIGN.md §10 documents for failing sweep seeds.
//! * `sim --sweep COUNT [--start S]` — sweep seeds `S .. S+COUNT`
//!   (CI runs this). On a violation the failure record — seed, plan,
//!   violation, reproduction command — is printed and written to
//!   `target/sim/failure-seed-N.txt` for artifact upload, and the
//!   process exits non-zero.
//! * `sim --crash-seed N` — replay one crash-recovery scenario: crash the
//!   process (plus seeded storage faults: mid-protocol deaths, torn
//!   writes, at-rest rot), recover from the surviving checkpoints, resume,
//!   and verify the final tables against the sequential oracle.
//! * `sim --crash-sweep COUNT [--start S]` — sweep crash-recovery seeds;
//!   failures land in `target/sim/crash-failure-seed-N.txt`.
//! * `sim --shard-seed N [--shards K]` — replay one multi-shard seed:
//!   per-shard fault injection, stitched staleness stamps, per-shard and
//!   merged oracle byte-identity.
//! * `sim --shard-sweep COUNT [--shards K] [--start S]` — sweep
//!   multi-shard seeds; failures land in
//!   `target/sim/shard-failure-seed-N.txt`.
//! * `sim --reshard-seed N` — replay one elastic-reshard scenario: drain
//!   through the checkpoint store under storage faults, migrate to a new
//!   seed-derived layout, resume, verify against the never-resharded
//!   oracle.
//! * `sim --reshard-sweep COUNT [--start S]` — sweep reshard-under-crash
//!   seeds; failures land in `target/sim/reshard-failure-seed-N.txt`.
//! * `sim --failover-seed N [--replicas K]` — replay one replicated seed:
//!   kill-the-primary schedules, heartbeat suspicion, promotion, catch-up
//!   rejoins, and byte-identity of every surviving member.
//! * `sim --failover-sweep COUNT [--replicas K] [--start S]` — sweep
//!   kill-the-primary seeds (each MUST complete without a cold restart);
//!   failures land in `target/sim/failover-failure-seed-N.txt`.
//! * `sim --netfault-seed N` / `sim --netfault-sweep COUNT` — the same
//!   verdict over heartbeat-loss and partition windows (false suspicion,
//!   fencing, retransmission ride-out); failures land in
//!   `target/sim/netfault-failure-seed-N.txt`.

use el_sim::{
    check_failover_run, check_recovery, check_run, check_shard_run, crash_plans_for_seed,
    reshard_plans_for_seed, run_crash_sweep, run_failover_sweep, run_netfault_sweep,
    run_reshard_sweep, run_shard_sweep, run_sweep, sequential_prefix, sharded_prefix,
    FailoverSimConfig, FaultPlan, Outcome, RecoveryConfig, ShardSimConfig, SimConfig, TraceEvent,
};
use std::process::ExitCode;

/// Parsed command-line request.
struct Args {
    /// Replay exactly this seed (wins over sweep mode).
    seed: Option<u64>,
    /// Replay exactly this crash-recovery seed.
    crash_seed: Option<u64>,
    /// Sweep this many seeds.
    sweep: u64,
    /// Sweep this many crash-recovery seeds instead of plain seeds.
    crash_sweep: Option<u64>,
    /// Replay exactly this multi-shard seed.
    shard_seed: Option<u64>,
    /// Sweep this many multi-shard seeds.
    shard_sweep: Option<u64>,
    /// Shard count for the multi-shard modes.
    shards: u32,
    /// Replay exactly this elastic-reshard seed.
    reshard_seed: Option<u64>,
    /// Sweep this many reshard-under-crash seeds.
    reshard_sweep: Option<u64>,
    /// Replay exactly this replicated kill-the-primary seed.
    failover_seed: Option<u64>,
    /// Sweep this many kill-the-primary seeds.
    failover_sweep: Option<u64>,
    /// Replay exactly this network-fault (heartbeat-loss/partition) seed.
    netfault_seed: Option<u64>,
    /// Sweep this many network-fault seeds.
    netfault_sweep: Option<u64>,
    /// Replicas per shard group for the failover modes.
    replicas: u32,
    /// First sweep seed.
    start: u64,
    /// Batches per run.
    batches: u64,
    /// Staleness bound override.
    bound: Option<u64>,
    /// Checkpoint cadence for crash-recovery modes.
    every: u64,
    /// Checkpoints retained for crash-recovery modes.
    retain: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: None,
        crash_seed: None,
        sweep: 100,
        crash_sweep: None,
        shard_seed: None,
        shard_sweep: None,
        shards: 3,
        reshard_seed: None,
        reshard_sweep: None,
        failover_seed: None,
        failover_sweep: None,
        netfault_seed: None,
        netfault_sweep: None,
        replicas: 3,
        start: 0,
        batches: 24,
        bound: None,
        every: 4,
        retain: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = Some(grab("--seed")?),
            "--crash-seed" => args.crash_seed = Some(grab("--crash-seed")?),
            "--sweep" => args.sweep = grab("--sweep")?,
            "--crash-sweep" => args.crash_sweep = Some(grab("--crash-sweep")?),
            "--shard-seed" => args.shard_seed = Some(grab("--shard-seed")?),
            "--shard-sweep" => args.shard_sweep = Some(grab("--shard-sweep")?),
            "--shards" => args.shards = grab("--shards")?.clamp(1, 64) as u32,
            "--reshard-seed" => args.reshard_seed = Some(grab("--reshard-seed")?),
            "--reshard-sweep" => args.reshard_sweep = Some(grab("--reshard-sweep")?),
            "--failover-seed" => args.failover_seed = Some(grab("--failover-seed")?),
            "--failover-sweep" => args.failover_sweep = Some(grab("--failover-sweep")?),
            "--netfault-seed" => args.netfault_seed = Some(grab("--netfault-seed")?),
            "--netfault-sweep" => args.netfault_sweep = Some(grab("--netfault-sweep")?),
            "--replicas" => args.replicas = grab("--replicas")?.clamp(1, 16) as u32,
            "--start" => args.start = grab("--start")?,
            "--batches" => args.batches = grab("--batches")?,
            "--bound" => args.bound = Some(grab("--bound")?),
            "--every" => args.every = grab("--every")?.max(1),
            "--retain" => args.retain = grab("--retain")?.max(1) as usize,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

const USAGE: &str = "usage: sim [--seed N | --sweep COUNT | --crash-seed N | --crash-sweep COUNT
            | --shard-seed N | --shard-sweep COUNT | --reshard-seed N | --reshard-sweep COUNT
            | --failover-seed N | --failover-sweep COUNT | --netfault-seed N | --netfault-sweep COUNT]
           [--start S] [--batches N] [--bound B] [--every K] [--retain R] [--shards K] [--replicas K]
  --seed N          replay one seed with full diagnostics
  --sweep COUNT     invariant-check COUNT seeds (default mode, COUNT=100)
  --crash-seed N    replay one crash-recovery scenario with full diagnostics
  --crash-sweep COUNT  invariant-check COUNT crash-recovery seeds
  --shard-seed N    replay one multi-shard seed with full diagnostics
  --shard-sweep COUNT  invariant-check COUNT multi-shard seeds
  --shards K        shard count for the multi-shard and failover modes (default 3)
  --reshard-seed N  replay one elastic-reshard scenario with full diagnostics
  --reshard-sweep COUNT  invariant-check COUNT reshard-under-crash seeds
  --failover-seed N replay one replicated kill-the-primary seed with full diagnostics
  --failover-sweep COUNT  invariant-check COUNT kill-the-primary seeds (completion required)
  --netfault-seed N replay one heartbeat-loss/partition seed with full diagnostics
  --netfault-sweep COUNT  invariant-check COUNT network-fault seeds (completion required)
  --replicas K      members per replica group for the failover modes (default 3)
  --start S         first seed of the sweep (default 0)
  --batches N       batches per simulated run (default 24)
  --bound B         staleness bound override (default 6)
  --every K         checkpoint cadence in applied batches (crash modes, default 4)
  --retain R        checkpoints retained by the store (crash modes, default 2)";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = SimConfig { num_batches: args.batches, ..SimConfig::default() };
    if let Some(b) = args.bound {
        cfg.staleness_bound = b;
    }
    let rc = RecoveryConfig { sim: cfg, ckpt_every: args.every, retain: args.retain };

    if let Some(seed) = args.seed {
        return replay_one(&cfg, seed);
    }
    if let Some(seed) = args.crash_seed {
        return replay_crash(&rc, seed);
    }
    if let Some(count) = args.crash_sweep {
        return crash_sweep(&rc, args.start, count);
    }
    let scfg = ShardSimConfig {
        base: cfg,
        shard: el_pipeline::ShardConfig {
            num_shards: args.shards,
            ..ShardSimConfig::default().shard
        },
    };
    if let Some(seed) = args.shard_seed {
        return replay_shard(&scfg, seed);
    }
    if let Some(count) = args.shard_sweep {
        return shard_sweep(&scfg, args.start, count);
    }
    if let Some(seed) = args.reshard_seed {
        return replay_reshard(&cfg, seed);
    }
    if let Some(count) = args.reshard_sweep {
        return reshard_sweep(&cfg, args.start, count);
    }
    let fcfg = FailoverSimConfig {
        base: cfg,
        shard: scfg.shard,
        replicas: args.replicas,
        ..FailoverSimConfig::default()
    };
    if let Some(seed) = args.failover_seed {
        return replay_failover(&fcfg, seed, false);
    }
    if let Some(count) = args.failover_sweep {
        return failover_sweep(&fcfg, args.start, count, false);
    }
    if let Some(seed) = args.netfault_seed {
        return replay_failover(&fcfg, seed, true);
    }
    if let Some(count) = args.netfault_sweep {
        return failover_sweep(&fcfg, args.start, count, true);
    }

    println!(
        "sweeping {} seeds from {} ({} batches, staleness bound {})",
        args.sweep, args.start, cfg.num_batches, cfg.staleness_bound
    );
    match run_sweep(&cfg, args.start, args.sweep) {
        Ok(s) => {
            println!(
                "clean: {} seeds ({} completed, {} stalled by fatal faults), \
                 {} faults injected, {} stale rows corrected",
                s.seeds, s.completed, s.stalled, s.faults_injected, s.stale_hits
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("INVARIANT VIOLATION\n{failure}");
            write_failure_record(
                &format!("target/sim/failure-seed-{}.txt", failure.seed),
                &failure.to_string(),
            );
            ExitCode::FAILURE
        }
    }
}

/// Writes a failure record for CI artifact upload (best effort).
fn write_failure_record(path: &str, contents: &str) {
    if std::fs::create_dir_all("target/sim")
        .and_then(|()| std::fs::write(path, format!("{contents}\n")))
        .is_ok()
    {
        eprintln!("failure record written to {path}");
    }
}

fn outcome_name(outcome: Outcome) -> &'static str {
    match outcome {
        Outcome::Completed => "completed",
        Outcome::Stalled => "stalled (fatal fault)",
        Outcome::OutOfBudget => "out of event budget",
        Outcome::Crashed => "crashed (process death)",
    }
}

/// Replays one seed and prints everything a debugging session needs.
fn replay_one(cfg: &SimConfig, seed: u64) -> ExitCode {
    let plan = FaultPlan::from_seed(seed, cfg.num_batches);
    println!("seed {seed} — fault plan:\n{plan}");
    let oracle = sequential_prefix(cfg);
    match check_run(cfg, &plan, seed, &oracle) {
        Ok(report) => {
            println!(
                "{}: applied {}/{} batches in {} virtual ticks ({} events)",
                outcome_name(report.outcome),
                report.applied,
                cfg.num_batches,
                report.final_tick,
                report.events_processed
            );
            println!(
                "tables digest {:#018x} — matches sequential oracle at prefix {}",
                report.table_digest, report.applied
            );
            println!("{} stale prefetched rows corrected by the worker cache", report.stale_hits);
            println!("all invariants hold (exactly-once, staleness bound, replay, oracle)");
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("INVARIANT VIOLATION: {v}");
            ExitCode::FAILURE
        }
    }
}

/// Replays one crash-recovery scenario with full diagnostics.
fn replay_crash(rc: &RecoveryConfig, seed: u64) -> ExitCode {
    let (plan, storage_plan) = crash_plans_for_seed(seed, rc.sim.num_batches);
    println!("crash seed {seed} — fault plan:\n{plan}");
    println!("storage-fault plan:\n{storage_plan}");
    let oracle = sequential_prefix(&rc.sim);
    match check_recovery(rc, &plan, &storage_plan, seed, &oracle) {
        Ok(report) => {
            let saved =
                report.phase1.trace.count(|e| matches!(e, TraceEvent::CheckpointSaved { .. }));
            println!(
                "phase 1 {}: applied {}/{} batches, {} checkpoints saved",
                outcome_name(report.phase1.outcome),
                report.phase1.applied,
                rc.sim.num_batches,
                saved
            );
            match (&report.phase2, &report.restored_from) {
                (None, _) => println!("no recovery needed"),
                (Some(p2), Some(name)) => println!(
                    "recovered from {name} (applied={}), phase 2 {}: applied {}/{}",
                    report.resumed_applied,
                    outcome_name(p2.outcome),
                    p2.applied,
                    rc.sim.num_batches
                ),
                (Some(p2), None) => println!(
                    "no valid checkpoint survived — cold restart, phase 2 {}: applied {}/{}",
                    outcome_name(p2.outcome),
                    p2.applied,
                    rc.sim.num_batches
                ),
            }
            println!(
                "final tables digest {:#018x} — byte-identical to the sequential oracle",
                report.final_digest
            );
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("INVARIANT VIOLATION: {v}");
            ExitCode::FAILURE
        }
    }
}

/// Replays one multi-shard seed with full diagnostics.
fn replay_shard(scfg: &ShardSimConfig, seed: u64) -> ExitCode {
    let plan = FaultPlan::from_seed_sharded(seed, scfg.base.num_batches, scfg.shard.num_shards);
    println!("shard seed {seed} ({} shards) — fault plan:\n{plan}", scfg.shard.num_shards);
    let shard_oracle = sharded_prefix(scfg);
    let global_oracle = sequential_prefix(&scfg.base);
    match check_shard_run(scfg, &plan, seed, &shard_oracle, &global_oracle) {
        Ok(report) => {
            println!(
                "{}: applied {:?} of {} batches in {} virtual ticks ({} events)",
                outcome_name(report.outcome),
                report.applied,
                scfg.base.num_batches,
                report.final_tick,
                report.events_processed
            );
            println!(
                "merged digest {:#018x} — every shard byte-identical to its oracle prefix",
                report.merged_digest
            );
            println!("{} stale prefetched rows corrected by the worker cache", report.stale_hits);
            println!("all invariants hold (per-shard exactly-once, stitched staleness, replay)");
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("INVARIANT VIOLATION: {v}");
            ExitCode::FAILURE
        }
    }
}

/// Sweeps multi-shard seeds (CI's multi-shard fault matrix).
fn shard_sweep(scfg: &ShardSimConfig, start: u64, count: u64) -> ExitCode {
    println!(
        "shard-sweeping {} seeds from {} ({} shards, {} batches, staleness bound {})",
        count, start, scfg.shard.num_shards, scfg.base.num_batches, scfg.base.staleness_bound
    );
    match run_shard_sweep(scfg, start, count) {
        Ok(s) => {
            println!(
                "clean: {} seeds ({} completed, {} stalled by fatal faults), \
                 {} faults injected, {} shard deaths fired, {} stale rows corrected",
                s.seeds, s.completed, s.stalled, s.faults_injected, s.shard_deaths, s.stale_hits
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("INVARIANT VIOLATION\n{failure}");
            write_failure_record(
                &format!("target/sim/shard-failure-seed-{}.txt", failure.seed),
                &failure.to_string(),
            );
            ExitCode::FAILURE
        }
    }
}

/// Replays one replicated seed (kill-the-primary or network-fault
/// domain) with full diagnostics.
fn replay_failover(fcfg: &FailoverSimConfig, seed: u64, netfault: bool) -> ExitCode {
    let plan = if netfault {
        FaultPlan::from_seed_netfault(seed, fcfg.base.num_batches, fcfg.shard.num_shards)
    } else {
        FaultPlan::from_seed_failover(
            seed,
            fcfg.base.num_batches,
            fcfg.shard.num_shards,
            fcfg.replicas,
        )
    };
    let mode = if netfault { "netfault" } else { "failover" };
    println!(
        "{mode} seed {seed} ({} shards x {} replicas) — fault plan:\n{plan}",
        fcfg.shard.num_shards, fcfg.replicas
    );
    let shard_oracle = sharded_prefix(&ShardSimConfig { base: fcfg.base, shard: fcfg.shard });
    let global_oracle = sequential_prefix(&fcfg.base);
    match check_failover_run(fcfg, &plan, seed, &shard_oracle, &global_oracle) {
        Ok(report) => {
            println!(
                "{}: group watermarks {:?} of {} batches in {} virtual ticks ({} events)",
                outcome_name(report.outcome),
                report.applied,
                fcfg.base.num_batches,
                report.final_tick,
                report.events_processed
            );
            let killed = report.trace.count(|e| {
                matches!(e, TraceEvent::PrimaryDied { .. } | TraceEvent::BackupDied { .. })
            });
            let rejoins = report.trace.count(|e| matches!(e, TraceEvent::CatchupInstalled { .. }));
            println!(
                "{} members killed, {:?} promotions, {} catch-up rejoins",
                killed, report.promotions, rejoins
            );
            println!(
                "merged digest {:#018x} — every surviving member byte-identical to its \
                 oracle prefix",
                report.merged_digest
            );
            println!(
                "all invariants hold (per-member exactly-once, stitched staleness, \
                 completion, replay, oracle)"
            );
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("INVARIANT VIOLATION: {v}");
            ExitCode::FAILURE
        }
    }
}

/// Sweeps replicated seeds (CI's failover matrix). Every seed must
/// complete — a kill schedule that stalls training is a violation.
fn failover_sweep(fcfg: &FailoverSimConfig, start: u64, count: u64, netfault: bool) -> ExitCode {
    let mode = if netfault { "netfault" } else { "failover" };
    println!(
        "{mode}-sweeping {} seeds from {} ({} shards x {} replicas, {} batches)",
        count, start, fcfg.shard.num_shards, fcfg.replicas, fcfg.base.num_batches
    );
    let outcome = if netfault {
        run_netfault_sweep(fcfg, start, count)
    } else {
        run_failover_sweep(fcfg, start, count)
    };
    match outcome {
        Ok(s) => {
            println!(
                "clean: {} seeds ({} completed — completion is mandatory), {} faults injected, \
                 {} primaries + {} backups killed, {} promotions, {} catch-up rejoins, \
                 {} stale rows corrected",
                s.seeds,
                s.completed,
                s.faults_injected,
                s.primaries_killed,
                s.backups_killed,
                s.promotions,
                s.rejoins,
                s.stale_hits
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("INVARIANT VIOLATION\n{failure}");
            write_failure_record(
                &format!("target/sim/{mode}-failure-seed-{}.txt", failure.seed),
                &failure.to_string(),
            );
            ExitCode::FAILURE
        }
    }
}

/// Replays one elastic-reshard scenario with full diagnostics.
fn replay_reshard(cfg: &SimConfig, seed: u64) -> ExitCode {
    let (rc, plan, storage_plan) = reshard_plans_for_seed(seed, cfg);
    println!(
        "reshard seed {seed}: {} -> {} shards at batch {} of {}",
        rc.from.num_shards, rc.to.num_shards, rc.reshard_at, rc.base.num_batches
    );
    println!("live fault plan:\n{plan}");
    println!("storage-fault plan:\n{storage_plan}");
    let oracle = sequential_prefix(cfg);
    match el_sim::check_reshard(&rc, &plan, &storage_plan, seed, &oracle) {
        Ok(report) => {
            println!(
                "phase 1 {}: applied {:?} of {} batches{}",
                outcome_name(report.phase_a.outcome),
                report.phase_a.applied,
                rc.reshard_at,
                if report.drain_crashed { "; drain died mid-protocol" } else { "" }
            );
            println!(
                "recovered from {} (applied={}), phase 2 {}: applied {:?} of {}",
                report.recovered_from,
                report.resumed_applied,
                outcome_name(report.phase_b.outcome),
                report.phase_b.applied,
                rc.base.num_batches
            );
            println!(
                "final merged digest {:#018x} — byte-identical to the never-resharded oracle",
                report.final_digest
            );
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("INVARIANT VIOLATION: {v}");
            ExitCode::FAILURE
        }
    }
}

/// Sweeps reshard-under-crash seeds (CI's elasticity matrix).
fn reshard_sweep(cfg: &SimConfig, start: u64, count: u64) -> ExitCode {
    println!(
        "reshard-sweeping {} seeds from {} ({} batches, staleness bound {})",
        count, start, cfg.num_batches, cfg.staleness_bound
    );
    match run_reshard_sweep(cfg, start, count) {
        Ok(s) => {
            println!(
                "clean: {} seeds ({} grew, {} shrank; {} drain crashes), recovered via \
                 {} drain sets / {} pre-drain fallbacks / {} cold restarts, \
                 {} storage faults injected",
                s.seeds,
                s.grew,
                s.shrank,
                s.drain_crashes,
                s.drained,
                s.fell_back,
                s.cold_restarts,
                s.storage_faults
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("INVARIANT VIOLATION\n{failure}");
            write_failure_record(
                &format!("target/sim/reshard-failure-seed-{}.txt", failure.seed),
                &failure.to_string(),
            );
            ExitCode::FAILURE
        }
    }
}

/// Sweeps crash-recovery seeds (CI's crash/torn-write matrix).
fn crash_sweep(rc: &RecoveryConfig, start: u64, count: u64) -> ExitCode {
    println!(
        "crash-sweeping {} seeds from {} ({} batches, checkpoint every {}, retain {})",
        count, start, rc.sim.num_batches, rc.ckpt_every, rc.retain
    );
    match run_crash_sweep(rc, start, count) {
        Ok(s) => {
            println!(
                "clean: {} seeds ({} crashed, {} resumed from checkpoint, {} cold restarts), \
                 {} checkpoints saved, {} saves died mid-protocol, {} storage faults injected",
                s.seeds,
                s.crashed,
                s.resumed,
                s.cold_restarts,
                s.checkpoints_saved,
                s.saves_failed,
                s.storage_faults
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("INVARIANT VIOLATION\n{failure}");
            write_failure_record(
                &format!("target/sim/crash-failure-seed-{}.txt", failure.seed),
                &failure.to_string(),
            );
            ExitCode::FAILURE
        }
    }
}
