//! CLI driver for the pipeline simulator (`cargo xtask sim`).
//!
//! Four modes:
//!
//! * `sim --seed N` — replay one seed with full diagnostics: the derived
//!   fault plan, the outcome, and every invariant verdict. This is the
//!   reproduction path DESIGN.md §10 documents for failing sweep seeds.
//! * `sim --sweep COUNT [--start S]` — sweep seeds `S .. S+COUNT`
//!   (CI runs this). On a violation the failure record — seed, plan,
//!   violation, reproduction command — is printed and written to
//!   `target/sim/failure-seed-N.txt` for artifact upload, and the
//!   process exits non-zero.
//! * `sim --crash-seed N` — replay one crash-recovery scenario: crash the
//!   process (plus seeded storage faults: mid-protocol deaths, torn
//!   writes, at-rest rot), recover from the surviving checkpoints, resume,
//!   and verify the final tables against the sequential oracle.
//! * `sim --crash-sweep COUNT [--start S]` — sweep crash-recovery seeds;
//!   failures land in `target/sim/crash-failure-seed-N.txt`.

use el_sim::{
    check_recovery, check_run, crash_plans_for_seed, run_crash_sweep, run_sweep, sequential_prefix,
    FaultPlan, Outcome, RecoveryConfig, SimConfig, TraceEvent,
};
use std::process::ExitCode;

/// Parsed command-line request.
struct Args {
    /// Replay exactly this seed (wins over sweep mode).
    seed: Option<u64>,
    /// Replay exactly this crash-recovery seed.
    crash_seed: Option<u64>,
    /// Sweep this many seeds.
    sweep: u64,
    /// Sweep this many crash-recovery seeds instead of plain seeds.
    crash_sweep: Option<u64>,
    /// First sweep seed.
    start: u64,
    /// Batches per run.
    batches: u64,
    /// Staleness bound override.
    bound: Option<u64>,
    /// Checkpoint cadence for crash-recovery modes.
    every: u64,
    /// Checkpoints retained for crash-recovery modes.
    retain: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: None,
        crash_seed: None,
        sweep: 100,
        crash_sweep: None,
        start: 0,
        batches: 24,
        bound: None,
        every: 4,
        retain: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = Some(grab("--seed")?),
            "--crash-seed" => args.crash_seed = Some(grab("--crash-seed")?),
            "--sweep" => args.sweep = grab("--sweep")?,
            "--crash-sweep" => args.crash_sweep = Some(grab("--crash-sweep")?),
            "--start" => args.start = grab("--start")?,
            "--batches" => args.batches = grab("--batches")?,
            "--bound" => args.bound = Some(grab("--bound")?),
            "--every" => args.every = grab("--every")?.max(1),
            "--retain" => args.retain = grab("--retain")?.max(1) as usize,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

const USAGE: &str = "usage: sim [--seed N | --sweep COUNT | --crash-seed N | --crash-sweep COUNT]
           [--start S] [--batches N] [--bound B] [--every K] [--retain R]
  --seed N          replay one seed with full diagnostics
  --sweep COUNT     invariant-check COUNT seeds (default mode, COUNT=100)
  --crash-seed N    replay one crash-recovery scenario with full diagnostics
  --crash-sweep COUNT  invariant-check COUNT crash-recovery seeds
  --start S         first seed of the sweep (default 0)
  --batches N       batches per simulated run (default 24)
  --bound B         staleness bound override (default 6)
  --every K         checkpoint cadence in applied batches (crash modes, default 4)
  --retain R        checkpoints retained by the store (crash modes, default 2)";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = SimConfig { num_batches: args.batches, ..SimConfig::default() };
    if let Some(b) = args.bound {
        cfg.staleness_bound = b;
    }
    let rc = RecoveryConfig { sim: cfg, ckpt_every: args.every, retain: args.retain };

    if let Some(seed) = args.seed {
        return replay_one(&cfg, seed);
    }
    if let Some(seed) = args.crash_seed {
        return replay_crash(&rc, seed);
    }
    if let Some(count) = args.crash_sweep {
        return crash_sweep(&rc, args.start, count);
    }

    println!(
        "sweeping {} seeds from {} ({} batches, staleness bound {})",
        args.sweep, args.start, cfg.num_batches, cfg.staleness_bound
    );
    match run_sweep(&cfg, args.start, args.sweep) {
        Ok(s) => {
            println!(
                "clean: {} seeds ({} completed, {} stalled by fatal faults), \
                 {} faults injected, {} stale rows corrected",
                s.seeds, s.completed, s.stalled, s.faults_injected, s.stale_hits
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("INVARIANT VIOLATION\n{failure}");
            write_failure_record(
                &format!("target/sim/failure-seed-{}.txt", failure.seed),
                &failure.to_string(),
            );
            ExitCode::FAILURE
        }
    }
}

/// Writes a failure record for CI artifact upload (best effort).
fn write_failure_record(path: &str, contents: &str) {
    if std::fs::create_dir_all("target/sim")
        .and_then(|()| std::fs::write(path, format!("{contents}\n")))
        .is_ok()
    {
        eprintln!("failure record written to {path}");
    }
}

fn outcome_name(outcome: Outcome) -> &'static str {
    match outcome {
        Outcome::Completed => "completed",
        Outcome::Stalled => "stalled (fatal fault)",
        Outcome::OutOfBudget => "out of event budget",
        Outcome::Crashed => "crashed (process death)",
    }
}

/// Replays one seed and prints everything a debugging session needs.
fn replay_one(cfg: &SimConfig, seed: u64) -> ExitCode {
    let plan = FaultPlan::from_seed(seed, cfg.num_batches);
    println!("seed {seed} — fault plan:\n{plan}");
    let oracle = sequential_prefix(cfg);
    match check_run(cfg, &plan, seed, &oracle) {
        Ok(report) => {
            println!(
                "{}: applied {}/{} batches in {} virtual ticks ({} events)",
                outcome_name(report.outcome),
                report.applied,
                cfg.num_batches,
                report.final_tick,
                report.events_processed
            );
            println!(
                "tables digest {:#018x} — matches sequential oracle at prefix {}",
                report.table_digest, report.applied
            );
            println!("{} stale prefetched rows corrected by the worker cache", report.stale_hits);
            println!("all invariants hold (exactly-once, staleness bound, replay, oracle)");
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("INVARIANT VIOLATION: {v}");
            ExitCode::FAILURE
        }
    }
}

/// Replays one crash-recovery scenario with full diagnostics.
fn replay_crash(rc: &RecoveryConfig, seed: u64) -> ExitCode {
    let (plan, storage_plan) = crash_plans_for_seed(seed, rc.sim.num_batches);
    println!("crash seed {seed} — fault plan:\n{plan}");
    println!("storage-fault plan:\n{storage_plan}");
    let oracle = sequential_prefix(&rc.sim);
    match check_recovery(rc, &plan, &storage_plan, seed, &oracle) {
        Ok(report) => {
            let saved =
                report.phase1.trace.count(|e| matches!(e, TraceEvent::CheckpointSaved { .. }));
            println!(
                "phase 1 {}: applied {}/{} batches, {} checkpoints saved",
                outcome_name(report.phase1.outcome),
                report.phase1.applied,
                rc.sim.num_batches,
                saved
            );
            match (&report.phase2, &report.restored_from) {
                (None, _) => println!("no recovery needed"),
                (Some(p2), Some(name)) => println!(
                    "recovered from {name} (applied={}), phase 2 {}: applied {}/{}",
                    report.resumed_applied,
                    outcome_name(p2.outcome),
                    p2.applied,
                    rc.sim.num_batches
                ),
                (Some(p2), None) => println!(
                    "no valid checkpoint survived — cold restart, phase 2 {}: applied {}/{}",
                    outcome_name(p2.outcome),
                    p2.applied,
                    rc.sim.num_batches
                ),
            }
            println!(
                "final tables digest {:#018x} — byte-identical to the sequential oracle",
                report.final_digest
            );
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("INVARIANT VIOLATION: {v}");
            ExitCode::FAILURE
        }
    }
}

/// Sweeps crash-recovery seeds (CI's crash/torn-write matrix).
fn crash_sweep(rc: &RecoveryConfig, start: u64, count: u64) -> ExitCode {
    println!(
        "crash-sweeping {} seeds from {} ({} batches, checkpoint every {}, retain {})",
        count, start, rc.sim.num_batches, rc.ckpt_every, rc.retain
    );
    match run_crash_sweep(rc, start, count) {
        Ok(s) => {
            println!(
                "clean: {} seeds ({} crashed, {} resumed from checkpoint, {} cold restarts), \
                 {} checkpoints saved, {} saves died mid-protocol, {} storage faults injected",
                s.seeds,
                s.crashed,
                s.resumed,
                s.cold_restarts,
                s.checkpoints_saved,
                s.saves_failed,
                s.storage_faults
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("INVARIANT VIOLATION\n{failure}");
            write_failure_record(
                &format!("target/sim/crash-failure-seed-{}.txt", failure.seed),
                &failure.to_string(),
            );
            ExitCode::FAILURE
        }
    }
}
