//! CLI driver for the pipeline simulator (`cargo xtask sim`).
//!
//! Two modes:
//!
//! * `sim --seed N` — replay one seed with full diagnostics: the derived
//!   fault plan, the outcome, and every invariant verdict. This is the
//!   reproduction path DESIGN.md §10 documents for failing sweep seeds.
//! * `sim --sweep COUNT [--start S]` — sweep seeds `S .. S+COUNT`
//!   (CI runs this). On a violation the failure record — seed, plan,
//!   violation, reproduction command — is printed and written to
//!   `target/sim/failure-seed-N.txt` for artifact upload, and the
//!   process exits non-zero.

use el_sim::{check_run, run_sweep, sequential_prefix, FaultPlan, Outcome, SimConfig};
use std::process::ExitCode;

/// Parsed command-line request.
struct Args {
    /// Replay exactly this seed (wins over sweep mode).
    seed: Option<u64>,
    /// Sweep this many seeds.
    sweep: u64,
    /// First sweep seed.
    start: u64,
    /// Batches per run.
    batches: u64,
    /// Staleness bound override.
    bound: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { seed: None, sweep: 100, start: 0, batches: 24, bound: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = Some(grab("--seed")?),
            "--sweep" => args.sweep = grab("--sweep")?,
            "--start" => args.start = grab("--start")?,
            "--batches" => args.batches = grab("--batches")?,
            "--bound" => args.bound = Some(grab("--bound")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

const USAGE: &str = "usage: sim [--seed N | --sweep COUNT [--start S]] [--batches N] [--bound B]
  --seed N      replay one seed with full diagnostics
  --sweep COUNT invariant-check COUNT seeds (default mode, COUNT=100)
  --start S     first seed of the sweep (default 0)
  --batches N   batches per simulated run (default 24)
  --bound B     staleness bound override (default 6)";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = SimConfig { num_batches: args.batches, ..SimConfig::default() };
    if let Some(b) = args.bound {
        cfg.staleness_bound = b;
    }

    if let Some(seed) = args.seed {
        return replay_one(&cfg, seed);
    }

    println!(
        "sweeping {} seeds from {} ({} batches, staleness bound {})",
        args.sweep, args.start, cfg.num_batches, cfg.staleness_bound
    );
    match run_sweep(&cfg, args.start, args.sweep) {
        Ok(s) => {
            println!(
                "clean: {} seeds ({} completed, {} stalled by fatal faults), \
                 {} faults injected, {} stale rows corrected",
                s.seeds, s.completed, s.stalled, s.faults_injected, s.stale_hits
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("INVARIANT VIOLATION\n{failure}");
            let path = format!("target/sim/failure-seed-{}.txt", failure.seed);
            if std::fs::create_dir_all("target/sim")
                .and_then(|()| std::fs::write(&path, format!("{failure}\n")))
                .is_ok()
            {
                eprintln!("failure record written to {path}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Replays one seed and prints everything a debugging session needs.
fn replay_one(cfg: &SimConfig, seed: u64) -> ExitCode {
    let plan = FaultPlan::from_seed(seed, cfg.num_batches);
    println!("seed {seed} — fault plan:\n{plan}");
    let oracle = sequential_prefix(cfg);
    match check_run(cfg, &plan, seed, &oracle) {
        Ok(report) => {
            let outcome = match report.outcome {
                Outcome::Completed => "completed",
                Outcome::Stalled => "stalled (fatal fault)",
                Outcome::OutOfBudget => "out of event budget",
            };
            println!(
                "{outcome}: applied {}/{} batches in {} virtual ticks ({} events)",
                report.applied, cfg.num_batches, report.final_tick, report.events_processed
            );
            println!(
                "tables digest {:#018x} — matches sequential oracle at prefix {}",
                report.table_digest, report.applied
            );
            println!("{} stale prefetched rows corrected by the worker cache", report.stale_hits);
            println!("all invariants hold (exactly-once, staleness bound, replay, oracle)");
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("INVARIANT VIOLATION: {v}");
            ExitCode::FAILURE
        }
    }
}
