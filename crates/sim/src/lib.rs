//! # el-sim — deterministic pipeline simulator with seeded fault injection
//!
//! The pipelined parameter server (`el-pipeline`, paper §V) is tested
//! end-to-end by real threads, which can only witness the interleavings
//! the OS scheduler happens to produce. This crate removes the scheduler:
//! a virtual clock and a seeded discrete-event queue ([`clock`]) drive
//! the *real* `HostServer`, `EmbeddingCache` and pooling/aggregation
//! kernels through arbitrary interleavings, while a seeded [`fault::FaultPlan`]
//! injects worker stalls and deaths, server death, prefetch delays,
//! gradient-queue saturation, and dropped/duplicated gradient deliveries.
//!
//! Every run is a pure function of `(SimConfig, FaultPlan, seed)` — no
//! threads, no wall clock — so a failing seed from a CI sweep replays
//! bit-for-bit on any machine (`cargo xtask sim --seed N`).
//!
//! * [`clock`] — virtual time, deterministic event scheduling, splitmix64,
//! * [`fault`] — the fault model and seeded plan derivation,
//! * [`trace`] — the observable protocol history of a run,
//! * [`sim`] — the simulation itself (host, worker, unreliable links),
//! * [`oracle`] — the sequential reference with per-batch prefix digests,
//! * [`invariants`] — exactly-once / staleness-bound / schedule-independence
//!   / replay-determinism checking,
//! * [`shard`] — the multi-shard tier simulation: scatter/gather across
//!   independent `HostServer` shards, per-shard fault injection, and the
//!   multi-shard seed sweep,
//! * [`sweep`] — the seed-sweep harness CI runs,
//! * [`storage`] — fault-injecting checkpoint storage (crashes between
//!   atomic-protocol steps, torn writes, at-rest rot),
//! * [`recovery`] — crash → recover → resume scenarios and the crash
//!   sweep (checkpoint durability, DESIGN.md §11),
//! * [`reshard`] — elastic resharding: drain through the checkpoint
//!   store, migrate row ranges to a new placement, resume — crash-safe at
//!   every drain step and byte-identical to the never-resharded oracle
//!   (DESIGN.md §14),
//! * [`failover`] — the replicated tier: K-member lockstep replica
//!   groups per shard, heartbeat failure detection, promotion on
//!   suspicion, checkpoint catch-up rejoins, and the kill-the-primary /
//!   network-fault sweeps that demand completion byte-identical to the
//!   sequential oracle (DESIGN.md §15).
//!
//! See DESIGN.md §10 for the fault model and the invariant statements.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
pub mod failover;
pub mod fault;
pub mod invariants;
pub mod oracle;
pub mod recovery;
pub mod reshard;
pub mod shard;
pub mod sim;
pub mod storage;
pub mod sweep;
pub mod trace;

#[cfg(test)]
mod proptests;

pub use failover::{
    run_failover, run_failover_sweep, run_netfault_sweep, FailoverSimConfig, FailoverSimReport,
    FailoverSweepFailure, FailoverSweepSummary,
};
pub use fault::{Fault, FaultPlan};
pub use invariants::{
    check_against_oracle, check_failover_against_oracle, check_failover_run, check_failover_trace,
    check_run, check_shard_against_oracle, check_shard_run, check_shard_trace, check_trace,
    Violation,
};
pub use oracle::{sequential_prefix, sharded_prefix, Oracle, ShardOracle};
pub use recovery::{
    check_recovery, crash_plans_for_seed, run_crash_sweep, run_with_recovery, CrashSweepFailure,
    CrashSweepSummary, RecoveryConfig, RecoveryReport, SimCheckpoint,
};
pub use reshard::{
    check_reshard, reshard_plans_for_seed, run_reshard, run_reshard_sweep, RecoveredFrom,
    ReshardConfig, ReshardReport, ReshardSweepFailure, ReshardSweepSummary,
};
pub use shard::{
    run_shard_session, run_shard_sweep, run_sharded, ShardSimConfig, ShardSimReport,
    ShardSweepFailure, ShardSweepSummary,
};
pub use sim::{
    digest_tables, run, run_session, CkptSink, Outcome, ResumeState, SimConfig, SimReport,
};
pub use storage::{FaultyStorage, StorageFault, StorageFaultPlan};
pub use sweep::{run_sweep, SweepFailure, SweepSummary};
pub use trace::{Trace, TraceEvent};
