//! # el-sim — deterministic pipeline simulator with seeded fault injection
//!
//! The pipelined parameter server (`el-pipeline`, paper §V) is tested
//! end-to-end by real threads, which can only witness the interleavings
//! the OS scheduler happens to produce. This crate removes the scheduler:
//! a virtual clock and a seeded discrete-event queue ([`clock`]) drive
//! the *real* `HostServer`, `EmbeddingCache` and pooling/aggregation
//! kernels through arbitrary interleavings, while a seeded [`fault::FaultPlan`]
//! injects worker stalls and deaths, server death, prefetch delays,
//! gradient-queue saturation, and dropped/duplicated gradient deliveries.
//!
//! Every run is a pure function of `(SimConfig, FaultPlan, seed)` — no
//! threads, no wall clock — so a failing seed from a CI sweep replays
//! bit-for-bit on any machine (`cargo xtask sim --seed N`).
//!
//! * [`clock`] — virtual time, deterministic event scheduling, splitmix64,
//! * [`fault`] — the fault model and seeded plan derivation,
//! * [`trace`] — the observable protocol history of a run,
//! * [`sim`] — the simulation itself (host, worker, unreliable links),
//! * [`oracle`] — the sequential reference with per-batch prefix digests,
//! * [`invariants`] — exactly-once / staleness-bound / schedule-independence
//!   / replay-determinism checking,
//! * [`sweep`] — the seed-sweep harness CI runs.
//!
//! See DESIGN.md §10 for the fault model and the invariant statements.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
pub mod fault;
pub mod invariants;
pub mod oracle;
pub mod sim;
pub mod sweep;
pub mod trace;

#[cfg(test)]
mod proptests;

pub use fault::{Fault, FaultPlan};
pub use invariants::{check_against_oracle, check_run, check_trace, Violation};
pub use oracle::{sequential_prefix, Oracle};
pub use sim::{digest_tables, run, Outcome, SimConfig, SimReport};
pub use sweep::{run_sweep, SweepFailure, SweepSummary};
pub use trace::{Trace, TraceEvent};
