//! Property-based tests over the staleness protocol: arbitrary seeded
//! schedules, arbitrary explicit fault combinations, and arbitrary
//! pipeline geometries must all satisfy the invariants in
//! [`crate::invariants`]. Seeds and fault lists are proptest inputs, so
//! a failing case shrinks to a minimal seed / plan before it is reported.

#![cfg(test)]

use crate::fault::{Fault, FaultPlan};
use crate::invariants::check_run;
use crate::oracle::sequential_prefix;
use crate::sim::SimConfig;
use proptest::prelude::*;

/// A small config so each case stays fast; `num_batches` is kept at 12
/// and the knobs that shape interleavings vary per case.
fn small_cfg(staleness_bound: u64, prefetch_depth: usize, grad_capacity: usize) -> SimConfig {
    SimConfig {
        num_batches: 12,
        batch_size: 8,
        rows_per_table: 60,
        staleness_bound,
        prefetch_depth,
        grad_capacity,
        ..SimConfig::default()
    }
}

/// One arbitrary fault for a run of `n` batches.
fn arb_fault(n: u64) -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0..n, 1u64..64).prop_map(|(at_batch, ticks)| Fault::WorkerStall { at_batch, ticks }),
        (0..n).prop_map(|at_batch| Fault::WorkerDeath { at_batch }),
        (0..n).prop_map(|after_applied| Fault::ServerDeath { after_applied }),
        (0..n, 1u64..48).prop_map(|(batch, ticks)| Fault::PrefetchDelay { batch, ticks }),
        (0..n * 12, 1u64..60)
            .prop_map(|(start, ticks)| Fault::GradQueueSaturation { start, ticks }),
        (0..n, 1u32..3).prop_map(|(seq, delivery)| Fault::DropPush { seq, delivery }),
        (0..n, 1u32..3).prop_map(|(seq, delivery)| Fault::DuplicatePush { seq, delivery }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Seed-derived plans and schedules (what the CI sweep runs) never
    /// violate any invariant.
    #[test]
    fn seeded_schedules_preserve_invariants(seed in 0u64..u64::MAX) {
        let cfg = small_cfg(6, 4, 8);
        let oracle = sequential_prefix(&cfg);
        let plan = FaultPlan::from_seed(seed, cfg.num_batches);
        let verdict = check_run(&cfg, &plan, seed, &oracle);
        prop_assert!(
            verdict.is_ok(),
            "seed {seed}, plan [{plan}]: {}",
            verdict.unwrap_err()
        );
    }

    /// Explicit fault lists (shrinkable element-wise, unlike a seed)
    /// preserve the invariants under an arbitrary schedule.
    #[test]
    fn explicit_fault_plans_preserve_invariants(
        faults in proptest::collection::vec(arb_fault(12), 0..4),
        schedule_seed in 0u64..u64::MAX,
    ) {
        let cfg = small_cfg(6, 4, 8);
        let oracle = sequential_prefix(&cfg);
        let plan = FaultPlan::with(faults);
        let verdict = check_run(&cfg, &plan, schedule_seed, &oracle);
        prop_assert!(verdict.is_ok(), "plan [{plan}]: {}", verdict.unwrap_err());
    }

    /// The invariants hold across pipeline geometries: any staleness
    /// bound (including 0, fully synchronous), queue depth and gradient
    /// capacity — the bound is enforced by the gather gate, not by lucky
    /// queue sizing.
    #[test]
    fn geometry_never_breaks_the_bound(
        bound in 0u64..8,
        depth in 1usize..6,
        capacity in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let cfg = small_cfg(bound, depth, capacity);
        let oracle = sequential_prefix(&cfg);
        let plan = FaultPlan::from_seed(seed, cfg.num_batches);
        let verdict = check_run(&cfg, &plan, seed, &oracle);
        prop_assert!(
            verdict.is_ok(),
            "bound={bound} depth={depth} cap={capacity} seed={seed}: {}",
            verdict.unwrap_err()
        );
    }
}
