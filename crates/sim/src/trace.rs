//! The observable history of one simulated run.
//!
//! Every protocol-relevant action appends a [`TraceEvent`]; the invariant
//! checker consumes the trace after the run. Traces derive `PartialEq` so
//! replay determinism can be asserted structurally, not just on final
//! state.

/// One observed protocol action, in virtual-time order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The server gathered batch `seq`, stamping it with its progress.
    Gathered {
        /// Batch sequence number.
        seq: u64,
        /// Gradient batches the server had applied at gather time.
        applied_through: u64,
    },
    /// The worker synchronized batch `seq`'s pre-fetched rows against its
    /// embedding cache and began computing.
    PrefetchSynced {
        /// Batch sequence number.
        seq: u64,
        /// The staleness stamp the batch carried.
        applied_through: u64,
    },
    /// The worker transmitted the push for batch `seq` (attempt
    /// `delivery`, 1-based).
    PushSent {
        /// Batch sequence number.
        seq: u64,
        /// Transmission attempt.
        delivery: u32,
    },
    /// A push delivery for batch `seq` reached the server.
    PushDelivered {
        /// Batch sequence number.
        seq: u64,
    },
    /// A delivered push bounced off a saturated gradient intake.
    PushBounced {
        /// Batch sequence number.
        seq: u64,
    },
    /// A delivered push duplicated one already applied or buffered; it
    /// was ignored (and re-acknowledged if already applied).
    DuplicateIgnored {
        /// Batch sequence number.
        seq: u64,
    },
    /// The server applied the push for batch `seq` to its tables.
    Applied {
        /// Batch sequence number.
        seq: u64,
    },
    /// The worker received the server's acknowledgement for batch `seq`.
    Acked {
        /// Batch sequence number.
        seq: u64,
    },
    /// The worker exhausted its retry budget for batch `seq` and stopped.
    GaveUp {
        /// Batch sequence number.
        seq: u64,
    },
    /// The worker died (fault injection).
    WorkerDied {
        /// Batch it died on.
        at_batch: u64,
    },
    /// The server died (fault injection).
    ServerDied {
        /// Batches it had applied when it died.
        applied: u64,
    },
    /// A checkpoint was made durable through the session's sink.
    CheckpointSaved {
        /// Applied-batch watermark the checkpoint captured.
        applied: u64,
    },
    /// A checkpoint save failed mid-protocol (storage fault); the
    /// process died with it.
    CheckpointFailed {
        /// Applied-batch watermark of the attempted checkpoint.
        applied: u64,
    },
    /// The whole process crashed (fault injection).
    CrashInjected {
        /// Batches applied when the process died.
        applied: u64,
    },
    /// The session resumed from recovered durable state instead of the
    /// initial tables.
    Resumed {
        /// Applied-batch watermark of the recovered checkpoint (zero for
        /// a cold restart).
        applied: u64,
    },
    /// During a sharded gather, one shard reported its own applied
    /// watermark — the per-shard stamp the global `Gathered` stamp is
    /// stitched (min'd) from.
    ShardStamped {
        /// The reporting shard.
        shard: u32,
        /// Batch sequence number being gathered.
        seq: u64,
        /// That shard's applied watermark at gather time.
        applied: u64,
    },
    /// The worker transmitted batch `seq`'s scattered push toward one
    /// shard (attempt `delivery`, 1-based).
    ShardPushSent {
        /// Destination shard.
        shard: u32,
        /// Batch sequence number.
        seq: u64,
        /// Transmission attempt.
        delivery: u32,
    },
    /// A scattered push delivery reached a shard.
    ShardPushDelivered {
        /// Receiving shard.
        shard: u32,
        /// Batch sequence number.
        seq: u64,
    },
    /// A delivered scattered push bounced off a saturated shard intake.
    ShardPushBounced {
        /// Bouncing shard.
        shard: u32,
        /// Batch sequence number.
        seq: u64,
    },
    /// A delivered scattered push duplicated one that shard had already
    /// applied or buffered; it was ignored (and re-acknowledged when
    /// already applied).
    ShardDuplicateIgnored {
        /// Deduplicating shard.
        shard: u32,
        /// Batch sequence number.
        seq: u64,
    },
    /// A shard applied batch `seq`'s scattered push to its sub-tables.
    ShardApplied {
        /// Applying shard.
        shard: u32,
        /// Batch sequence number.
        seq: u64,
    },
    /// The worker received one shard's acknowledgement for batch `seq`.
    ShardAcked {
        /// Acknowledging shard.
        shard: u32,
        /// Batch sequence number.
        seq: u64,
    },
    /// The worker exhausted its retry budget toward one shard and
    /// stopped.
    ShardGaveUp {
        /// Unreachable shard.
        shard: u32,
        /// Batch sequence number it gave up on.
        seq: u64,
    },
    /// A shard died (fault injection); its peers keep running.
    ShardDied {
        /// The dead shard.
        shard: u32,
        /// Batches it had applied when it died.
        applied: u64,
    },
    /// A replica-group primary died (fault injection); its backups keep
    /// the shard's state.
    PrimaryDied {
        /// The shard whose primary died.
        shard: u32,
        /// The dead member's rank within the group.
        rank: u32,
        /// Batches it had applied when it died.
        applied: u64,
    },
    /// A backup replica died (fault injection).
    BackupDied {
        /// The shard whose backup died.
        shard: u32,
        /// The dead member's rank.
        rank: u32,
        /// Batches the group had applied when it died.
        applied: u64,
    },
    /// The worker's failure detector crossed the suspicion timeout for a
    /// shard's primary.
    PrimarySuspected {
        /// The suspected shard.
        shard: u32,
        /// The rank the worker believed was primary.
        rank: u32,
        /// Heartbeat silence in ticks when suspicion fired.
        silent_for: u64,
    },
    /// The worker promoted a backup to primary and rerouted traffic.
    Promoted {
        /// The shard that failed over.
        shard: u32,
        /// The newly-promoted member's rank.
        rank: u32,
        /// The promoted member's applied watermark at promotion.
        applied: u64,
    },
    /// A falsely-deposed primary learned of the promotion and stepped
    /// down to backup (fencing).
    SteppedDown {
        /// The shard whose old primary stepped down.
        shard: u32,
        /// The stepping-down member's rank.
        rank: u32,
    },
    /// A replica-group member applied batch `seq` (primaries and backups
    /// alike — the per-member stamp domain the exactly-once invariant is
    /// checked over).
    ReplicaApplied {
        /// The member's shard.
        shard: u32,
        /// The member's rank.
        rank: u32,
        /// Batch sequence number.
        seq: u64,
    },
    /// A dead member rejoined via snapshot + log-replay catch-up.
    CatchupInstalled {
        /// The rejoining member's shard.
        shard: u32,
        /// The rejoining member's rank.
        rank: u32,
        /// Applied watermark after replay (the group's watermark).
        applied: u64,
    },
}

/// The full history of one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in virtual-time order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Appends an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// Number of events matching `pred`.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// True when any event matches `pred`.
    pub fn any(&self, pred: impl Fn(&TraceEvent) -> bool) -> bool {
        self.events.iter().any(pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_any_filter() {
        let mut t = Trace::default();
        t.push(TraceEvent::Applied { seq: 0 });
        t.push(TraceEvent::Applied { seq: 1 });
        t.push(TraceEvent::Acked { seq: 0 });
        assert_eq!(t.count(|e| matches!(e, TraceEvent::Applied { .. })), 2);
        assert!(t.any(|e| matches!(e, TraceEvent::Acked { seq: 0 })));
        assert!(!t.any(|e| matches!(e, TraceEvent::GaveUp { .. })));
    }
}
