//! The serving tier's coalescing must be *invisible* to clients: batching
//! requests together (in any interleaving, at any precision) has to return
//! byte-for-byte the answer each request would have gotten alone.
//!
//! Property 1 drives the [`el_serve::Coalescer`] directly — one coalesced
//! batch vs. the same requests issued sequentially, each through its own
//! fresh session, compared with exact `==` on the f32 output. This holds
//! even for the quantized lanes because every product is dequantized from
//! the same stored representation on both the hit and the miss path.
//!
//! Property 2 re-partitions the same request set into arbitrary
//! sub-batches served through *one* session, so cache state evolves
//! differently (hits where the one-shot batch saw misses) — the answers
//! must still be identical.
//!
//! Property 3 bounds the quantized serving output against the f32 training
//! forward exactly as the PR 6 inference tests do: bf16 within 2% and int8
//! within 6% of the output magnitude.

use el_core::{InferencePrecision, TtConfig, TtEmbeddingBag, TtInferenceSession, TtWorkspace};
use el_serve::{Coalescer, ServeRequest};
use proptest::prelude::*;
use rand::SeedableRng;

const PRECISIONS: [InferencePrecision; 3] =
    [InferencePrecision::F32, InferencePrecision::Bf16, InferencePrecision::Int8];

/// A random small table: order 2..=4, rows 6..=200, dim in {4, 8, 16}.
fn arb_config() -> impl Strategy<Value = TtConfig> {
    (2usize..=4, 6usize..=200, prop_oneof![Just(4usize), Just(8), Just(16)], 2usize..=6)
        .prop_map(|(order, rows, dim, rank)| TtConfig::with_order(rows, dim, rank, order))
}

/// 1..=12 requests of 1..=9 lookups each (raw, reduced mod rows later).
fn arb_requests() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..1_000_000, 1..10), 1..13)
}

fn make_table(config: &TtConfig, seed: u64) -> TtEmbeddingBag {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    TtEmbeddingBag::new(config, &mut rng)
}

fn make_reqs(raw: &[Vec<u32>], num_rows: usize) -> Vec<ServeRequest> {
    raw.iter()
        .enumerate()
        .map(|(i, indices)| ServeRequest {
            tenant: 0,
            id: i as u64,
            indices: indices.iter().map(|&x| x % num_rows as u32).collect(),
            out: Vec::new(),
            submit_ns: 0,
        })
        .collect()
}

/// The per-request oracle: each request served alone through a fresh
/// session (no shared cache state, no batching).
fn sequential_oracle(
    table: &TtEmbeddingBag,
    reqs: &[ServeRequest],
    precision: InferencePrecision,
) -> Vec<Vec<f32>> {
    reqs.iter()
        .map(|r| {
            let mut session = TtInferenceSession::with_precision(table, 64, precision);
            session.lookup(&r.indices, &[0, r.indices.len() as u32]).as_slice().to_vec()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One coalesced batch == per-request sequential issuance, exactly,
    /// at every precision.
    #[test]
    fn coalesced_batch_is_byte_identical_to_sequential(
        (config, seed) in arb_config().prop_flat_map(|c| (Just(c), 0u64..1000)),
        raw in arb_requests(),
    ) {
        let table = make_table(&config, seed);
        for precision in PRECISIONS {
            let mut reqs = make_reqs(&raw, config.num_rows);
            let want = sequential_oracle(&table, &reqs, precision);
            let mut session = TtInferenceSession::with_precision(&table, 64, precision);
            let mut co = Coalescer::new();
            co.process_into(&mut session, &mut reqs);
            for (r, w) in reqs.iter().zip(&want) {
                prop_assert_eq!(
                    r.out.as_slice(), w.as_slice(),
                    "{:?}: request {} diverged under coalescing", precision, r.id
                );
            }
        }
    }

    /// Any re-partitioning of the request stream into sub-batches through
    /// one long-lived session (cache state carrying over between batches)
    /// still answers every request identically.
    #[test]
    fn arbitrary_interleavings_are_byte_identical(
        (config, seed) in arb_config().prop_flat_map(|c| (Just(c), 0u64..1000)),
        raw in arb_requests(),
        cuts in proptest::collection::vec(0usize..13, 0..5),
        precision_sel in 0usize..3,
    ) {
        let table = make_table(&config, seed);
        let precision = PRECISIONS[precision_sel];
        let mut reqs = make_reqs(&raw, config.num_rows);
        let want = sequential_oracle(&table, &reqs, precision);

        // cuts -> a partition of [0, len) into consecutive sub-batches
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (reqs.len() + 1)).collect();
        bounds.push(0);
        bounds.push(reqs.len());
        bounds.sort_unstable();
        bounds.dedup();

        let mut session = TtInferenceSession::with_precision(&table, 64, precision);
        let mut co = Coalescer::new();
        for w in bounds.windows(2) {
            co.process_into(&mut session, &mut reqs[w[0]..w[1]]);
        }
        for (r, w) in reqs.iter().zip(&want) {
            prop_assert_eq!(
                r.out.as_slice(), w.as_slice(),
                "{:?}: request {} diverged under re-partitioning", precision, r.id
            );
        }
    }

    /// Coalesced quantized serving stays within the PR 6 divergence bounds
    /// of the f32 training forward: bf16 2%, int8 6% of output magnitude.
    #[test]
    fn coalesced_quantized_output_is_bounded_against_training_forward(
        (config, seed) in arb_config().prop_flat_map(|c| (Just(c), 0u64..1000)),
        raw in arb_requests(),
    ) {
        let table = make_table(&config, seed);
        let mut ws = TtWorkspace::new();
        for (precision, tol) in [
            (InferencePrecision::F32, 1e-5f32),
            (InferencePrecision::Bf16, 0.02),
            (InferencePrecision::Int8, 0.06),
        ] {
            let mut reqs = make_reqs(&raw, config.num_rows);
            let mut session = TtInferenceSession::with_precision(&table, 64, precision);
            let mut co = Coalescer::new();
            co.process_into(&mut session, &mut reqs);
            for r in &reqs {
                let want = table.forward(&r.indices, &[0, r.indices.len() as u32], &mut ws);
                let scale = want.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
                let diff = r
                    .out
                    .iter()
                    .zip(want.as_slice())
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f32, f32::max);
                prop_assert!(
                    diff < tol * scale,
                    "{:?}: request {} diverged from training forward by {} (scale {})",
                    precision, r.id, diff, scale
                );
            }
        }
    }
}
