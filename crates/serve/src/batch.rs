//! Cross-request coalescing: many small requests, one deduplicated lookup.
//!
//! Each serving request is one pooled sample. The [`Coalescer`] lays the
//! queued requests out as a single CSR batch and serves it through
//! [`TtInferenceSession::lookup_into`], whose `LookupPlan` collapses
//! duplicate rows *across requests* to a single contraction — the paper's
//! Algorithm 1 dedup, applied to the concurrent request stream instead of a
//! training batch. Every buffer involved is recycled, so the per-batch hot
//! path allocates nothing in steady state (statically checked by the
//! `// CONTRACT: zero-alloc` analyzer pass).

use el_core::TtInferenceSession;

/// One in-flight inference request: a pooled multi-hot lookup owned by a
/// tenant. The `indices` and `out` buffers travel with the request through
/// queue, batch and response, so the client can recycle them round-trip.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeRequest {
    /// Owning tenant (indexes the server's tenant table).
    pub tenant: u32,
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Sparse lookup indices (one pooled sample).
    pub indices: Vec<u32>,
    /// Pooled embedding row, filled by the server (`dim` floats).
    pub out: Vec<f32>,
    /// Server-clock nanoseconds at admission.
    pub submit_ns: u64,
}

/// A completed request plus its completion stamp.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeResponse {
    /// The request, its `out` buffer now holding the pooled embedding.
    pub req: ServeRequest,
    /// Server-clock nanoseconds at completion.
    pub done_ns: u64,
}

/// Recycled CSR assembly for one worker.
///
/// Thread-free and side-effect-free apart from the session it serves
/// through, which keeps it directly testable: the coalesced-equals-
/// sequential proptests drive it without any queues or threads.
#[derive(Default)]
pub struct Coalescer {
    indices: Vec<u32>,
    offsets: Vec<u32>,
    flat_out: Vec<f32>,
    /// Lookups (nnz) coalesced so far, across all batches.
    total_lookups: u64,
    /// Unique rows actually contracted, across all batches.
    total_unique_rows: u64,
}

impl Coalescer {
    /// An empty coalescer; buffers grow to the working batch shape on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serves `reqs` as one deduplicated batch through `session`, writing
    /// each request's pooled row into its own `out` buffer.
    ///
    /// Steady-state allocation-free: the CSR assembly, the batch analysis
    /// inside the session and the scatter back to per-request buffers all
    /// reuse grown capacity (request `out` buffers are recycled by the
    /// round-tripping client).
    ///
    /// # Panics
    /// Panics if a request's indices are out of the table's factorized
    /// capacity (the session's documented contract).
    // CONTRACT: zero-alloc
    pub fn process_into(
        &mut self,
        session: &mut TtInferenceSession<'_>,
        reqs: &mut [ServeRequest],
    ) {
        let n = session.dim();
        self.indices.clear();
        self.offsets.clear();
        self.offsets.push(0);
        for r in reqs.iter() {
            self.indices.extend_from_slice(&r.indices);
            self.offsets.push(self.indices.len() as u32);
        }
        self.flat_out.resize(reqs.len() * n, 0.0);
        session.lookup_into(&self.indices, &self.offsets, &mut self.flat_out);
        for (s, r) in reqs.iter_mut().enumerate() {
            r.out.clear();
            r.out.extend_from_slice(&self.flat_out[s * n..(s + 1) * n]);
        }
        self.total_lookups += self.indices.len() as u64;
        self.total_unique_rows += session.last_unique_rows() as u64;
    }

    /// Total lookups coalesced so far.
    pub fn total_lookups(&self) -> u64 {
        self.total_lookups
    }

    /// Total unique rows contracted so far; `total_lookups - total_unique_rows`
    /// is the chain work the cross-request dedup removed.
    pub fn total_unique_rows(&self) -> u64 {
        self.total_unique_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_core::{TtConfig, TtEmbeddingBag};
    use rand::SeedableRng;

    fn table() -> TtEmbeddingBag {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        TtEmbeddingBag::new(&TtConfig::new(1_000, 16, 8), &mut rng)
    }

    fn req(tenant: u32, id: u64, indices: &[u32]) -> ServeRequest {
        ServeRequest { tenant, id, indices: indices.to_vec(), out: Vec::new(), submit_ns: 0 }
    }

    #[test]
    fn coalesced_equals_sequential_lookup() {
        let t = table();
        let mut batch_session = TtInferenceSession::new(&t, 64);
        let mut seq_session = TtInferenceSession::new(&t, 64);
        let mut co = Coalescer::new();
        let mut reqs = [req(0, 0, &[3, 999, 3]), req(1, 1, &[77, 120]), req(0, 2, &[77, 3, 500])];
        co.process_into(&mut batch_session, &mut reqs);
        for r in &reqs {
            let m = seq_session.lookup(&r.indices, &[0, r.indices.len() as u32]);
            assert_eq!(r.out.as_slice(), m.as_slice(), "request {} diverged", r.id);
        }
    }

    #[test]
    fn dedup_statistics_count_shared_rows() {
        let t = table();
        let mut session = TtInferenceSession::new(&t, 64);
        let mut co = Coalescer::new();
        // 6 lookups, only 2 distinct rows across the requests
        let mut reqs = [req(0, 0, &[5, 9, 5]), req(1, 1, &[9, 5, 9])];
        co.process_into(&mut session, &mut reqs);
        assert_eq!(co.total_lookups(), 6);
        assert_eq!(co.total_unique_rows(), 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let t = table();
        let mut session = TtInferenceSession::new(&t, 64);
        let mut co = Coalescer::new();
        co.process_into(&mut session, &mut []);
        assert_eq!(co.total_lookups(), 0);
    }

    #[test]
    fn out_buffers_are_overwritten_not_appended() {
        let t = table();
        let mut session = TtInferenceSession::new(&t, 64);
        let mut co = Coalescer::new();
        let mut reqs = [req(0, 0, &[1, 2])];
        reqs[0].out = vec![9.0; 64]; // stale garbage from a previous trip
        co.process_into(&mut session, &mut reqs);
        assert_eq!(reqs[0].out.len(), t.dim());
    }
}
