//! The serving front-end: admission, batching lanes, worker pool.
//!
//! Request life cycle:
//!
//! 1. **Admission** ([`ServeHandle::submit`]): a tenant with
//!    `tenant_inflight_cap` unanswered requests is shed with a typed
//!    [`ServeError::Overloaded`] that hands the request (and its buffers)
//!    back — submission *never blocks*, so an overloaded server degrades by
//!    rejecting, not by stalling clients. The per-tenant budget is the
//!    fairness mechanism: the shared ingress queue is sized to the sum of
//!    all budgets, so one hot tenant can only ever occupy its own share.
//! 2. **Batching**: the dispatcher groups admitted requests into per-
//!    precision *lanes* (tenants choose `F32`/`Bf16`/`Int8`) and flushes a
//!    lane when it reaches `max_batch` requests or its oldest request ages
//!    past `max_wait_us` — the classic size-or-deadline window.
//! 3. **Workers**: run as tasks on the shared rayon pool; each owns one
//!    [`el_core::TtInferenceSession`] per lane in use and serves whole
//!    batches through the [`Coalescer`], so duplicate rows across requests
//!    of *different* users are contracted once. Job pickup serializes on a
//!    mutex-guarded receiver (the vendored channel is single-consumer);
//!    batch compute — the expensive part — runs fully in parallel.
//!
//! Everything is scoped: [`serve`] spawns the dispatcher and worker tasks,
//! runs the caller's driver closure against a [`ServeHandle`], and tears
//! the tier down when the driver returns, flushing queued work so no
//! admitted request is lost on a graceful shutdown.

use crate::batch::{Coalescer, ServeRequest, ServeResponse};
use crate::config::ServeConfig;
use crate::timing::Clock;
use crossbeam::channel::{self, RecvTimeoutError, TrySendError};
use el_core::{InferencePrecision, TtEmbeddingBag, TtInferenceSession};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Number of precision lanes (one per [`InferencePrecision`] variant).
const LANES: usize = 3;

fn lane_of(p: InferencePrecision) -> usize {
    match p {
        InferencePrecision::F32 => 0,
        InferencePrecision::Bf16 => 1,
        InferencePrecision::Int8 => 2,
    }
}

fn precision_of_lane(lane: usize) -> InferencePrecision {
    match lane {
        0 => InferencePrecision::F32,
        1 => InferencePrecision::Bf16,
        _ => InferencePrecision::Int8,
    }
}

/// Per-tenant serving policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantConfig {
    /// Numeric precision of the cached prefix products serving this
    /// tenant's lookups (quantized lanes trade bounded error for a smaller
    /// resident cache).
    pub precision: InferencePrecision,
}

/// Typed admission outcome; every variant returns the request so the
/// caller keeps ownership of its buffers (resubmit or recycle — nothing is
/// silently dropped).
#[derive(Debug)]
pub enum ServeError {
    /// The tenant's in-flight budget (or the ingress queue) is exhausted;
    /// the request was shed, not queued.
    Overloaded {
        /// The rejected request, buffers intact.
        request: ServeRequest,
    },
    /// The request named a tenant the server was not configured with.
    UnknownTenant {
        /// The rejected request.
        request: ServeRequest,
    },
    /// The server is tearing down and no longer admits work.
    ShuttingDown {
        /// The rejected request.
        request: ServeRequest,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { request } => {
                write!(f, "tenant {} overloaded: request shed", request.tenant)
            }
            ServeError::UnknownTenant { request } => {
                write!(f, "unknown tenant {}", request.tenant)
            }
            ServeError::ShuttingDown { .. } => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Shared serving statistics, updated with relaxed atomics (they are
/// counters, not synchronization).
#[derive(Default)]
struct ServeStats {
    submitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    dropped: AtomicU64,
    lookups: AtomicU64,
    unique_rows: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// End-of-run accounting returned by [`serve`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests admitted past admission control.
    pub submitted: u64,
    /// Requests shed at admission (overload).
    pub shed: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Batched lookups executed.
    pub batches: u64,
    /// Requests lost to teardown races (should stay 0 on graceful runs).
    pub dropped: u64,
    /// Total sparse lookups coalesced.
    pub lookups: u64,
    /// Unique rows actually contracted (`lookups - unique_rows` is the
    /// chain work the cross-request dedup removed).
    pub unique_rows: u64,
    /// Prefix-cache hits across all worker sessions.
    pub cache_hits: u64,
    /// Prefix-cache misses across all worker sessions.
    pub cache_misses: u64,
    /// Prefix-cache evictions across all worker sessions.
    pub cache_evictions: u64,
}

impl ServeReport {
    /// Fraction of offered requests shed at admission.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.submitted + self.shed;
        if offered == 0 {
            0.0
        } else {
            self.shed as f64 / offered as f64
        }
    }
}

/// One coalesced batch traveling dispatcher -> worker.
struct BatchJob {
    reqs: Vec<ServeRequest>,
    lane: usize,
}

/// Client-side face of a running serving tier; the driver closure passed
/// to [`serve`] submits requests and drains responses through it.
pub struct ServeHandle<'a> {
    ingress: channel::Sender<ServeRequest>,
    completions: channel::Receiver<ServeResponse>,
    clock: Clock,
    tenants: &'a [TenantConfig],
    inflight: &'a [AtomicU32],
    cap: usize,
    stats: &'a ServeStats,
}

impl ServeHandle<'_> {
    /// Nanoseconds on the server clock (the axis response stamps live on).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Admits `req` or sheds it. Never blocks: an overloaded tenant gets
    /// [`ServeError::Overloaded`] immediately, with the request returned.
    pub fn submit(&self, mut req: ServeRequest) -> Result<(), ServeError> {
        let Some(counter) = self.inflight.get(req.tenant as usize) else {
            return Err(ServeError::UnknownTenant { request: req });
        };
        debug_assert!((req.tenant as usize) < self.tenants.len());
        let prev = counter.fetch_add(1, Ordering::AcqRel);
        if prev as usize >= self.cap {
            counter.fetch_sub(1, Ordering::AcqRel);
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { request: req });
        }
        req.submit_ns = self.clock.now_ns();
        match self.ingress.try_send(req) {
            Ok(()) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(request)) => {
                counter.fetch_sub(1, Ordering::AcqRel);
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded { request })
            }
            Err(TrySendError::Disconnected(request)) => {
                counter.fetch_sub(1, Ordering::AcqRel);
                Err(ServeError::ShuttingDown { request })
            }
        }
    }

    /// Next completed response, waiting at most `timeout`.
    pub fn recv_response(&self, timeout: Duration) -> Option<ServeResponse> {
        channel::recv_timeout(&self.completions, timeout).ok()
    }

    /// Next completed response if one is already queued.
    pub fn try_recv_response(&self) -> Option<ServeResponse> {
        self.completions.try_recv().ok()
    }

    /// Requests admitted but not yet answered, across all tenants.
    pub fn outstanding(&self) -> u64 {
        self.inflight.iter().map(|c| c.load(Ordering::Acquire) as u64).sum()
    }
}

/// Runs a serving tier over `table` for the duration of `driver`.
///
/// The dispatcher runs on a scoped thread; `workers` tasks run on the
/// shared rayon pool. `driver` executes on the calling thread against a
/// [`ServeHandle`]; when it returns, admission closes, queued work is
/// flushed and served, the tier joins, and the aggregated [`ServeReport`]
/// is returned beside the driver's result.
///
/// # Panics
/// Panics when `tenants` is empty.
pub fn serve<R>(
    table: &TtEmbeddingBag,
    cfg: &ServeConfig,
    tenants: &[TenantConfig],
    driver: impl FnOnce(&ServeHandle<'_>) -> R,
) -> (R, ServeReport) {
    assert!(!tenants.is_empty(), "serving tier needs at least one tenant");
    let cfg = cfg.clone();
    let clock = Clock::start();
    let stats = ServeStats::default();
    let inflight: Vec<AtomicU32> = tenants.iter().map(|_| AtomicU32::new(0)).collect();
    let mut lanes_used = [false; LANES];
    for t in tenants {
        lanes_used[lane_of(t.precision)] = true;
    }

    let ingress_cap = cfg.tenant_inflight_cap * tenants.len();
    let (ingress_tx, ingress_rx) = channel::bounded::<ServeRequest>(ingress_cap);
    let (jobs_tx, jobs_rx) = channel::bounded::<BatchJob>(cfg.workers * 2 + 2);
    let jobs_rx = Mutex::new(jobs_rx);
    let (recycle_tx, recycle_rx) = channel::bounded::<Vec<ServeRequest>>(cfg.workers * 2 + 4);
    // Pre-fill the recycle loop so steady state never allocates batch
    // containers.
    for _ in 0..cfg.workers * 2 + 4 {
        let _ = recycle_tx.try_send(Vec::with_capacity(cfg.max_batch));
    }
    let (done_tx, done_rx) = channel::unbounded::<ServeResponse>();

    let result = std::thread::scope(|s| {
        let stats = &stats;
        let inflight = &inflight[..];
        let jobs_rx = &jobs_rx;
        let cfg_ref = &cfg;
        s.spawn(move || {
            dispatch(cfg_ref, tenants, clock, ingress_rx, jobs_tx, recycle_rx, inflight, stats);
        });
        let recycle_tx = recycle_tx; // moved into the worker task spawner
        let done_tx = done_tx;
        s.spawn(move || {
            (0..cfg_ref.workers).into_par_iter().for_each(|_| {
                worker_loop(
                    table,
                    cfg_ref,
                    lanes_used,
                    clock,
                    jobs_rx,
                    &recycle_tx,
                    &done_tx,
                    inflight,
                    stats,
                );
            });
        });
        let handle = ServeHandle {
            ingress: ingress_tx,
            completions: done_rx,
            clock,
            tenants,
            inflight,
            cap: cfg_ref.tenant_inflight_cap,
            stats,
        };
        driver(&handle)
        // `handle` (the last ingress sender and the completion receiver)
        // drops here: the dispatcher drains what is queued, flushes every
        // lane and exits; the job channel closes; workers finish and fold
        // their session counters into `stats`; scope joins everything.
    });

    let report = ServeReport {
        submitted: stats.submitted.load(Ordering::Relaxed),
        shed: stats.shed.load(Ordering::Relaxed),
        completed: stats.completed.load(Ordering::Relaxed),
        batches: stats.batches.load(Ordering::Relaxed),
        dropped: stats.dropped.load(Ordering::Relaxed),
        lookups: stats.lookups.load(Ordering::Relaxed),
        unique_rows: stats.unique_rows.load(Ordering::Relaxed),
        cache_hits: stats.hits.load(Ordering::Relaxed),
        cache_misses: stats.misses.load(Ordering::Relaxed),
        cache_evictions: stats.evictions.load(Ordering::Relaxed),
    };
    (result, report)
}

/// Batching loop: drains the ingress queue into per-precision lanes and
/// flushes each lane on size or deadline. Exits (flushing everything) when
/// every ingress sender is gone.
#[allow(clippy::too_many_arguments)]
// CONTRACT: panic-free
fn dispatch(
    cfg: &ServeConfig,
    tenants: &[TenantConfig],
    clock: Clock,
    ingress_rx: channel::Receiver<ServeRequest>,
    jobs_tx: channel::Sender<BatchJob>,
    recycle_rx: channel::Receiver<Vec<ServeRequest>>,
    inflight: &[AtomicU32],
    stats: &ServeStats,
) {
    let wait_ns = cfg.max_wait_us.saturating_mul(1_000);
    let mut pending: [Vec<ServeRequest>; LANES] = Default::default();
    let mut first_ns = [0u64; LANES];

    let flush = |lane: usize, pending: &mut [Vec<ServeRequest>; LANES]| {
        if pending[lane].is_empty() {
            return;
        }
        let mut reqs = recycle_rx.try_recv().unwrap_or_default();
        reqs.clear();
        std::mem::swap(&mut reqs, &mut pending[lane]);
        if let Err(mpsc::TrySendError::Full(job) | mpsc::TrySendError::Disconnected(job)) =
            send_job(&jobs_tx, BatchJob { reqs, lane })
        {
            // Workers are gone (teardown race): release the budgets so the
            // driver's outstanding count stays truthful.
            for req in job.reqs {
                if let Some(c) = inflight.get(req.tenant as usize) {
                    c.fetch_sub(1, Ordering::AcqRel);
                }
                stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    };

    loop {
        // Sleep until the next lane deadline (or a coarse tick when idle);
        // a new arrival wakes the loop immediately.
        let now = clock.now_ns();
        let mut wait = 1_000_000u64; // 1ms idle tick
        for lane in 0..LANES {
            if !pending[lane].is_empty() {
                let deadline = first_ns[lane].saturating_add(wait_ns);
                wait = wait.min(deadline.saturating_sub(now)).min(wait_ns.max(1));
            }
        }
        match channel::recv_timeout(&ingress_rx, Duration::from_nanos(wait)) {
            Ok(req) => {
                let lane =
                    tenants.get(req.tenant as usize).map(|t| lane_of(t.precision)).unwrap_or(0);
                if pending[lane].is_empty() {
                    first_ns[lane] = clock.now_ns();
                }
                pending[lane].push(req);
                if pending[lane].len() >= cfg.max_batch {
                    flush(lane, &mut pending);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                for lane in 0..LANES {
                    flush(lane, &mut pending);
                }
                return;
            }
        }
        let now = clock.now_ns();
        for lane in 0..LANES {
            if !pending[lane].is_empty() && now.saturating_sub(first_ns[lane]) >= wait_ns {
                flush(lane, &mut pending);
            }
        }
    }
}

/// Blocking job submission that degrades to the error path instead of
/// panicking when the worker side is gone.
fn send_job(
    tx: &channel::Sender<BatchJob>,
    job: BatchJob,
) -> Result<(), mpsc::TrySendError<BatchJob>> {
    tx.send(job).map_err(|mpsc::SendError(j)| mpsc::TrySendError::Disconnected(j))
}

/// One worker task: picks up batch jobs, serves them through its own
/// per-lane inference sessions, stamps and delivers responses, recycles
/// the batch container.
#[allow(clippy::too_many_arguments)]
// CONTRACT: panic-free
fn worker_loop(
    table: &TtEmbeddingBag,
    cfg: &ServeConfig,
    lanes_used: [bool; LANES],
    clock: Clock,
    jobs_rx: &Mutex<channel::Receiver<BatchJob>>,
    recycle_tx: &channel::Sender<Vec<ServeRequest>>,
    done_tx: &mpsc::Sender<ServeResponse>,
    inflight: &[AtomicU32],
    stats: &ServeStats,
) {
    let mut sessions: [Option<TtInferenceSession<'_>>; LANES] = [None, None, None];
    for (lane, used) in lanes_used.iter().enumerate() {
        if *used {
            sessions[lane] = Some(TtInferenceSession::with_precision(
                table,
                cfg.cache_capacity,
                precision_of_lane(lane),
            ));
        }
    }
    let mut coalescer = Coalescer::new();

    loop {
        // Lock, wait briefly, release: pickup serializes on the mutex (the
        // vendored channel is single-consumer) but the short timeout keeps
        // any one worker from parking on the receiver while others starve.
        let job = { jobs_rx.lock().recv_timeout(Duration::from_micros(200)) };
        let mut job = match job {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let Some(session) = sessions[job.lane].as_mut() else {
            // A lane no tenant uses cannot receive jobs; recover anyway.
            for req in job.reqs.drain(..) {
                if let Some(c) = inflight.get(req.tenant as usize) {
                    c.fetch_sub(1, Ordering::AcqRel);
                }
                stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
            continue;
        };
        coalescer.process_into(session, &mut job.reqs);
        let done_ns = clock.now_ns();
        stats.batches.fetch_add(1, Ordering::Relaxed);
        for req in job.reqs.drain(..) {
            let tenant = req.tenant as usize;
            // Deliver before releasing the budget so `outstanding() == 0`
            // implies every response is already in the completion queue.
            let _ = done_tx.send(ServeResponse { req, done_ns });
            if let Some(c) = inflight.get(tenant) {
                c.fetch_sub(1, Ordering::AcqRel);
            }
            stats.completed.fetch_add(1, Ordering::Relaxed);
        }
        let _ = recycle_tx.try_send(job.reqs);
    }

    // Fold this worker's cache and dedup counters into the shared totals.
    stats.lookups.fetch_add(coalescer.total_lookups(), Ordering::Relaxed);
    stats.unique_rows.fetch_add(coalescer.total_unique_rows(), Ordering::Relaxed);
    for session in sessions.iter().flatten() {
        stats.hits.fetch_add(session.hits(), Ordering::Relaxed);
        stats.misses.fetch_add(session.misses(), Ordering::Relaxed);
        stats.evictions.fetch_add(session.evictions(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_core::TtConfig;
    use rand::SeedableRng;

    fn table(rows: usize) -> TtEmbeddingBag {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        TtEmbeddingBag::new(&TtConfig::new(rows, 16, 8), &mut rng)
    }

    fn req(tenant: u32, id: u64, indices: &[u32]) -> ServeRequest {
        ServeRequest { tenant, id, indices: indices.to_vec(), out: Vec::new(), submit_ns: 0 }
    }

    fn drain(handle: &ServeHandle<'_>, expect: usize) -> Vec<ServeResponse> {
        let mut got = Vec::new();
        while got.len() < expect {
            match handle.recv_response(Duration::from_secs(10)) {
                Some(r) => got.push(r),
                None => break,
            }
        }
        got
    }

    #[test]
    fn round_trips_match_direct_lookup() {
        let t = table(500);
        let cfg = ServeConfig { workers: 2, ..ServeConfig::default() };
        let tenants = [TenantConfig::default()];
        let (responses, report) = serve(&t, &cfg, &tenants, |h| {
            for i in 0..40u64 {
                let r = req(0, i, &[(i % 500) as u32, ((i * 7) % 500) as u32]);
                h.submit(r).expect("no load to shed");
            }
            drain(h, 40)
        });
        assert_eq!(responses.len(), 40);
        assert_eq!(report.completed, 40);
        assert_eq!(report.shed, 0);
        assert_eq!(report.dropped, 0);
        let mut session = TtInferenceSession::new(&t, 64);
        for r in &responses {
            let want = session.lookup(&r.req.indices, &[0, r.req.indices.len() as u32]);
            assert_eq!(r.req.out.as_slice(), want.as_slice(), "request {}", r.req.id);
        }
    }

    #[test]
    fn baseline_batch_of_one_still_serves() {
        let t = table(200);
        let cfg = ServeConfig::default().with_batching(1, 0);
        let tenants = [TenantConfig::default()];
        let (got, report) = serve(&t, &cfg, &tenants, |h| {
            for i in 0..10u64 {
                h.submit(req(0, i, &[i as u32])).expect("under load");
            }
            drain(h, 10).len()
        });
        assert_eq!(got, 10);
        // batch=1 means one batch per request
        assert_eq!(report.batches, 10);
    }

    #[test]
    fn overload_sheds_typed_and_never_stalls() {
        let t = table(200);
        // Huge window so admitted requests stay in flight during the flood.
        let cfg = ServeConfig {
            max_batch: 1_024,
            max_wait_us: 500_000,
            workers: 1,
            tenant_inflight_cap: 4,
            cache_capacity: 64,
            ..ServeConfig::default()
        };
        let tenants = [TenantConfig::default(), TenantConfig::default()];
        let ((sheds, t1_ok), report) = serve(&t, &cfg, &tenants, |h| {
            let mut sheds = 0u64;
            for i in 0..100u64 {
                match h.submit(req(0, i, &[3])) {
                    Ok(()) => {}
                    Err(ServeError::Overloaded { request }) => {
                        sheds += 1;
                        assert_eq!(request.indices, vec![3], "buffers must come back");
                    }
                    Err(e) => panic!("unexpected admission error: {e}"),
                }
            }
            // Fairness: tenant 1 is idle, so its budget is untouched and it
            // must be admitted despite tenant 0's flood.
            let t1_ok = h.submit(req(1, 1_000, &[7])).is_ok();
            (sheds, t1_ok)
        });
        assert_eq!(sheds, 96, "cap 4 admits exactly 4 of the flood");
        assert!(t1_ok, "hot tenant starved an idle one");
        assert_eq!(report.shed, 96);
        assert_eq!(report.completed, 5, "queued work is flushed at shutdown");
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn unknown_tenant_is_rejected_with_buffers() {
        let t = table(100);
        let tenants = [TenantConfig::default()];
        let (rejected, _) =
            serve(&t, &ServeConfig::default(), &tenants, |h| match h.submit(req(9, 0, &[1, 2])) {
                Err(ServeError::UnknownTenant { request }) => request.indices,
                other => panic!("expected UnknownTenant, got {other:?}"),
            });
        assert_eq!(rejected, vec![1, 2]);
    }

    #[test]
    fn mixed_precision_lanes_serve_according_to_tenant() {
        let t = table(300);
        let cfg = ServeConfig { workers: 2, ..ServeConfig::default() };
        let tenants = [
            TenantConfig { precision: InferencePrecision::F32 },
            TenantConfig { precision: InferencePrecision::Int8 },
        ];
        let (responses, report) = serve(&t, &cfg, &tenants, |h| {
            for i in 0..30u64 {
                h.submit(req((i % 2) as u32, i, &[(i * 3 % 300) as u32])).expect("under load");
            }
            drain(h, 30)
        });
        assert_eq!(responses.len(), 30);
        assert!(report.batches >= 2, "two lanes cannot share a batch");
        // F32 lane is exact; Int8 lane is close but quantized.
        let mut exact = TtInferenceSession::new(&t, 64);
        for r in &responses {
            let want = exact.lookup(&r.req.indices, &[0, 1]);
            let diff = r
                .req
                .out
                .iter()
                .zip(want.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            if r.req.tenant == 0 {
                assert_eq!(r.req.out.as_slice(), want.as_slice());
            } else {
                let scale = want.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
                assert!(diff < 0.05 * scale, "int8 lane diverged by {diff}");
            }
        }
    }

    #[test]
    fn report_counts_dedup_and_cache_effect() {
        let t = table(400);
        let cfg = ServeConfig { workers: 1, ..ServeConfig::default() };
        let tenants = [TenantConfig::default()];
        let (_, report) = serve(&t, &cfg, &tenants, |h| {
            // Heavy duplication across requests: everyone asks for row 42.
            for i in 0..64u64 {
                h.submit(req(0, i, &[42, 42, (i % 4) as u32])).expect("under load");
            }
            drain(h, 64)
        });
        assert_eq!(report.completed, 64);
        assert!(report.lookups > report.unique_rows, "cross-request dedup must collapse rows");
        assert!(report.cache_hits + report.cache_misses > 0, "cache counters must be reported");
    }

    #[test]
    fn shed_rate_is_zero_without_overload() {
        let r = ServeReport { submitted: 10, ..Default::default() };
        assert_eq!(r.shed_rate(), 0.0);
        let r2 = ServeReport { submitted: 8, shed: 2, ..Default::default() };
        assert!((r2.shed_rate() - 0.2).abs() < 1e-12);
    }
}
