//! # el-serve
//!
//! Online serving tier over the frozen-table inference path: turns a
//! concurrent stream of small per-user requests into batched, deduplicated
//! TT lookups.
//!
//! EL-Rec's Algorithm 1 dedups shared TT index prefixes *within* one
//! training batch. At serving time the same redundancy exists *across*
//! concurrent requests — power-law traffic means many in-flight requests
//! touch the same hot rows — so coalescing requests into one batch lets a
//! single [`el_core::plan::LookupPlan`] contract each duplicate row (and
//! each shared prefix) once, amortizing the chain work exactly the way the
//! paper amortizes it per batch. The pieces:
//!
//! * [`batch::Coalescer`] — merges queued requests into one CSR batch,
//!   serves it through [`el_core::TtInferenceSession::lookup_into`], and
//!   scatters rows back per request from recycled buffers (zero-alloc in
//!   steady state; proven by the `// CONTRACT: zero-alloc` analyzer).
//! * [`server`] — admission control (bounded per-tenant in-flight budgets,
//!   typed [`server::ServeError::Overloaded`] shedding, never a stall), a
//!   dispatcher that batches per precision lane up to
//!   `max_batch`/`max_wait_us`, and workers that run on the shared rayon
//!   pool with a per-tenant [`el_core::InferencePrecision`].
//! * [`metrics::LatencyHistogram`] — log-bucketed tail-latency accounting
//!   (p50/p99/p999) for the SLO harness.
//! * [`hosted::HostedReadTier`] — the sharded, replicated read path for
//!   hosted (uncompressed) tables: pooled lookups resolve each row
//!   through the training tier's consistent-hash placement
//!   (`el_pipeline::router`, DESIGN.md §14), bit-identical to the
//!   unsharded table; when a shard's primary copy is down, reads fail
//!   over to a backup within the configured staleness bound
//!   (degraded reads, DESIGN.md §15) instead of shedding admitted
//!   lookups, and return a typed error beyond it.
//!
//! The `serve_latency` bench (crates/bench) drives this tier with the
//! open-loop Zipf generator from `el_data::loadgen` and records the
//! tail-latency/shed-rate surface to `BENCH_serve_latency.json`.

#![forbid(unsafe_code)]

pub mod batch;
pub mod config;
pub mod hosted;
pub mod metrics;
pub mod server;
pub mod timing;

pub use batch::{Coalescer, ServeRequest, ServeResponse};
pub use config::ServeConfig;
pub use hosted::{HostedReadTier, ReadError};
pub use metrics::{DegradedReadCounters, LatencyHistogram};
pub use server::{serve, ServeError, ServeHandle, ServeReport, TenantConfig};
