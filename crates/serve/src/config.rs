//! Serving-tier configuration.
//!
//! Every knob has an `EL_SERVE_*` environment override (registered in
//! `docs/env-vars.md`), so the latency bench and the CI smoke job can sweep
//! configurations without recompiling.

use std::env;

/// Configuration of one serving tier instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum requests coalesced into one batched lookup. `1` disables
    /// coalescing (the request-at-a-time baseline the bench compares
    /// against).
    pub max_batch: usize,
    /// Maximum microseconds a pending batch may age before it is flushed
    /// even if under-full. `0` flushes immediately (latency-first).
    pub max_wait_us: u64,
    /// Worker tasks run on the shared rayon pool. Each worker owns its
    /// inference sessions (one per precision lane in use).
    pub workers: usize,
    /// Per-tenant in-flight budget: a tenant with this many unanswered
    /// requests has further submissions shed. This is the fairness
    /// mechanism — one hot tenant can fill at most its own budget, never
    /// the whole ingress queue.
    pub tenant_inflight_cap: usize,
    /// Prefix-product cache capacity of each worker session.
    pub cache_capacity: usize,
    /// Maximum applied-batch lag a hosted-read failover copy may serve
    /// with ([`crate::hosted::HostedReadTier`]): a backup further behind
    /// the shard's freshest watermark than this is unreadable, and the
    /// lookup returns a typed error instead of silently-stale rows.
    /// Mirrors the training pipeline's gather staleness bound.
    pub read_staleness_bound: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait_us: 200,
            workers: 1,
            tenant_inflight_cap: 256,
            cache_capacity: 4_096,
            read_staleness_bound: 6,
        }
    }
}

fn env_usize(name_value: Option<String>, default: usize) -> usize {
    name_value.and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

impl ServeConfig {
    /// Defaults overridden by the `EL_SERVE_*` environment knobs.
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            max_batch: env_usize(env::var("EL_SERVE_MAX_BATCH").ok(), d.max_batch).max(1),
            max_wait_us: env_usize(env::var("EL_SERVE_MAX_WAIT_US").ok(), d.max_wait_us as usize)
                as u64,
            workers: env_usize(env::var("EL_SERVE_WORKERS").ok(), d.workers).max(1),
            tenant_inflight_cap: env_usize(
                env::var("EL_SERVE_QUEUE_CAP").ok(),
                d.tenant_inflight_cap,
            )
            .max(1),
            cache_capacity: env_usize(env::var("EL_SERVE_CACHE_CAP").ok(), d.cache_capacity).max(1),
            read_staleness_bound: env_usize(
                env::var("EL_SERVE_READ_STALENESS").ok(),
                d.read_staleness_bound as usize,
            ) as u64,
        }
    }

    /// Builder-style override of the batch window.
    pub fn with_batching(mut self, max_batch: usize, max_wait_us: u64) -> Self {
        self.max_batch = max_batch.max(1);
        self.max_wait_us = max_wait_us;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.max_batch > 1);
        assert!(c.workers >= 1);
        assert!(c.tenant_inflight_cap >= 1);
    }

    #[test]
    fn env_parse_falls_back_on_garbage() {
        assert_eq!(env_usize(Some("not a number".into()), 7), 7);
        assert_eq!(env_usize(Some(" 12 ".into()), 7), 12);
        assert_eq!(env_usize(None, 7), 7);
    }

    #[test]
    fn with_batching_clamps_to_one() {
        let c = ServeConfig::default().with_batching(0, 50);
        assert_eq!(c.max_batch, 1);
        assert_eq!(c.max_wait_us, 50);
    }
}
