//! Log-bucketed latency accounting for the SLO harness.
//!
//! Tail percentiles over millions of samples need O(1) recording and a
//! fixed footprint, not a sorted vector: [`LatencyHistogram`] buckets
//! nanosecond values by (power of two x linear sub-bucket), giving a worst
//! case relative quantization error of `1/SUB_BUCKETS` (~3%) — far below
//! the run-to-run noise of any latency measurement, and independent of the
//! sample count.

/// Linear sub-buckets per power-of-two decade.
const SUB_BUCKETS: usize = 32;
/// Number of power-of-two decades (2^0 .. 2^63 ns covers any latency).
const DECADES: usize = 64;

/// Fixed-footprint histogram of nanosecond latencies.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_ns: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; DECADES * SUB_BUCKETS], total: 0, max_ns: 0 }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let decade = 63 - ns.leading_zeros() as usize;
        // Position within [2^decade, 2^(decade+1)): the top bits below the
        // leading one select the linear sub-bucket.
        let sub = ((ns - (1u64 << decade)) >> (decade - 5)) as usize;
        decade * SUB_BUCKETS + sub.min(SUB_BUCKETS - 1)
    }

    /// Lower bound of a bucket, used to report percentile values.
    fn bucket_floor(b: usize) -> u64 {
        if b < SUB_BUCKETS {
            return b as u64;
        }
        let decade = b / SUB_BUCKETS;
        let sub = (b % SUB_BUCKETS) as u64;
        (1u64 << decade) + (sub << (decade - 5))
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Value at quantile `q` in `[0, 1]` (0 when empty). Reported as the
    /// bucket floor, except the top bucket which reports the exact max.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let last_occupied = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if b == last_occupied {
                    // The exact maximum lives in this bucket and is a
                    // tighter answer than the bucket floor.
                    return self.max_ns;
                }
                return Self::bucket_floor(b).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// `(p50, p99, p999)` in nanoseconds.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile_ns(0.50), self.quantile_ns(0.99), self.quantile_ns(0.999))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Counters of the hosted tier's degraded-read path: how many pooled
/// lookups were served at all, and how many of those rode a backup copy
/// instead of the primary. Atomic so the read path can stay `&self`.
#[derive(Debug, Default)]
pub struct DegradedReadCounters {
    served: std::sync::atomic::AtomicU64,
    degraded: std::sync::atomic::AtomicU64,
}

impl DegradedReadCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served lookup; `degraded` marks a backup-served one.
    pub fn note(&self, degraded: bool) {
        use std::sync::atomic::Ordering::Relaxed;
        self.served.fetch_add(1, Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Relaxed);
        }
    }

    /// Lookups served (healthy and degraded alike — nothing admitted is
    /// shed by a failover).
    pub fn served(&self) -> u64 {
        self.served.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Lookups that were served from a backup copy.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn buckets_are_monotone_in_value() {
        let mut prev = 0;
        for ns in [0u64, 1, 31, 32, 33, 100, 1_000, 65_536, 1 << 30, u64::MAX / 2] {
            let b = LatencyHistogram::bucket_of(ns);
            assert!(b >= prev, "bucket order violated at {ns}");
            prev = b;
            assert!(LatencyHistogram::bucket_floor(b) <= ns, "floor above value at {ns}");
        }
    }

    #[test]
    fn quantiles_track_a_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=100_000u64 {
            h.record(ns);
        }
        let p50 = h.quantile_ns(0.5) as f64;
        let p99 = h.quantile_ns(0.99) as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.05, "p50 off: {p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.05, "p99 off: {p99}");
        assert_eq!(h.quantile_ns(1.0), 100_000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..5_000u64 {
            let v = (i * 7919) % 1_000_000;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.percentiles(), both.percentiles());
        assert_eq!(a.max_ns(), both.max_ns());
    }

    #[test]
    fn degraded_counters_split_served_from_degraded() {
        let c = DegradedReadCounters::new();
        c.note(false);
        c.note(true);
        c.note(false);
        assert_eq!(c.served(), 3);
        assert_eq!(c.degraded(), 1);
    }

    #[test]
    fn tail_is_distinguished_from_body() {
        let mut h = LatencyHistogram::new();
        for _ in 0..9_900 {
            h.record(1_000);
        }
        for _ in 0..100 {
            h.record(1_000_000);
        }
        assert!(h.quantile_ns(0.5) < 2_000);
        assert!(h.quantile_ns(0.999) > 500_000, "p999 must surface the slow 1%");
    }
}
