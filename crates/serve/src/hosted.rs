//! Sharded, replicated read path for hosted (uncompressed) embedding
//! tables.
//!
//! The training tier shards its host-resident tables across N parameter
//! servers (`el_pipeline::router`, DESIGN.md §14) and replicates each
//! shard across K lockstep members (DESIGN.md §15). A serving replica
//! that reads those same hosted tables must resolve rows through the
//! **same** placement function, or a resharding would silently serve rows
//! from the wrong shard. [`HostedReadTier`] splits a set of hosted tables
//! under a [`ShardConfig`] exactly the way the training tier does and
//! routes every pooled lookup row through
//! [`el_pipeline::ShardLayout::route`] — so a lookup over the sharded
//! tier is byte-identical to [`EmbeddingBag::forward`] over the unsharded
//! table, which the unit tests pin for every layout.
//!
//! **Degraded reads.** Each shard may hold several copies, fed by the
//! training tier's replication stream, each stamped with the applied
//! watermark its bytes reflect. When a copy is marked down (its feed
//! went silent, or the failure detector suspected its host), pooled
//! lookups fail over to the next copy — but only if that copy's
//! watermark lags the shard's freshest known watermark by at most the
//! configured `read_staleness_bound`, the same bounded-staleness
//! contract the training pipeline enforces on gathers. Within the bound
//! a degraded read serves real (slightly older) trained bytes and sheds
//! nothing that was admitted; beyond it the tier returns a typed
//! [`ReadError::ShardUnavailable`] rather than silently serving rows
//! staler than the contract allows.

use crate::metrics::DegradedReadCounters;
use el_dlrm::embedding_bag::EmbeddingBag;
use el_pipeline::{split_tables, RouterError, ShardConfig, ShardLayout};
use el_tensor::Matrix;
use std::fmt;

/// Why a hosted read could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadError {
    /// The row could not be resolved through the placement.
    Route(RouterError),
    /// Every live copy of the shard lags the freshest watermark beyond
    /// the staleness bound — serving would violate the read contract.
    ShardUnavailable {
        /// The unservable shard.
        shard: u32,
        /// The smallest watermark lag among live copies (`u64::MAX` when
        /// every copy is down).
        lag: u64,
        /// The configured staleness bound.
        bound: u64,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Route(e) => write!(f, "routing failed: {e}"),
            ReadError::ShardUnavailable { shard, lag, bound } => write!(
                f,
                "shard {shard} unavailable: best live copy lags {lag} batches, bound is {bound}"
            ),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<RouterError> for ReadError {
    fn from(e: RouterError) -> Self {
        ReadError::Route(e)
    }
}

/// One copy of a shard's sub-tables with its replication feed state.
struct ReplicaCopy {
    /// The copy's sub-tables, one `(table_id, bag)` per hosted table.
    tables: Vec<(usize, EmbeddingBag)>,
    /// Applied-batch watermark the copy's bytes reflect.
    applied: u64,
    /// Whether the copy is currently unreadable (feed lost or host
    /// suspected).
    down: bool,
}

/// A read-only sharded view of hosted embedding tables, placed under the
/// training tier's consistent-hash layout, with per-shard replica copies
/// and bounded-staleness degraded reads.
pub struct HostedReadTier {
    layout: ShardLayout,
    /// `shards[s][r]` is copy `r` of shard `s`.
    shards: Vec<Vec<ReplicaCopy>>,
    /// Maximum watermark lag a failover copy may serve with.
    read_staleness_bound: u64,
    /// Served / degraded-read accounting.
    counters: DegradedReadCounters,
}

impl HostedReadTier {
    /// Splits `tables` across shards under `cfg`'s placement, one copy
    /// per shard (the unreplicated read tier).
    pub fn new(tables: &[(usize, EmbeddingBag)], cfg: &ShardConfig) -> Result<Self, RouterError> {
        Self::replicated(tables, cfg, 1, u64::MAX)
    }

    /// Splits `tables` across shards with `replicas` identical copies
    /// per shard; degraded reads may serve from a copy lagging the
    /// freshest watermark by at most `read_staleness_bound`.
    pub fn replicated(
        tables: &[(usize, EmbeddingBag)],
        cfg: &ShardConfig,
        replicas: u32,
        read_staleness_bound: u64,
    ) -> Result<Self, RouterError> {
        let layout = ShardLayout::place_for(cfg, tables);
        let shards = split_tables(tables, &layout)?
            .into_iter()
            .map(|sub| {
                (0..replicas.max(1))
                    .map(|_| ReplicaCopy { tables: sub.clone(), applied: 0, down: false })
                    .collect()
            })
            .collect();
        Ok(Self { layout, shards, read_staleness_bound, counters: DegradedReadCounters::new() })
    }

    /// The placement this tier resolves rows through.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Copies per shard.
    pub fn replicas(&self) -> usize {
        self.shards.first().map_or(0, Vec::len)
    }

    /// Served / degraded-read accounting.
    pub fn counters(&self) -> &DegradedReadCounters {
        &self.counters
    }

    /// Marks one copy unreadable (replication feed lost or host
    /// suspected); reads fail over to the next copy within the bound.
    pub fn mark_down(&mut self, shard: usize, rank: usize) {
        self.shards[shard][rank].down = true;
    }

    /// Marks one copy readable again (after catch-up).
    pub fn mark_up(&mut self, shard: usize, rank: usize) {
        self.shards[shard][rank].down = false;
    }

    /// Records the applied watermark copy `rank` of `shard` reflects —
    /// the replication feed calls this as it installs updates.
    pub fn set_applied(&mut self, shard: usize, rank: usize, applied: u64) {
        self.shards[shard][rank].applied = applied;
    }

    /// Replaces copy `rank`'s sub-tables wholesale (a catch-up install).
    pub fn install_copy(
        &mut self,
        shard: usize,
        rank: usize,
        tables: Vec<(usize, EmbeddingBag)>,
        applied: u64,
    ) {
        self.shards[shard][rank] = ReplicaCopy { tables, applied, down: false };
    }

    /// Picks the copy of `shard` a read is served from: the first
    /// readable copy in rank order whose lag from the shard's freshest
    /// known watermark is within the bound. Rank 0 at lag 0 is the
    /// healthy fast path.
    fn serving_rank(&self, shard: usize) -> Result<usize, ReadError> {
        let copies = &self.shards[shard];
        let freshest = copies.iter().map(|c| c.applied).max().unwrap_or(0);
        let mut best_lag = u64::MAX;
        for (r, c) in copies.iter().enumerate() {
            if c.down {
                continue;
            }
            let lag = freshest - c.applied;
            if lag <= self.read_staleness_bound {
                return Ok(r);
            }
            best_lag = best_lag.min(lag);
        }
        Err(ReadError::ShardUnavailable {
            shard: shard as u32,
            lag: best_lag,
            bound: self.read_staleness_bound,
        })
    }

    /// Embedding dimension of `table_id`.
    fn dim_of(&self, table_id: usize) -> Result<usize, RouterError> {
        self.shards
            .iter()
            .flat_map(|copies| copies.first())
            .flat_map(|c| c.tables.iter())
            .find(|(id, _)| *id == table_id)
            .map(|(_, bag)| bag.dim())
            .ok_or(RouterError::UnknownTable(table_id))
    }

    /// Sum-pooled lookup over CSR `(indices, offsets)`, resolving every
    /// row to its owning shard through the layout and each shard to its
    /// serving copy. Accumulation order is the CSR index order — the
    /// same order [`EmbeddingBag::forward`] uses — so the result is
    /// bit-identical to the unsharded lookup when served at the freshest
    /// watermark, and bit-identical to that copy's (bounded-stale)
    /// snapshot when degraded.
    pub fn pooled_lookup(
        &self,
        table_id: usize,
        indices: &[u32],
        offsets: &[u32],
    ) -> Result<Matrix, ReadError> {
        let dim = self.dim_of(table_id)?;
        let batch = offsets.len().saturating_sub(1);
        let mut out = Matrix::zeros(batch, dim);
        // the serving copy is pinned per shard for the whole lookup, so
        // one response never mixes watermarks within a shard
        let mut serving: Vec<Option<usize>> = vec![None; self.shards.len()];
        let mut degraded = false;
        for s in 0..batch {
            let dst = out.row_mut(s);
            for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
                let route = self.layout.route(table_id, i)?;
                let shard = route.shard as usize;
                let rank = match serving[shard] {
                    Some(r) => r,
                    None => {
                        let r = self.serving_rank(shard)?;
                        serving[shard] = Some(r);
                        degraded |= r > 0;
                        r
                    }
                };
                let copy = &self.shards[shard][rank];
                let (_, bag) = copy
                    .tables
                    .iter()
                    .find(|(id, _)| *id == table_id)
                    .expect("split_tables materializes every table on every shard");
                let row = bag.weight.row(route.local as usize);
                for (d, v) in dst.iter_mut().zip(row) {
                    *d += v;
                }
            }
        }
        self.counters.note(degraded);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_tables(rng: &mut StdRng) -> Vec<(usize, EmbeddingBag)> {
        vec![(0, EmbeddingBag::new(100, 8, 0.1, rng)), (1, EmbeddingBag::new(57, 8, 0.1, rng))]
    }

    fn toy_csr(rng: &mut StdRng, rows: usize, batch: usize) -> (Vec<u32>, Vec<u32>) {
        let mut indices = Vec::new();
        let mut offsets = vec![0u32];
        for _ in 0..batch {
            for _ in 0..rng.gen_range(1..5) {
                indices.push(rng.gen_range(0..rows as u32));
            }
            offsets.push(indices.len() as u32);
        }
        (indices, offsets)
    }

    #[test]
    fn sharded_lookup_is_byte_identical_to_the_unsharded_bag() {
        let mut rng = StdRng::seed_from_u64(7);
        let tables = toy_tables(&mut rng);
        for num_shards in [1u32, 2, 3, 5] {
            let cfg = ShardConfig { num_shards, rows_per_range: 16, placement_seed: 0xE1 };
            let tier = HostedReadTier::new(&tables, &cfg).unwrap();
            assert_eq!(tier.num_shards(), num_shards as usize);
            for (table_id, bag) in &tables {
                let (indices, offsets) = toy_csr(&mut rng, bag.num_rows(), 6);
                let want = bag.forward(&indices, &offsets);
                let got = tier.pooled_lookup(*table_id, &indices, &offsets).unwrap();
                assert_eq!(
                    got.as_slice(),
                    want.as_slice(),
                    "{num_shards} shards, table {table_id}: routed read must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn unknown_tables_and_rows_are_typed_errors() {
        let mut rng = StdRng::seed_from_u64(9);
        let tables = toy_tables(&mut rng);
        let cfg = ShardConfig { num_shards: 2, rows_per_range: 16, placement_seed: 3 };
        let tier = HostedReadTier::new(&tables, &cfg).unwrap();
        assert!(matches!(
            tier.pooled_lookup(9, &[0], &[0, 1]),
            Err(ReadError::Route(RouterError::UnknownTable(9)))
        ));
        assert!(matches!(
            tier.pooled_lookup(1, &[57], &[0, 1]),
            Err(ReadError::Route(RouterError::RowOutOfRange { table: 1, row: 57, .. }))
        ));
    }

    #[test]
    fn degraded_reads_fail_over_byte_identically_within_the_bound() {
        let mut rng = StdRng::seed_from_u64(11);
        let tables = toy_tables(&mut rng);
        let cfg = ShardConfig { num_shards: 3, rows_per_range: 16, placement_seed: 0xE1 };
        let mut tier = HostedReadTier::replicated(&tables, &cfg, 2, 6).unwrap();
        assert_eq!(tier.replicas(), 2);
        // the backup lags the primary by 3 batches — within the bound —
        // and (lockstep) holds byte-identical tables at its watermark
        for s in 0..tier.num_shards() {
            tier.set_applied(s, 0, 10);
            tier.set_applied(s, 1, 7);
            tier.mark_down(s, 0);
        }
        for (table_id, bag) in &tables {
            let (indices, offsets) = toy_csr(&mut rng, bag.num_rows(), 6);
            let want = bag.forward(&indices, &offsets);
            let got = tier
                .pooled_lookup(*table_id, &indices, &offsets)
                .expect("admitted reads are served, not shed, during failover");
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "degraded read must serve the backup's bytes verbatim"
            );
        }
        assert_eq!(tier.counters().served(), 2);
        assert_eq!(tier.counters().degraded(), 2, "both lookups rode the backup");
    }

    #[test]
    fn reads_beyond_the_staleness_bound_are_typed_errors() {
        let mut rng = StdRng::seed_from_u64(13);
        let tables = toy_tables(&mut rng);
        let cfg = ShardConfig { num_shards: 1, rows_per_range: 16, placement_seed: 0xE1 };
        let mut tier = HostedReadTier::replicated(&tables, &cfg, 2, 6).unwrap();
        tier.set_applied(0, 0, 20);
        tier.set_applied(0, 1, 5); // lag 15 > bound 6
        tier.mark_down(0, 0);
        assert_eq!(
            tier.pooled_lookup(0, &[1], &[0, 1]),
            Err(ReadError::ShardUnavailable { shard: 0, lag: 15, bound: 6 })
        );
        // catch-up brings the backup inside the bound: reads resume
        tier.set_applied(0, 1, 18);
        assert!(tier.pooled_lookup(0, &[1], &[0, 1]).is_ok());
        // and the recovered primary takes back the fast path
        tier.mark_up(0, 0);
        assert!(tier.pooled_lookup(0, &[1], &[0, 1]).is_ok());
        assert_eq!(tier.counters().degraded(), 1, "only the backup-served read was degraded");
    }

    #[test]
    fn install_copy_replaces_bytes_and_watermark() {
        let mut rng = StdRng::seed_from_u64(17);
        let tables = toy_tables(&mut rng);
        let cfg = ShardConfig { num_shards: 1, rows_per_range: 16, placement_seed: 0xE1 };
        let mut tier = HostedReadTier::replicated(&tables, &cfg, 2, 0).unwrap();
        // a zeroed catch-up copy at the freshest watermark serves zeros
        let mut zeroed: Vec<(usize, EmbeddingBag)> =
            tier.shards[0][0].tables.iter().map(|(id, bag)| (*id, bag.clone())).collect();
        for (_, bag) in &mut zeroed {
            for v in bag.weight.as_mut_slice() {
                *v = 0.0;
            }
        }
        tier.set_applied(0, 0, 4);
        tier.install_copy(0, 1, zeroed, 4);
        tier.mark_down(0, 0);
        let got = tier.pooled_lookup(0, &[3, 4], &[0, 2]).unwrap();
        assert!(got.as_slice().iter().all(|&v| v == 0.0));
    }
}
