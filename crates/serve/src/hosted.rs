//! Sharded read path for hosted (uncompressed) embedding tables.
//!
//! The training tier shards its host-resident tables across N parameter
//! servers (`el_pipeline::router`, DESIGN.md §14). A serving replica that
//! reads those same hosted tables must resolve rows through the **same**
//! placement function, or a resharding would silently serve rows from the
//! wrong shard. [`HostedReadTier`] splits a set of hosted tables under a
//! [`ShardConfig`] exactly the way the training tier does and routes
//! every pooled lookup row through [`el_pipeline::ShardLayout::route`] —
//! so a lookup over the sharded tier is byte-identical to
//! [`EmbeddingBag::forward`] over the unsharded table, which the unit
//! tests pin for every layout.

use el_dlrm::embedding_bag::EmbeddingBag;
use el_pipeline::{split_tables, RouterError, ShardConfig, ShardLayout};
use el_tensor::Matrix;

/// A read-only sharded view of hosted embedding tables, placed under the
/// training tier's consistent-hash layout.
pub struct HostedReadTier {
    layout: ShardLayout,
    /// `shards[s]` holds shard `s`'s sub-tables, one `(table_id, bag)`
    /// per hosted table (possibly with zero rows on that shard).
    shards: Vec<Vec<(usize, EmbeddingBag)>>,
}

impl HostedReadTier {
    /// Splits `tables` across shards under `cfg`'s placement.
    pub fn new(tables: &[(usize, EmbeddingBag)], cfg: &ShardConfig) -> Result<Self, RouterError> {
        let layout = ShardLayout::place_for(cfg, tables);
        let shards = split_tables(tables, &layout)?;
        Ok(Self { layout, shards })
    }

    /// The placement this tier resolves rows through.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Embedding dimension of `table_id`.
    fn dim_of(&self, table_id: usize) -> Result<usize, RouterError> {
        self.shards
            .iter()
            .flat_map(|subs| subs.iter())
            .find(|(id, _)| *id == table_id)
            .map(|(_, bag)| bag.dim())
            .ok_or(RouterError::UnknownTable(table_id))
    }

    /// Sum-pooled lookup over CSR `(indices, offsets)`, resolving every
    /// row to its owning shard through the layout. Accumulation order is
    /// the CSR index order — the same order [`EmbeddingBag::forward`]
    /// uses — so the result is bit-identical to the unsharded lookup.
    pub fn pooled_lookup(
        &self,
        table_id: usize,
        indices: &[u32],
        offsets: &[u32],
    ) -> Result<Matrix, RouterError> {
        let dim = self.dim_of(table_id)?;
        let batch = offsets.len().saturating_sub(1);
        let mut out = Matrix::zeros(batch, dim);
        for s in 0..batch {
            let dst = out.row_mut(s);
            for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
                let route = self.layout.route(table_id, i)?;
                let sub = &self.shards[route.shard as usize];
                let (_, bag) = sub
                    .iter()
                    .find(|(id, _)| *id == table_id)
                    .expect("split_tables materializes every table on every shard");
                let row = bag.weight.row(route.local as usize);
                for (d, v) in dst.iter_mut().zip(row) {
                    *d += v;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_tables(rng: &mut StdRng) -> Vec<(usize, EmbeddingBag)> {
        vec![(0, EmbeddingBag::new(100, 8, 0.1, rng)), (1, EmbeddingBag::new(57, 8, 0.1, rng))]
    }

    fn toy_csr(rng: &mut StdRng, rows: usize, batch: usize) -> (Vec<u32>, Vec<u32>) {
        let mut indices = Vec::new();
        let mut offsets = vec![0u32];
        for _ in 0..batch {
            for _ in 0..rng.gen_range(1..5) {
                indices.push(rng.gen_range(0..rows as u32));
            }
            offsets.push(indices.len() as u32);
        }
        (indices, offsets)
    }

    #[test]
    fn sharded_lookup_is_byte_identical_to_the_unsharded_bag() {
        let mut rng = StdRng::seed_from_u64(7);
        let tables = toy_tables(&mut rng);
        for num_shards in [1u32, 2, 3, 5] {
            let cfg = ShardConfig { num_shards, rows_per_range: 16, placement_seed: 0xE1 };
            let tier = HostedReadTier::new(&tables, &cfg).unwrap();
            assert_eq!(tier.num_shards(), num_shards as usize);
            for (table_id, bag) in &tables {
                let (indices, offsets) = toy_csr(&mut rng, bag.num_rows(), 6);
                let want = bag.forward(&indices, &offsets);
                let got = tier.pooled_lookup(*table_id, &indices, &offsets).unwrap();
                assert_eq!(
                    got.as_slice(),
                    want.as_slice(),
                    "{num_shards} shards, table {table_id}: routed read must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn unknown_tables_and_rows_are_typed_errors() {
        let mut rng = StdRng::seed_from_u64(9);
        let tables = toy_tables(&mut rng);
        let cfg = ShardConfig { num_shards: 2, rows_per_range: 16, placement_seed: 3 };
        let tier = HostedReadTier::new(&tables, &cfg).unwrap();
        assert!(matches!(tier.pooled_lookup(9, &[0], &[0, 1]), Err(RouterError::UnknownTable(9))));
        assert!(matches!(
            tier.pooled_lookup(1, &[57], &[0, 1]),
            Err(RouterError::RowOutOfRange { table: 1, row: 57, .. })
        ));
    }
}
