//! Monotonic serving clock.
//!
//! One `Instant` anchor taken at server start; every stamp is nanoseconds
//! since that anchor, so arrival times from an open-loop trace and
//! completion times from workers live on the same axis as plain `u64`s
//! (cheap to store per request, cheap to subtract).

use std::time::Instant;

/// Monotonic nanosecond clock anchored at construction.
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    start: Instant,
}

impl Clock {
    /// Anchors the clock at the current instant.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Nanoseconds elapsed since the anchor.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let c = Clock::start();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
