//! Pairwise dot-product feature interaction (paper Figure 2).
//!
//! DLRM concatenates the bottom-MLP output with all embedding vectors into
//! `F` features of dimension `d` per sample, computes the dot products of
//! every unordered feature pair, and concatenates those `F*(F-1)/2` scalars
//! with the bottom-MLP output as the top-MLP input.

// The pair loops index `features[i]`/`features[j]` by position — the index
// form is the direct transcription of the (i, j) pair enumeration.
#![allow(clippy::needless_range_loop)]

use el_tensor::Matrix;

/// The feature-interaction layer; stateless, shapes fixed at construction.
#[derive(Clone, Copy, Debug)]
pub struct Interaction {
    /// Number of interacting features per sample (1 + number of tables).
    pub num_features: usize,
    /// Feature dimension.
    pub dim: usize,
}

impl Interaction {
    /// An interaction over `num_features` features of width `dim`.
    pub fn new(num_features: usize, dim: usize) -> Self {
        assert!(num_features >= 2, "interaction needs at least two features");
        Self { num_features, dim }
    }

    /// Number of feature pairs.
    pub fn num_pairs(&self) -> usize {
        self.num_features * (self.num_features - 1) / 2
    }

    /// Output width: bottom-MLP passthrough + pair dot products.
    pub fn out_dim(&self) -> usize {
        self.dim + self.num_pairs()
    }

    /// Forward: `features[f]` is a `batch x dim` matrix (feature 0 is the
    /// bottom-MLP output, which is also passed through).
    pub fn forward(&self, features: &[&Matrix]) -> Matrix {
        assert_eq!(features.len(), self.num_features);
        let batch = features[0].rows();
        for f in features {
            assert_eq!(f.rows(), batch, "feature batch mismatch");
            assert_eq!(f.cols(), self.dim, "feature dim mismatch");
        }
        let mut out = Matrix::zeros(batch, self.out_dim());
        for s in 0..batch {
            let dst = out.row_mut(s);
            dst[..self.dim].copy_from_slice(features[0].row(s));
            let mut p = self.dim;
            for i in 0..self.num_features {
                let fi = features[i].row(s);
                for j in (i + 1)..self.num_features {
                    let fj = features[j].row(s);
                    let mut acc = 0.0f32;
                    for (a, b) in fi.iter().zip(fj) {
                        acc += a * b;
                    }
                    dst[p] = acc;
                    p += 1;
                }
            }
        }
        out
    }

    /// Backward: splits `d_out` into per-feature gradients.
    pub fn backward(&self, features: &[&Matrix], d_out: &Matrix) -> Vec<Matrix> {
        assert_eq!(features.len(), self.num_features);
        let batch = features[0].rows();
        assert_eq!(d_out.rows(), batch);
        assert_eq!(d_out.cols(), self.out_dim());

        let mut grads: Vec<Matrix> =
            (0..self.num_features).map(|_| Matrix::zeros(batch, self.dim)).collect();
        for s in 0..batch {
            let g = d_out.row(s);
            // passthrough part
            grads[0].row_mut(s).copy_from_slice(&g[..self.dim]);
            let mut p = self.dim;
            for i in 0..self.num_features {
                for j in (i + 1)..self.num_features {
                    let gp = g[p];
                    p += 1;
                    if gp == 0.0 {
                        continue;
                    }
                    // d(f_i . f_j)/df_i = f_j and vice versa
                    let fj = features[j].row(s).to_vec();
                    let fi = features[i].row(s).to_vec();
                    for (dst, v) in grads[i].row_mut(s).iter_mut().zip(&fj) {
                        *dst += gp * v;
                    }
                    for (dst, v) in grads[j].row_mut(s).iter_mut().zip(&fi) {
                        *dst += gp * v;
                    }
                }
            }
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn output_layout_is_passthrough_then_pairs() {
        let inter = Interaction::new(3, 2);
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let c = Matrix::from_vec(1, 2, vec![5.0, 6.0]);
        let out = inter.forward(&[&a, &b, &c]);
        assert_eq!(out.cols(), 2 + 3);
        // passthrough
        assert_eq!(&out.row(0)[..2], &[1.0, 2.0]);
        // pairs in (0,1), (0,2), (1,2) order
        assert_eq!(out.row(0)[2], 1.0 * 3.0 + 2.0 * 4.0);
        assert_eq!(out.row(0)[3], 1.0 * 5.0 + 2.0 * 6.0);
        assert_eq!(out.row(0)[4], 3.0 * 5.0 + 4.0 * 6.0);
    }

    #[test]
    fn gradient_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let inter = Interaction::new(3, 4);
        let feats: Vec<Matrix> = (0..3).map(|_| Matrix::uniform(2, 4, 1.0, &mut rng)).collect();
        let refs: Vec<&Matrix> = feats.iter().collect();
        let gsel = Matrix::uniform(2, inter.out_dim(), 1.0, &mut rng);

        let grads = inter.backward(&refs, &gsel);

        let loss = |feats: &[Matrix]| -> f32 {
            let refs: Vec<&Matrix> = feats.iter().collect();
            inter.forward(&refs).as_slice().iter().zip(gsel.as_slice()).map(|(y, g)| y * g).sum()
        };
        let eps = 1e-3;
        for f in 0..3 {
            for &(s, c) in &[(0usize, 0usize), (1, 3)] {
                let mut pert = feats.clone();
                let orig = pert[f].get(s, c);
                pert[f].set(s, c, orig + eps);
                let up = loss(&pert);
                pert[f].set(s, c, orig - eps);
                let down = loss(&pert);
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grads[f].get(s, c);
                assert!(
                    (numeric - analytic).abs() < 2e-2,
                    "feature {f} ({s},{c}): {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn pair_count_formula() {
        assert_eq!(Interaction::new(27, 16).num_pairs(), 27 * 26 / 2);
        assert_eq!(Interaction::new(2, 16).num_pairs(), 1);
    }

    #[test]
    #[should_panic(expected = "feature dim mismatch")]
    fn dim_mismatch_panics() {
        let inter = Interaction::new(2, 4);
        let a = Matrix::zeros(1, 4);
        let b = Matrix::zeros(1, 3);
        let _ = inter.forward(&[&a, &b]);
    }
}
