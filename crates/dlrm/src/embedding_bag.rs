//! Uncompressed embedding bag — the `nn.EmbeddingBag(mode="sum")` baseline.
//!
//! Stores the full `rows x dim` table and trains it with sparse gradients:
//! only rows touched by a batch are updated, exactly like the reference
//! DLRM. This is the table the paper's DLRM/FAE baselines use, the
//! comparison point of Table III (footprint) and the host-memory resident
//! of the pipeline trainer.

use el_tensor::Matrix;
use rand::Rng;

/// A dense embedding table with sum pooling over CSR `(indices, offsets)`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct EmbeddingBag {
    /// The table, `rows x dim`.
    pub weight: Matrix,
}

/// Sparse gradient of an embedding bag: unique touched rows and their
/// gradient rows (the payload pushed to the parameter server).
#[derive(Clone, Debug, Default)]
pub struct SparseGrad {
    /// Unique touched row indices (sorted).
    pub indices: Vec<u32>,
    /// Gradient rows, `indices.len() x dim`, row-major.
    pub values: Vec<f32>,
    /// Embedding dimension.
    pub dim: usize,
}

impl EmbeddingBag {
    /// A table initialized uniformly in `[-scale, scale]` (the reference
    /// DLRM uses `scale = 1/sqrt(rows)`-style inits; any small scale works).
    pub fn new(rows: usize, dim: usize, scale: f32, rng: &mut impl Rng) -> Self {
        Self { weight: Matrix::uniform(rows, dim, scale, rng) }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.weight.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.weight.cols()
    }

    /// Table footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.weight.footprint_bytes()
    }

    /// Sum-pooled lookup.
    pub fn forward(&self, indices: &[u32], offsets: &[u32]) -> Matrix {
        let dim = self.dim();
        let batch = offsets.len() - 1;
        let mut out = Matrix::zeros(batch, dim);
        for s in 0..batch {
            let dst = out.row_mut(s);
            for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
                let row = self.weight.row(i as usize);
                for (d, v) in dst.iter_mut().zip(row) {
                    *d += v;
                }
            }
        }
        out
    }

    /// Computes the sparse gradient of a batch without touching weights.
    pub fn sparse_grad(&self, indices: &[u32], offsets: &[u32], d_out: &Matrix) -> SparseGrad {
        let dim = self.dim();
        assert_eq!(d_out.cols(), dim);
        assert_eq!(d_out.rows() + 1, offsets.len());
        let mut unique: Vec<u32> = indices.to_vec();
        unique.sort_unstable();
        unique.dedup();
        // PANIC-OK: `unique` is built from exactly these indices above.
        let slot_of = |i: u32| unique.binary_search(&i).expect("index seen in batch");
        let mut values = vec![0.0f32; unique.len() * dim];
        for s in 0..d_out.rows() {
            let g = d_out.row(s);
            for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
                let slot = slot_of(i);
                for (v, gv) in values[slot * dim..(slot + 1) * dim].iter_mut().zip(g) {
                    *v += gv;
                }
            }
        }
        SparseGrad { indices: unique, values, dim }
    }

    /// Applies a sparse gradient with SGD.
    pub fn apply_sparse_grad(&mut self, grad: &SparseGrad, lr: f32) {
        assert_eq!(grad.dim, self.dim());
        for (slot, &i) in grad.indices.iter().enumerate() {
            let row = self.weight.row_mut(i as usize);
            let g = &grad.values[slot * grad.dim..(slot + 1) * grad.dim];
            for (w, gv) in row.iter_mut().zip(g) {
                *w -= lr * gv;
            }
        }
    }

    /// Convenience: backward + update in one call.
    pub fn backward_sgd(&mut self, indices: &[u32], offsets: &[u32], d_out: &Matrix, lr: f32) {
        let grad = self.sparse_grad(indices, offsets, d_out);
        self.apply_sparse_grad(&grad, lr);
    }

    /// Backward + sparse-Adagrad update. The state must cover the whole
    /// table (`Adagrad::new(rows * dim)`), but only touched rows pay.
    pub fn backward_adagrad(
        &mut self,
        indices: &[u32],
        offsets: &[u32],
        d_out: &Matrix,
        lr: f32,
        state: &mut crate::optim::Adagrad,
    ) {
        let grad = self.sparse_grad(indices, offsets, d_out);
        let dim = self.dim();
        state.step_rows(self.weight.as_mut_slice(), dim, &grad.indices, &grad.values, lr);
    }

    /// Copies selected rows into a dense matrix (parameter-server pull).
    pub fn gather_rows(&self, indices: &[u32]) -> Matrix {
        let dim = self.dim();
        let mut out = Matrix::zeros(indices.len(), dim);
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.weight.row(i as usize));
        }
        out
    }

    /// Overwrites selected rows (parameter-server push / cache sync).
    pub fn scatter_rows(&mut self, indices: &[u32], rows: &Matrix) {
        assert_eq!(rows.rows(), indices.len());
        assert_eq!(rows.cols(), self.dim());
        for (r, &i) in indices.iter().enumerate() {
            self.weight.row_mut(i as usize).copy_from_slice(rows.row(r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bag() -> EmbeddingBag {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        EmbeddingBag::new(10, 4, 0.5, &mut rng)
    }

    #[test]
    fn forward_sums_rows() {
        let b = bag();
        let out = b.forward(&[2, 5], &[0, 2]);
        for c in 0..4 {
            let expect = b.weight.get(2, c) + b.weight.get(5, c);
            assert!((out.get(0, c) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_sample_gives_zero() {
        let b = bag();
        let out = b.forward(&[1], &[0, 0, 1]);
        assert!(out.row(0).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn sparse_grad_aggregates_duplicates() {
        let b = bag();
        let d = Matrix::full(2, 4, 1.0);
        // index 3 appears in both samples, and twice in sample 0
        let g = b.sparse_grad(&[3, 3, 3, 7], &[0, 2, 4], &d);
        assert_eq!(g.indices, vec![3, 7]);
        // 3 lookups of index 3, each with gradient 1.0
        assert!((g.values[0] - 3.0).abs() < 1e-6);
        assert!((g.values[4] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn backward_sgd_updates_only_touched_rows() {
        let mut b = bag();
        let before = b.weight.clone();
        let d = Matrix::full(1, 4, 1.0);
        b.backward_sgd(&[4], &[0, 1], &d, 0.1);
        for r in 0..10 {
            for c in 0..4 {
                let delta = before.get(r, c) - b.weight.get(r, c);
                if r == 4 {
                    assert!((delta - 0.1).abs() < 1e-6);
                } else {
                    assert_eq!(delta, 0.0);
                }
            }
        }
    }

    #[test]
    fn tiny_interior_updates_vanish_under_int8_but_not_f32() {
        // The §I claim in miniature: an update far below the quantization
        // step on an *interior* coordinate (row min/max unchanged, so the
        // affine parameters stay put) is lost by int8 round-tripping; full
        // f32 storage retains it. This is the mechanism behind quantized
        // training's accuracy erosion. Lives here (not in el_core's
        // quantized module) because the f32 side is this crate's dense bag.
        let dense = Matrix::from_vec(1, 4, vec![-0.5, 0.1, 0.2, 0.5]);
        let mut q = el_core::quantized::QuantizedEmbeddingBag::from_dense(&dense);
        let mut f = EmbeddingBag { weight: dense.clone() };
        let grad = Matrix::from_vec(1, 4, vec![0.0, 1e-5, 0.0, 0.0]);
        let q_before = q.forward(&[0], &[0, 1]);
        let f_before = f.forward(&[0], &[0, 1]);
        q.backward_sgd(&[0], &[0, 1], &grad, 0.1);
        f.backward_sgd(&[0], &[0, 1], &grad, 0.1);
        let q_delta = q.forward(&[0], &[0, 1]).max_abs_diff(&q_before);
        let f_delta = f.forward(&[0], &[0, 1]).max_abs_diff(&f_before);
        assert_eq!(q_delta, 0.0, "int8 should swallow a sub-step interior update");
        assert!(f_delta > 0.0, "f32 retains it");
    }

    #[test]
    fn gather_scatter_round_trip() {
        let mut b = bag();
        let rows = b.gather_rows(&[1, 8]);
        let mut modified = rows.clone();
        modified.scale(2.0);
        b.scatter_rows(&[1, 8], &modified);
        let again = b.gather_rows(&[1, 8]);
        assert!(again.max_abs_diff(&modified) < 1e-6);
    }

    #[test]
    fn matches_tt_bag_pooling_semantics() {
        // Dense and TT bags must implement the same pooling contract.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let dense = EmbeddingBag::new(30, 8, 0.3, &mut rng);
        let indices = [1u32, 5, 1, 9];
        let offsets = [0u32, 3, 4];
        let out = dense.forward(&indices, &offsets);
        // sample 0 = row1 + row5 + row1
        for c in 0..8 {
            let expect = 2.0 * dense.weight.get(1, c) + dense.weight.get(5, c);
            assert!((out.get(0, c) - expect).abs() < 1e-5);
        }
    }
}
