//! Binary cross-entropy with logits — the CTR-prediction loss.

use el_tensor::Matrix;

/// Numerically stable sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Mean BCE-with-logits loss and its gradient.
///
/// `logits` is `batch x 1`; returns `(loss, d_logits)` with
/// `d_logits = (sigmoid(z) - y) / batch` — the mean-reduction gradient the
/// reference DLRM uses.
pub fn bce_with_logits(logits: &Matrix, labels: &[f32]) -> (f32, Matrix) {
    assert_eq!(logits.cols(), 1, "logits must be batch x 1");
    assert_eq!(logits.rows(), labels.len(), "label count mismatch");
    let batch = labels.len();
    assert!(batch > 0, "empty batch");
    let mut grad = Matrix::zeros(batch, 1);
    let mut loss = 0.0f64;
    for (s, &y) in labels.iter().enumerate() {
        let z = logits.get(s, 0);
        // log(1 + exp(-|z|)) + max(z, 0) - z*y  (stable form)
        let l = z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        loss += l as f64;
        grad.set(s, 0, (sigmoid(z) - y) / batch as f32);
    }
    ((loss / batch as f64) as f32, grad)
}

/// Probability predictions from logits.
pub fn predict_proba(logits: &Matrix) -> Vec<f32> {
    assert_eq!(logits.cols(), 1);
    (0..logits.rows()).map(|s| sigmoid(logits.get(s, 0))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(5.0) + sigmoid(-5.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(100.0) <= 1.0);
    }

    #[test]
    fn perfect_predictions_have_low_loss() {
        let logits = Matrix::from_vec(2, 1, vec![10.0, -10.0]);
        let (loss, _) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn wrong_predictions_have_high_loss() {
        let logits = Matrix::from_vec(2, 1, vec![-10.0, 10.0]);
        let (loss, _) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss > 5.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let labels = [1.0f32, 0.0, 1.0];
        let mut logits = Matrix::from_vec(3, 1, vec![0.3, -0.7, 1.2]);
        let (_, grad) = bce_with_logits(&logits, &labels);
        let eps = 1e-3;
        for s in 0..3 {
            let orig = logits.get(s, 0);
            logits.set(s, 0, orig + eps);
            let (up, _) = bce_with_logits(&logits, &labels);
            logits.set(s, 0, orig - eps);
            let (down, _) = bce_with_logits(&logits, &labels);
            logits.set(s, 0, orig);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grad.get(s, 0)).abs() < 1e-3,
                "sample {s}: {numeric} vs {}",
                grad.get(s, 0)
            );
        }
    }

    #[test]
    fn loss_is_stable_for_extreme_logits() {
        let logits = Matrix::from_vec(2, 1, vec![1000.0, -1000.0]);
        let (loss, grad) = bce_with_logits(&logits, &[0.0, 1.0]);
        assert!(loss.is_finite());
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn predict_proba_maps_logits() {
        let logits = Matrix::from_vec(2, 1, vec![0.0, 2.0]);
        let p = predict_proba(&logits);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!((p[1] - sigmoid(2.0)).abs() < 1e-6);
    }
}
