//! # el-dlrm — the DLRM model substrate
//!
//! A from-scratch implementation of Facebook's DLRM architecture (paper
//! Figure 2) on top of `el-tensor`:
//!
//! * [`linear`]/[`mlp`] — dense layers and the bottom/top MLPs,
//! * [`embedding_bag`] — the uncompressed `nn.EmbeddingBag` baseline with
//!   sparse gradients (what the paper's DLRM/FAE baselines train),
//! * [`interaction`] — the pairwise dot-product feature interaction,
//! * [`loss`] — binary cross-entropy with logits,
//! * [`metrics`] — accuracy / AUC / log-loss for Table IV,
//! * [`optim`] — Adagrad (dense and sparse) alongside the default SGD,
//! * [`quantized`] — int8 / bf16 embedding tables (the compression family
//!   the paper contrasts TT against),
//! * [`model`] — the assembled model, able to host any mix of dense and
//!   Eff-TT embedding tables (the drop-in-replacement property of the
//!   Eff-TT API).

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod embedding_bag;
pub mod interaction;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod optim;
pub use el_core::quantized;

pub use checkpoint::DlrmCheckpoint;
pub use embedding_bag::EmbeddingBag;
pub use linear::Linear;
pub use mlp::Mlp;
pub use model::{DlrmConfig, DlrmModel, EmbeddingLayer};
pub use optim::{Adagrad, OptimizerKind};
