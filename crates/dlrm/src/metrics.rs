//! Evaluation metrics for CTR prediction (Table IV reports accuracy).

/// Classification accuracy at threshold 0.5 (the paper's Table IV metric).
pub fn accuracy(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    if probs.is_empty() {
        return 0.0;
    }
    let correct = probs.iter().zip(labels).filter(|(p, y)| (**p >= 0.5) == (**y >= 0.5)).count();
    correct as f64 / probs.len() as f64
}

/// Area under the ROC curve via the rank statistic (ties averaged).
pub fn auc(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    let pos = labels.iter().filter(|&&y| y >= 0.5).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // ranks of the scores, average rank for ties
    let mut order: Vec<usize> = (0..probs.len()).collect();
    order.sort_by(|&a, &b| probs[a].partial_cmp(&probs[b]).unwrap());
    let mut ranks = vec![0f64; probs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && probs[order[j + 1]] == probs[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum: f64 =
        labels.iter().zip(&ranks).filter(|(y, _)| **y >= 0.5).map(|(_, r)| *r).sum();
    (rank_sum - (pos * (pos + 1)) as f64 / 2.0) / (pos as f64 * neg as f64)
}

/// Mean binary log loss of probability predictions.
pub fn log_loss(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    if probs.is_empty() {
        return 0.0;
    }
    let eps = 1e-7f64;
    let total: f64 = probs
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = (p as f64).clamp(eps, 1.0 - eps);
            -(y as f64 * p.ln() + (1.0 - y as f64) * (1.0 - p).ln())
        })
        .sum();
    total / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_threshold_hits() {
        let acc = accuracy(&[0.9, 0.1, 0.6, 0.4], &[1.0, 0.0, 0.0, 1.0]);
        assert!((acc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_of_perfect_ranking_is_one() {
        let auc = auc(&[0.1, 0.2, 0.8, 0.9], &[0.0, 0.0, 1.0, 1.0]);
        assert!((auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_of_inverted_ranking_is_zero() {
        let auc = auc(&[0.9, 0.8, 0.1, 0.2], &[0.0, 0.0, 1.0, 1.0]);
        assert!(auc.abs() < 1e-12);
    }

    #[test]
    fn auc_of_random_ties_is_half() {
        let auc = auc(&[0.5, 0.5, 0.5, 0.5], &[0.0, 1.0, 0.0, 1.0]);
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_classes_return_half() {
        assert_eq!(auc(&[0.5, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[0.5, 0.9], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn log_loss_prefers_confident_correct() {
        let good = log_loss(&[0.99, 0.01], &[1.0, 0.0]);
        let bad = log_loss(&[0.6, 0.4], &[1.0, 0.0]);
        assert!(good < bad);
    }

    #[test]
    fn log_loss_is_finite_at_extremes() {
        assert!(log_loss(&[1.0, 0.0], &[0.0, 1.0]).is_finite());
    }
}
