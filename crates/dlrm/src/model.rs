//! The assembled DLRM (paper Figure 2) with pluggable embedding layers.
//!
//! Each sparse field is served by one [`EmbeddingLayer`]:
//!
//! * [`EmbeddingLayer::Dense`] — the uncompressed PyTorch-style table;
//! * [`EmbeddingLayer::Tt`] — an Eff-TT table (the drop-in replacement the
//!   paper advertises: swapping the variants is the entire migration);
//! * [`EmbeddingLayer::Hosted`] — a table whose parameters live somewhere
//!   else (host memory behind the parameter server); its pooled embeddings
//!   arrive from outside and its gradients are handed back, which is how
//!   the pipeline trainer of `el-pipeline` drives the model.
//! * [`EmbeddingLayer::Quantized`] / [`EmbeddingLayer::Bf16`] — int8 / bf16
//!   tables (the low-bit compression family of the paper's §I), trained
//!   with plain SGD round-tripping through the storage format.

use crate::embedding_bag::EmbeddingBag;
use crate::interaction::Interaction;
use crate::loss::{bce_with_logits, predict_proba};
use crate::metrics;
use crate::mlp::Mlp;
use crate::optim::{Adagrad, OptimizerKind};
use el_core::quantized::{Bf16EmbeddingBag, QuantizedEmbeddingBag};
use el_core::{StageTimers, TtConfig, TtEmbeddingBag, TtWorkspace};
use el_data::{DatasetSpec, MiniBatch};
use el_tensor::Matrix;
use rand::Rng;

/// One sparse field's embedding table.
// Variant sizes intentionally differ: `Dense` embeds the table handle while
// `Hosted` is a stub; boxing `Dense` would add an indirection on the hottest
// lookup path.
#[allow(clippy::large_enum_variant)]
pub enum EmbeddingLayer {
    /// Uncompressed table trained with sparse gradients.
    Dense(EmbeddingBag),
    /// Eff-TT compressed table with its kernel workspace.
    Tt(Box<TtEmbeddingBag>, TtWorkspace),
    /// Parameters live outside the model (host memory / parameter server).
    Hosted {
        /// Embedding dimension served by the external owner.
        dim: usize,
    },
    /// int8 table with per-row affine parameters (paper §I's low-bit
    /// family). Trains with SGD only: every update round-trips through the
    /// quantized codes, which is exactly the accuracy tax the paper cites.
    Quantized(QuantizedEmbeddingBag),
    /// bfloat16-storage table (the milder low-bit variant). SGD only.
    Bf16(Bf16EmbeddingBag),
}

impl EmbeddingLayer {
    /// Embedding dimension of the layer.
    pub fn dim(&self) -> usize {
        match self {
            EmbeddingLayer::Dense(b) => b.dim(),
            EmbeddingLayer::Tt(b, _) => b.dim(),
            EmbeddingLayer::Hosted { dim } => *dim,
            EmbeddingLayer::Quantized(b) => b.dim(),
            EmbeddingLayer::Bf16(b) => b.dim(),
        }
    }

    /// Device-resident parameter bytes of the layer.
    pub fn footprint_bytes(&self) -> usize {
        match self {
            EmbeddingLayer::Dense(b) => b.footprint_bytes(),
            EmbeddingLayer::Tt(b, _) => b.footprint_bytes(),
            EmbeddingLayer::Hosted { .. } => 0,
            EmbeddingLayer::Quantized(b) => b.footprint_bytes(),
            EmbeddingLayer::Bf16(b) => b.footprint_bytes(),
        }
    }
}

/// Model hyper-parameters.
#[derive(Clone, Debug)]
pub struct DlrmConfig {
    /// Number of dense features.
    pub num_dense: usize,
    /// Cardinality of each sparse field.
    pub table_cardinalities: Vec<usize>,
    /// Embedding dimension (all tables).
    pub dim: usize,
    /// Bottom-MLP hidden sizes (input/output added automatically).
    pub bottom_hidden: Vec<usize>,
    /// Top-MLP hidden sizes (input/output added automatically).
    pub top_hidden: Vec<usize>,
    /// Tables with at least this many rows are TT-compressed (the paper
    /// compresses tables above 1M rows; scale accordingly).
    pub tt_threshold: usize,
    /// TT rank for compressed tables.
    pub tt_rank: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Optimizer for every trainable component (the paper uses SGD, which
    /// also enables the fused TT-core update; Adagrad matches the
    /// reference DLRM's sparse-embedding default).
    pub optimizer: OptimizerKind,
}

impl DlrmConfig {
    /// A configuration matching a dataset spec with DLRM-default MLPs.
    pub fn for_spec(spec: &DatasetSpec, dim: usize, tt_threshold: usize, tt_rank: usize) -> Self {
        Self {
            num_dense: spec.num_dense,
            table_cardinalities: spec.table_cardinalities.clone(),
            dim,
            bottom_hidden: vec![64, 32],
            top_hidden: vec![64, 32],
            tt_threshold,
            tt_rank,
            lr: 0.05,
            optimizer: OptimizerKind::Sgd,
        }
    }
}

/// Metrics of one evaluation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalMetrics {
    /// Accuracy at threshold 0.5 (Table IV).
    pub accuracy: f64,
    /// ROC AUC.
    pub auc: f64,
    /// Mean binary log loss.
    pub log_loss: f64,
}

/// Result of a hybrid training step.
pub struct StepOutput {
    /// Mean BCE loss of the batch.
    pub loss: f32,
    /// Gradients of the pooled embeddings of each hosted table
    /// (`(table, batch x dim)`), to be pushed to the parameter server.
    pub hosted_grads: Vec<(usize, Matrix)>,
}

/// Per-component Adagrad state (allocated only when the model trains with
/// [`OptimizerKind::Adagrad`]).
///
/// Serializable because a durable checkpoint must carry it: restarting the
/// accumulators changes every subsequent step size, so a resumed run could
/// never be byte-identical to an uninterrupted one without this state.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdagradStates {
    /// One state per bottom-MLP layer.
    pub bottom: Vec<Adagrad>,
    /// One state per top-MLP layer.
    pub top: Vec<Adagrad>,
    /// One state per table: dense tables get a whole-table accumulator,
    /// TT tables one accumulator per core.
    pub tables: Vec<Vec<Adagrad>>,
}

/// The DLRM model.
pub struct DlrmModel {
    /// Bottom MLP: dense features -> `dim`.
    pub bottom: Mlp,
    /// One embedding layer per sparse field.
    pub tables: Vec<EmbeddingLayer>,
    /// Feature interaction.
    pub interaction: Interaction,
    /// Top MLP: interaction output -> logit.
    pub top: Mlp,
    /// Learning rate (shared by MLPs and embeddings).
    pub lr: f32,
    /// Which optimizer `train_step*` applies.
    pub optimizer: OptimizerKind,
    /// Adagrad accumulators; `None` under SGD.
    opt_states: Option<AdagradStates>,
}

impl DlrmModel {
    /// Builds a model, compressing large tables per the configuration.
    pub fn new(config: &DlrmConfig, rng: &mut impl Rng) -> Self {
        let mut bottom_sizes = vec![config.num_dense.max(1)];
        bottom_sizes.extend_from_slice(&config.bottom_hidden);
        bottom_sizes.push(config.dim);
        let bottom = Mlp::new(&bottom_sizes, rng);

        let tables: Vec<EmbeddingLayer> = config
            .table_cardinalities
            .iter()
            .map(|&card| {
                if card >= config.tt_threshold {
                    let tt_cfg = TtConfig::new(card, config.dim, config.tt_rank);
                    EmbeddingLayer::Tt(
                        Box::new(TtEmbeddingBag::new(&tt_cfg, rng)),
                        TtWorkspace::new(),
                    )
                } else {
                    EmbeddingLayer::Dense(EmbeddingBag::new(card, config.dim, 0.05, rng))
                }
            })
            .collect();

        let interaction = Interaction::new(1 + tables.len(), config.dim);
        let mut top_sizes = vec![interaction.out_dim()];
        top_sizes.extend_from_slice(&config.top_hidden);
        top_sizes.push(1);
        let top = Mlp::new(&top_sizes, rng);

        let opt_states = match config.optimizer {
            OptimizerKind::Sgd => None,
            OptimizerKind::Adagrad { eps } => {
                let make = |mut states: Vec<Adagrad>| {
                    for s in &mut states {
                        s.eps = eps;
                    }
                    states
                };
                Some(AdagradStates {
                    bottom: make(bottom.adagrad_states()),
                    top: make(top.adagrad_states()),
                    tables: tables
                        .iter()
                        .map(|t| {
                            make(match t {
                                EmbeddingLayer::Dense(b) => {
                                    vec![Adagrad::new(b.weight.len())]
                                }
                                EmbeddingLayer::Tt(b, _) => {
                                    b.cores().cores.iter().map(|c| Adagrad::new(c.len())).collect()
                                }
                                // Quantized tables train SGD-only (no
                                // stable parameter identity to accumulate
                                // over), so like Hosted they carry no state.
                                EmbeddingLayer::Hosted { .. }
                                | EmbeddingLayer::Quantized(_)
                                | EmbeddingLayer::Bf16(_) => Vec::new(),
                            })
                        })
                        .collect(),
                })
            }
        };

        Self {
            bottom,
            tables,
            interaction,
            top,
            lr: config.lr,
            optimizer: config.optimizer,
            opt_states,
        }
    }

    /// Reassembles a model from pre-built components (checkpoint restore).
    pub fn from_parts(
        bottom: Mlp,
        tables: Vec<EmbeddingLayer>,
        top: Mlp,
        lr: f32,
        optimizer: OptimizerKind,
    ) -> Self {
        let dim = tables.first().map(EmbeddingLayer::dim).unwrap_or(bottom.out_dim());
        let interaction = Interaction::new(1 + tables.len(), dim);
        let opt_states = match optimizer {
            OptimizerKind::Sgd => None,
            OptimizerKind::Adagrad { eps } => {
                let make = |mut states: Vec<Adagrad>| {
                    for s in &mut states {
                        s.eps = eps;
                    }
                    states
                };
                Some(AdagradStates {
                    bottom: make(bottom.adagrad_states()),
                    top: make(top.adagrad_states()),
                    tables: tables
                        .iter()
                        .map(|t| {
                            make(match t {
                                EmbeddingLayer::Dense(b) => vec![Adagrad::new(b.weight.len())],
                                EmbeddingLayer::Tt(b, _) => {
                                    b.cores().cores.iter().map(|c| Adagrad::new(c.len())).collect()
                                }
                                // Quantized tables train SGD-only (no
                                // stable parameter identity to accumulate
                                // over), so like Hosted they carry no state.
                                EmbeddingLayer::Hosted { .. }
                                | EmbeddingLayer::Quantized(_)
                                | EmbeddingLayer::Bf16(_) => Vec::new(),
                            })
                        })
                        .collect(),
                })
            }
        };
        Self { bottom, tables, interaction, top, lr, optimizer, opt_states }
    }

    /// Reassembles a model and installs previously captured optimizer
    /// state (checkpoint restore, format v2). `states == None` behaves
    /// like [`DlrmModel::from_parts`]: fresh accumulators.
    pub fn from_parts_with_states(
        bottom: Mlp,
        tables: Vec<EmbeddingLayer>,
        top: Mlp,
        lr: f32,
        optimizer: OptimizerKind,
        states: Option<AdagradStates>,
    ) -> Result<Self, String> {
        let mut model = Self::from_parts(bottom, tables, top, lr, optimizer);
        if let Some(states) = states {
            model.install_opt_states(states)?;
        }
        Ok(model)
    }

    /// The model's Adagrad accumulators, if it trains with Adagrad.
    pub fn opt_states(&self) -> Option<&AdagradStates> {
        self.opt_states.as_ref()
    }

    /// Replaces the optimizer accumulators with captured ones, validating
    /// that every component's state length matches this model's shape.
    pub fn install_opt_states(&mut self, states: AdagradStates) -> Result<(), String> {
        let Some(fresh) = self.opt_states.as_ref() else {
            return Err("optimizer state supplied for an SGD model".into());
        };
        let describe = |what: &str, got: usize, want: usize| {
            format!("{what}: captured state has {got} entries, model needs {want}")
        };
        if states.bottom.len() != fresh.bottom.len() {
            return Err(describe("bottom MLP", states.bottom.len(), fresh.bottom.len()));
        }
        if states.top.len() != fresh.top.len() {
            return Err(describe("top MLP", states.top.len(), fresh.top.len()));
        }
        if states.tables.len() != fresh.tables.len() {
            return Err(describe("tables", states.tables.len(), fresh.tables.len()));
        }
        let pairs = states
            .bottom
            .iter()
            .zip(&fresh.bottom)
            .chain(states.top.iter().zip(&fresh.top))
            .chain(states.tables.iter().flatten().zip(fresh.tables.iter().flatten()));
        for (got, want) in pairs {
            if got.accum.len() != want.accum.len() {
                return Err(describe("accumulator", got.accum.len(), want.accum.len()));
            }
        }
        for (got, want) in states.tables.iter().zip(&fresh.tables) {
            if got.len() != want.len() {
                return Err(describe("table cores", got.len(), want.len()));
            }
        }
        self.opt_states = Some(states);
        Ok(())
    }

    /// Number of sparse fields.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Table indices served by the parameter server.
    pub fn hosted_tables(&self) -> Vec<usize> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, EmbeddingLayer::Hosted { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Device-resident embedding bytes (Table III's EL-Rec column).
    pub fn embedding_footprint_bytes(&self) -> usize {
        self.tables.iter().map(EmbeddingLayer::footprint_bytes).sum()
    }

    /// Installs a plan prefetcher on every TT table's workspace so batch
    /// analysis can overlap model compute (paper §V). Idempotent; without a
    /// matching [`DlrmModel::prefetch_plans`] call the prefetchers idle and
    /// analysis stays inline.
    pub fn enable_plan_overlap(&mut self) {
        for t in &mut self.tables {
            if let EmbeddingLayer::Tt(_, ws) = t {
                ws.enable_plan_prefetch();
            }
        }
    }

    /// Removes the prefetchers installed by
    /// [`DlrmModel::enable_plan_overlap`], joining their threads.
    pub fn disable_plan_overlap(&mut self) {
        for t in &mut self.tables {
            if let EmbeddingLayer::Tt(_, ws) = t {
                ws.disable_plan_prefetch();
            }
        }
    }

    /// Queues pointer preparation of a *future* batch on every TT table's
    /// prefetcher. Safe to call speculatively: a table without overlap
    /// enabled, a full queue, or a batch that never arrives just means the
    /// corresponding forward analyzes inline.
    pub fn prefetch_plans(&self, batch: &MiniBatch) {
        for (t, field) in batch.fields.iter().enumerate() {
            if let EmbeddingLayer::Tt(bag, ws) = &self.tables[t] {
                let _ = bag.prefetch_plan(&field.indices, &field.offsets, ws);
            }
        }
    }

    /// Stage timers summed over all TT tables (analysis vs forward vs
    /// backward wall time).
    pub fn stage_timers(&self) -> StageTimers {
        let mut total = StageTimers::default();
        for t in &self.tables {
            if let EmbeddingLayer::Tt(_, ws) = t {
                total.merge(&ws.stage_timers());
            }
        }
        total
    }

    /// Zeroes every TT table's stage timers.
    pub fn reset_stage_timers(&mut self) {
        for t in &mut self.tables {
            if let EmbeddingLayer::Tt(_, ws) = t {
                ws.reset_stage_timers();
            }
        }
    }

    /// One SGD step over a batch where every table is model-resident.
    pub fn train_step(&mut self, batch: &MiniBatch) -> f32 {
        assert!(self.hosted_tables().is_empty(), "model has hosted tables; use train_step_hybrid");
        self.train_step_hybrid(batch, &[]).loss
    }

    /// One SGD step where hosted tables' pooled embeddings are supplied by
    /// the caller (parameter-server pull); returns their gradients for the
    /// push path.
    pub fn train_step_hybrid(
        &mut self,
        batch: &MiniBatch,
        hosted_embeddings: &[(usize, Matrix)],
    ) -> StepOutput {
        let dense = self.dense_matrix(batch);
        let z0 = self.bottom.forward(&dense);

        // Embedding forward per table.
        let embs: Vec<Matrix> = self.embedding_forward(batch, hosted_embeddings);

        let mut features: Vec<&Matrix> = Vec::with_capacity(1 + embs.len());
        features.push(&z0);
        features.extend(embs.iter());
        let inter_out = self.interaction.forward(&features);

        let logits = self.top.forward(&inter_out);
        let (loss, d_logits) = bce_with_logits(&logits, &batch.labels);

        // Backward.
        let d_inter = self.top.backward(&d_logits);
        let feat_grads = self.interaction.backward(&features, &d_inter);
        drop(features);

        let mut hosted_grads = Vec::new();
        let lr = self.lr;
        for (t, grad) in feat_grads.iter().skip(1).enumerate() {
            let field = &batch.fields[t];
            match &mut self.tables[t] {
                EmbeddingLayer::Dense(bag) => match &mut self.opt_states {
                    None => bag.backward_sgd(&field.indices, &field.offsets, grad, lr),
                    Some(states) => bag.backward_adagrad(
                        &field.indices,
                        &field.offsets,
                        grad,
                        lr,
                        &mut states.tables[t][0],
                    ),
                },
                EmbeddingLayer::Tt(bag, ws) => match &mut self.opt_states {
                    None => bag.backward_sgd(grad, ws, lr),
                    Some(states) => {
                        // Adagrad needs materialized core gradients; the
                        // fused-update shortcut is SGD-specific (paper
                        // §III-B).
                        bag.backward_grads(grad, ws);
                        for (k, state) in states.tables[t].iter_mut().enumerate() {
                            let grads = &ws.grads()[k];
                            // state.step borrows core mutably
                            let core = &mut bag.cores_mut().cores[k];
                            state.step(core, grads, lr);
                        }
                    }
                },
                EmbeddingLayer::Hosted { .. } => {
                    hosted_grads.push((t, grad.clone()));
                }
                // The low-bit tables round-trip every update through their
                // storage format; Adagrad has no stable accumulator target
                // there, so they apply plain SGD under either optimizer.
                EmbeddingLayer::Quantized(bag) => {
                    bag.backward_sgd(&field.indices, &field.offsets, grad, lr);
                }
                EmbeddingLayer::Bf16(bag) => {
                    bag.backward_sgd(&field.indices, &field.offsets, grad, lr);
                }
            }
        }

        let _ = self.bottom.backward(&feat_grads[0]);
        match &mut self.opt_states {
            None => {
                self.top.step(lr);
                self.bottom.step(lr);
            }
            Some(states) => {
                self.top.step_adagrad(lr, &mut states.top);
                self.bottom.step_adagrad(lr, &mut states.bottom);
            }
        }

        StepOutput { loss, hosted_grads }
    }

    /// Length of the flat gradient vector produced by
    /// [`DlrmModel::train_step_defer`].
    pub fn grad_len(&self) -> usize {
        let mut len = self.bottom.param_count() + self.top.param_count();
        for t in &self.tables {
            len += match t {
                EmbeddingLayer::Dense(b) => b.weight.len(),
                EmbeddingLayer::Tt(b, _) => b.param_count(),
                EmbeddingLayer::Hosted { .. } => 0,
                EmbeddingLayer::Quantized(_) | EmbeddingLayer::Bf16(_) => 0,
            };
        }
        len
    }

    /// One training step that *collects* gradients instead of applying
    /// them, for data-parallel training: the returned flat vector has a
    /// fixed layout (bottom MLP, top MLP, then each table), so identical
    /// replicas can all-reduce it and call
    /// [`DlrmModel::apply_grad_vector`].
    ///
    /// Dense tables contribute their full (mostly zero) gradient so the
    /// layout is worker-independent; use TT tables for anything large.
    pub fn train_step_defer(&mut self, batch: &MiniBatch) -> (f32, Vec<f32>) {
        assert!(self.hosted_tables().is_empty(), "hosted tables cannot be all-reduced");
        assert!(
            self.optimizer == OptimizerKind::Sgd,
            "deferred (all-reduce) training applies plain SGD; switch the optimizer"
        );
        let dense = self.dense_matrix(batch);
        let z0 = self.bottom.forward(&dense);
        let embs = self.embedding_forward(batch, &[]);
        let mut features: Vec<&Matrix> = Vec::with_capacity(1 + embs.len());
        features.push(&z0);
        features.extend(embs.iter());
        let inter_out = self.interaction.forward(&features);
        let logits = self.top.forward(&inter_out);
        let (loss, d_logits) = bce_with_logits(&logits, &batch.labels);
        let d_inter = self.top.backward(&d_logits);
        let feat_grads = self.interaction.backward(&features, &d_inter);
        drop(features);
        let _ = self.bottom.backward(&feat_grads[0]);

        let mut flat = Vec::with_capacity(self.grad_len());
        flat.extend(self.bottom.export_grads());
        flat.extend(self.top.export_grads());
        for (t, grad) in feat_grads.iter().skip(1).enumerate() {
            let field = &batch.fields[t];
            match &mut self.tables[t] {
                EmbeddingLayer::Dense(bag) => {
                    let sparse = bag.sparse_grad(&field.indices, &field.offsets, grad);
                    let mut full = vec![0.0f32; bag.weight.len()];
                    let dim = bag.dim();
                    for (slot, &i) in sparse.indices.iter().enumerate() {
                        full[i as usize * dim..(i as usize + 1) * dim]
                            .copy_from_slice(&sparse.values[slot * dim..(slot + 1) * dim]);
                    }
                    flat.extend(full);
                }
                EmbeddingLayer::Tt(bag, ws) => {
                    bag.backward_grads(grad, ws);
                    for g in ws.grads() {
                        flat.extend_from_slice(g);
                    }
                }
                EmbeddingLayer::Hosted { .. } => unreachable!(),
                EmbeddingLayer::Quantized(_) | EmbeddingLayer::Bf16(_) => {
                    panic!("quantized tables round-trip their updates and cannot be all-reduced")
                }
            }
        }
        // MLP grads were exported; clear them so the next step starts clean.
        self.bottom.import_grads(&vec![0.0; self.bottom.param_count()]);
        self.top.import_grads(&vec![0.0; self.top.param_count()]);
        debug_assert_eq!(flat.len(), self.grad_len());
        (loss, flat)
    }

    /// Applies a flat gradient vector (layout of
    /// [`DlrmModel::train_step_defer`]) with SGD.
    pub fn apply_grad_vector(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.grad_len(), "gradient vector layout mismatch");
        let lr = self.lr;
        let mut off = 0;
        let b = self.bottom.param_count();
        self.bottom.import_grads(&flat[off..off + b]);
        self.bottom.step(lr);
        off += b;
        let t = self.top.param_count();
        self.top.import_grads(&flat[off..off + t]);
        self.top.step(lr);
        off += t;
        for table in &mut self.tables {
            match table {
                EmbeddingLayer::Dense(bag) => {
                    let n = bag.weight.len();
                    for (w, g) in bag.weight.as_mut_slice().iter_mut().zip(&flat[off..off + n]) {
                        *w -= lr * g;
                    }
                    off += n;
                }
                EmbeddingLayer::Tt(bag, _) => {
                    for k in 0..bag.order() {
                        let core = &mut bag.cores_mut().cores[k];
                        let n = core.len();
                        for (w, g) in core.iter_mut().zip(&flat[off..off + n]) {
                            *w -= lr * g;
                        }
                        off += n;
                    }
                }
                EmbeddingLayer::Hosted { .. }
                | EmbeddingLayer::Quantized(_)
                | EmbeddingLayer::Bf16(_) => {}
            }
        }
        assert_eq!(off, flat.len());
    }

    /// Probability predictions for a batch (no parameter updates; TT
    /// workspaces are still exercised because lookup shares the training
    /// kernels).
    pub fn predict(&mut self, batch: &MiniBatch) -> Vec<f32> {
        let dense = self.dense_matrix(batch);
        let z0 = self.bottom.predict(&dense);
        let embs = self.embedding_forward(batch, &[]);
        let mut features: Vec<&Matrix> = Vec::with_capacity(1 + embs.len());
        features.push(&z0);
        features.extend(embs.iter());
        let inter_out = self.interaction.forward(&features);
        let logits = self.top.predict(&inter_out);
        predict_proba(&logits)
    }

    /// Evaluates accuracy / AUC / log-loss over batches.
    pub fn evaluate(&mut self, batches: &[MiniBatch]) -> EvalMetrics {
        let mut probs = Vec::new();
        let mut labels = Vec::new();
        for b in batches {
            probs.extend(self.predict(b));
            labels.extend_from_slice(&b.labels);
        }
        EvalMetrics {
            accuracy: metrics::accuracy(&probs, &labels),
            auc: metrics::auc(&probs, &labels),
            log_loss: metrics::log_loss(&probs, &labels),
        }
    }

    fn embedding_forward(&mut self, batch: &MiniBatch, hosted: &[(usize, Matrix)]) -> Vec<Matrix> {
        assert_eq!(batch.fields.len(), self.tables.len(), "field/table count mismatch");
        let mut out = Vec::with_capacity(self.tables.len());
        for (t, field) in batch.fields.iter().enumerate() {
            let emb = match &mut self.tables[t] {
                EmbeddingLayer::Dense(bag) => bag.forward(&field.indices, &field.offsets),
                EmbeddingLayer::Tt(bag, ws) => bag.forward(&field.indices, &field.offsets, ws),
                EmbeddingLayer::Quantized(bag) => bag.forward(&field.indices, &field.offsets),
                EmbeddingLayer::Bf16(bag) => bag.forward(&field.indices, &field.offsets),
                EmbeddingLayer::Hosted { dim } => {
                    let found = hosted
                        .iter()
                        .find(|(idx, _)| *idx == t)
                        // PANIC-OK: trainer ships every hosted table with each batch.
                        .unwrap_or_else(|| panic!("hosted table {t} missing its embeddings"));
                    assert_eq!(found.1.rows(), batch.batch_size());
                    assert_eq!(found.1.cols(), *dim);
                    found.1.clone()
                }
            };
            out.push(emb);
        }
        out
    }

    fn dense_matrix(&self, batch: &MiniBatch) -> Matrix {
        if batch.num_dense == 0 {
            // Bottom MLP still needs an input; feed a constant.
            return Matrix::full(batch.batch_size(), self.bottom.in_dim(), 1.0);
        }
        Matrix::from_vec(batch.batch_size(), batch.num_dense, batch.dense.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_data::SyntheticDataset;
    use rand::SeedableRng;

    fn toy_config() -> DlrmConfig {
        DlrmConfig {
            num_dense: 4,
            table_cardinalities: vec![100, 2000, 50],
            dim: 8,
            bottom_hidden: vec![16],
            top_hidden: vec![16],
            tt_threshold: 1000, // table 1 becomes TT
            tt_rank: 8,
            lr: 0.05,
            optimizer: OptimizerKind::Sgd,
        }
    }

    fn toy_data() -> SyntheticDataset {
        let mut spec = DatasetSpec::toy(3, 100, 100_000);
        spec.table_cardinalities = vec![100, 2000, 50];
        spec.num_dense = 4;
        SyntheticDataset::new(spec, 77)
    }

    #[test]
    fn model_mixes_dense_and_tt_tables() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let model = DlrmModel::new(&toy_config(), &mut rng);
        assert!(matches!(model.tables[0], EmbeddingLayer::Dense(_)));
        assert!(matches!(model.tables[1], EmbeddingLayer::Tt(_, _)));
        assert!(matches!(model.tables[2], EmbeddingLayer::Dense(_)));
    }

    /// Replaces table 0 with an int8 table and table 2 with a bf16 table
    /// (same shapes), leaving the TT table in the middle.
    fn with_low_bit_tables(mut model: DlrmModel) -> DlrmModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        model.tables[0] =
            EmbeddingLayer::Quantized(QuantizedEmbeddingBag::new(100, 8, 0.1, &mut rng));
        model.tables[2] = EmbeddingLayer::Bf16(Bf16EmbeddingBag::new(50, 8, 0.1, &mut rng));
        model
    }

    #[test]
    fn low_bit_tables_train_under_sgd() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut model = with_low_bit_tables(DlrmModel::new(&toy_config(), &mut rng));
        let data = toy_data();
        let before: Vec<f32> = model.predict(&data.batch(9, 32));
        let mut last = f32::INFINITY;
        for i in 0..30 {
            last = model.train_step(&data.batch(i % 8, 128));
            assert!(last.is_finite(), "loss diverged at step {i}");
        }
        assert!(last > 0.0);
        // The quantized/bf16 tables (and everything else) moved: predictions
        // on a held-out batch changed.
        let after: Vec<f32> = model.predict(&data.batch(9, 32));
        assert!(before.iter().zip(&after).any(|(a, b)| (a - b).abs() > 1e-6));
    }

    #[test]
    fn low_bit_tables_fall_back_to_sgd_under_adagrad() {
        // An Adagrad model with quantized tables must train: the dense/TT
        // tables use Adagrad, the low-bit tables silently apply SGD (they
        // have no stable parameter identity for accumulators).
        let mut config = toy_config();
        config.optimizer = OptimizerKind::Adagrad { eps: 1e-8 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let base = with_low_bit_tables(DlrmModel::new(&config, &mut rng));
        let mut model = DlrmModel::from_parts(
            base.bottom.clone(),
            base.tables,
            base.top.clone(),
            config.lr,
            config.optimizer,
        );
        let data = toy_data();
        for i in 0..10 {
            let loss = model.train_step(&data.batch(i, 64));
            assert!(loss.is_finite() && loss > 0.0);
        }
    }

    #[test]
    fn low_bit_tables_report_compressed_footprints() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let model = with_low_bit_tables(DlrmModel::new(&toy_config(), &mut rng));
        // int8 codes cost 1 byte/value plus two f32 affine params per row;
        // at dim 8 that is exactly half the dense f32 table.
        let dense_bytes = 100 * 8 * 4;
        let EmbeddingLayer::Quantized(q) = &model.tables[0] else { panic!("table 0") };
        assert!(q.footprint_bytes() <= dense_bytes / 2, "int8 should be >=2x smaller at dim 8");
        let EmbeddingLayer::Bf16(b) = &model.tables[2] else { panic!("table 2") };
        assert!(b.footprint_bytes() <= 50 * 8 * 2 + 64, "bf16 should be ~2x smaller");
    }

    #[test]
    fn train_step_runs_and_loss_is_finite() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut model = DlrmModel::new(&toy_config(), &mut rng);
        let batch = toy_data().batch(0, 64);
        let loss = model.train_step(&batch);
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut model = DlrmModel::new(&toy_config(), &mut rng);
        let data = toy_data();
        let mut first = 0.0;
        let mut smoothed_last = 0.0;
        let n = 60;
        for i in 0..n {
            let batch = data.batch(i % 8, 128); // cycle a few batches
            let loss = model.train_step(&batch);
            if i == 0 {
                first = loss;
            }
            if i >= n - 8 {
                smoothed_last += loss / 8.0;
            }
        }
        assert!(smoothed_last < first * 0.98, "loss did not improve: {first} -> {smoothed_last}");
    }

    #[test]
    fn predictions_are_probabilities() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut model = DlrmModel::new(&toy_config(), &mut rng);
        let batch = toy_data().batch(0, 32);
        let probs = model.predict(&batch);
        assert_eq!(probs.len(), 32);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn evaluate_reports_sane_metrics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut model = DlrmModel::new(&toy_config(), &mut rng);
        let data = toy_data();
        let batches: Vec<MiniBatch> = (0..4).map(|i| data.batch(100 + i, 64)).collect();
        let m = model.evaluate(&batches);
        assert!(m.accuracy > 0.0 && m.accuracy <= 1.0);
        assert!(m.auc >= 0.0 && m.auc <= 1.0);
        assert!(m.log_loss.is_finite());
    }

    #[test]
    fn hybrid_step_returns_gradients_for_hosted_tables() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut model = DlrmModel::new(&toy_config(), &mut rng);
        model.tables[2] = EmbeddingLayer::Hosted { dim: 8 };
        let batch = toy_data().batch(0, 16);
        let external = Matrix::uniform(16, 8, 0.1, &mut rng);
        let out = model.train_step_hybrid(&batch, &[(2, external)]);
        assert!(out.loss.is_finite());
        assert_eq!(out.hosted_grads.len(), 1);
        assert_eq!(out.hosted_grads[0].0, 2);
        assert_eq!(out.hosted_grads[0].1.rows(), 16);
        // gradient actually flows: not all zeros
        assert!(out.hosted_grads[0].1.as_slice().iter().any(|&g| g != 0.0));
    }

    #[test]
    #[should_panic(expected = "missing its embeddings")]
    fn hybrid_step_requires_hosted_embeddings() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut model = DlrmModel::new(&toy_config(), &mut rng);
        model.tables[0] = EmbeddingLayer::Hosted { dim: 8 };
        let batch = toy_data().batch(0, 4);
        let _ = model.train_step_hybrid(&batch, &[]);
    }

    #[test]
    fn deferred_step_equals_direct_step() {
        // A single worker applying its own deferred gradients must match
        // the in-place train_step exactly (same arithmetic, same order).
        let batch = toy_data().batch(0, 32);

        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut direct = DlrmModel::new(&toy_config(), &mut rng);
        if let EmbeddingLayer::Tt(bag, _) = &mut direct.tables[1] {
            bag.options.fused_update = false;
            bag.options.deterministic = true;
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut deferred = DlrmModel::new(&toy_config(), &mut rng);
        if let EmbeddingLayer::Tt(bag, _) = &mut deferred.tables[1] {
            bag.options.deterministic = true;
        }

        let l1 = direct.train_step(&batch);
        let (l2, flat) = deferred.train_step_defer(&batch);
        assert!((l1 - l2).abs() < 1e-6);
        deferred.apply_grad_vector(&flat);

        let check = toy_data().batch(5, 16);
        let p1 = direct.predict(&check);
        let p2 = deferred.predict(&check);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn grad_len_matches_vector() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut model = DlrmModel::new(&toy_config(), &mut rng);
        let batch = toy_data().batch(0, 8);
        let (_, flat) = model.train_step_defer(&batch);
        assert_eq!(flat.len(), model.grad_len());
    }

    #[test]
    fn adagrad_training_reduces_loss() {
        let mut cfg = toy_config();
        cfg.optimizer = OptimizerKind::Adagrad { eps: 1e-8 };
        cfg.lr = 0.05;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut model = DlrmModel::new(&cfg, &mut rng);
        let data = toy_data();
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..50 {
            let loss = model.train_step(&data.batch(i % 8, 128));
            if i == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first, "adagrad did not learn: {first} -> {last}");
    }

    #[test]
    fn adagrad_differs_from_sgd_after_one_step() {
        let batch = toy_data().batch(0, 64);
        let run = |optimizer: OptimizerKind| {
            let mut cfg = toy_config();
            cfg.optimizer = optimizer;
            let mut rng = rand::rngs::StdRng::seed_from_u64(12);
            let mut model = DlrmModel::new(&cfg, &mut rng);
            let _ = model.train_step(&batch);
            model.predict(&toy_data().batch(5, 16))
        };
        let sgd = run(OptimizerKind::Sgd);
        let ada = run(OptimizerKind::Adagrad { eps: 1e-8 });
        assert!(
            sgd.iter().zip(&ada).any(|(a, b)| (a - b).abs() > 1e-6),
            "optimizers should produce different parameter updates"
        );
    }

    #[test]
    #[should_panic(expected = "plain SGD")]
    fn deferred_step_rejects_adagrad() {
        let mut cfg = toy_config();
        cfg.optimizer = OptimizerKind::Adagrad { eps: 1e-8 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut model = DlrmModel::new(&cfg, &mut rng);
        let _ = model.train_step_defer(&toy_data().batch(0, 8));
    }

    #[test]
    fn overlapped_training_is_bit_identical_to_inline() {
        // With plan prefetch enabled and the next batch queued before each
        // step, training must follow the exact same arithmetic as the
        // inline-analysis model (prefetched plans are bit-identical).
        let data = toy_data();
        let batches: Vec<MiniBatch> = (0..6).map(|i| data.batch(i, 64)).collect();

        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut inline = DlrmModel::new(&toy_config(), &mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut overlapped = DlrmModel::new(&toy_config(), &mut rng);
        overlapped.enable_plan_overlap();

        overlapped.prefetch_plans(&batches[0]);
        for (i, batch) in batches.iter().enumerate() {
            if let Some(next) = batches.get(i + 1) {
                overlapped.prefetch_plans(next);
            }
            let l1 = inline.train_step(batch);
            let l2 = overlapped.train_step(batch);
            assert_eq!(l1.to_bits(), l2.to_bits(), "losses diverged at step {i}");
        }
        assert!(overlapped.stage_timers().batches > 0);
        overlapped.disable_plan_overlap();

        let check = data.batch(9, 32);
        let p1 = inline.predict(&check);
        let p2 = overlapped.predict(&check);
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tt_compression_shrinks_footprint() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let compressed = DlrmModel::new(&toy_config(), &mut rng);
        let mut uncompressed_cfg = toy_config();
        uncompressed_cfg.tt_threshold = usize::MAX;
        let uncompressed = DlrmModel::new(&uncompressed_cfg, &mut rng);
        assert!(compressed.embedding_footprint_bytes() < uncompressed.embedding_footprint_bytes());
    }
}
