//! Optimizers beyond plain SGD.
//!
//! The reference DLRM trains embeddings with (sparse) **Adagrad** in many
//! production configurations; the paper's experiments use SGD, but a
//! credible training system needs both. Adagrad state is a per-parameter
//! accumulator of squared gradients:
//!
//! `acc += g^2;  w -= lr * g / (sqrt(acc) + eps)`
//!
//! Sparse variants touch only the rows a batch used, exactly like the
//! sparse SGD updates.

/// Dense Adagrad state over a flat parameter buffer.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Adagrad {
    /// Squared-gradient accumulator, same length as the parameters.
    pub accum: Vec<f32>,
    /// Numerical floor.
    pub eps: f32,
}

impl Adagrad {
    /// Fresh state for `len` parameters.
    pub fn new(len: usize) -> Self {
        Self { accum: vec![0.0; len], eps: 1e-8 }
    }

    /// Applies one Adagrad step to `params` given `grads`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.accum.len(), "state length mismatch");
        assert_eq!(params.len(), grads.len(), "gradient length mismatch");
        for ((w, g), a) in params.iter_mut().zip(grads).zip(&mut self.accum) {
            *a += g * g;
            *w -= lr * g / (a.sqrt() + self.eps);
        }
    }

    /// Applies a step to a subset of rows of a row-major table
    /// (sparse Adagrad): `rows[i]` indexes both the table and the state.
    pub fn step_rows(
        &mut self,
        table: &mut [f32],
        dim: usize,
        rows: &[u32],
        grads: &[f32],
        lr: f32,
    ) {
        assert_eq!(table.len(), self.accum.len());
        assert_eq!(grads.len(), rows.len() * dim, "one gradient row per touched row");
        for (slot, &r) in rows.iter().enumerate() {
            let off = r as usize * dim;
            let g_row = &grads[slot * dim..(slot + 1) * dim];
            for (i, &g) in g_row.iter().enumerate() {
                let a = &mut self.accum[off + i];
                *a += g * g;
                table[off + i] -= lr * g / (a.sqrt() + self.eps);
            }
        }
    }

    /// State footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.accum.len() * std::mem::size_of::<f32>()
    }
}

/// Which optimizer a model component uses.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize, Default)]
pub enum OptimizerKind {
    /// Plain SGD — what the paper evaluates (enables the fused TT update).
    #[default]
    Sgd,
    /// Adagrad with the given epsilon.
    Adagrad {
        /// Numerical floor added to the accumulator root.
        eps: f32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_a_signed_unit_step() {
        // acc = g^2 => update = lr * g / (|g| + eps) ~ lr * sign(g)
        let mut state = Adagrad::new(2);
        let mut w = vec![0.0f32, 0.0];
        state.step(&mut w, &[4.0, -0.25], 0.1);
        assert!((w[0] + 0.1).abs() < 1e-4, "{}", w[0]);
        assert!((w[1] - 0.1).abs() < 1e-4, "{}", w[1]);
    }

    #[test]
    fn repeated_gradients_decay_the_step() {
        let mut state = Adagrad::new(1);
        let mut w = vec![0.0f32];
        state.step(&mut w, &[1.0], 0.1);
        let first = -w[0];
        let before = w[0];
        state.step(&mut w, &[1.0], 0.1);
        let second = before - w[0];
        assert!(second < first, "adagrad steps must shrink: {first} vs {second}");
    }

    #[test]
    fn sparse_rows_update_only_touched_state() {
        let mut state = Adagrad::new(3 * 2);
        let mut table = vec![1.0f32; 6];
        state.step_rows(&mut table, 2, &[2], &[1.0, 1.0], 0.5);
        assert_eq!(&table[..4], &[1.0; 4]);
        assert!(table[4] < 1.0 && table[5] < 1.0);
        assert_eq!(&state.accum[..4], &[0.0; 4]);
        assert_eq!(&state.accum[4..], &[1.0; 2]);
    }

    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn mismatched_state_panics() {
        let mut state = Adagrad::new(2);
        let mut w = vec![0.0f32; 3];
        state.step(&mut w, &[0.0; 3], 0.1);
    }

    #[test]
    fn adagrad_adapts_to_gradient_scale() {
        // two coordinates with wildly different gradient scales end up
        // making similar progress — Adagrad's selling point for skewed
        // embedding access.
        let mut state = Adagrad::new(2);
        let mut w = vec![0.0f32, 0.0];
        for _ in 0..50 {
            state.step(&mut w, &[100.0, 0.01], 0.1);
        }
        let ratio = w[0] / w[1];
        assert!((0.5..2.0).contains(&ratio), "adagrad should equalize progress, got ratio {ratio}");
    }
}
