//! Fully-connected layer with explicit-cache backward.

use el_tensor::gemm::{add_at_b, par_gemm, par_gemm_bt};
use el_tensor::Matrix;
use rand::Rng;

/// A dense layer `y = x W^T + b` with `W: out x in` (PyTorch convention).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Linear {
    /// Weights, `out x in`.
    pub weight: Matrix,
    /// Bias, length `out`.
    pub bias: Vec<f32>,
    /// Accumulated weight gradient.
    pub grad_weight: Matrix,
    /// Accumulated bias gradient.
    pub grad_bias: Vec<f32>,
}

impl Linear {
    /// He-uniform initialization (suits the ReLU MLPs of DLRM).
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let bound = (6.0 / in_dim as f32).sqrt();
        Self {
            weight: Matrix::uniform(out_dim, in_dim, bound, rng),
            bias: vec![0.0; out_dim],
            grad_weight: Matrix::zeros(out_dim, in_dim),
            grad_bias: vec![0.0; out_dim],
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.weight.rows()
    }

    /// `y = x W^T + b` for a batch `x: batch x in`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "input dim mismatch");
        let (b, o, i) = (x.rows(), self.out_dim(), self.in_dim());
        let mut y = Matrix::zeros(b, o);
        // y = x (b x i) * W^T (i x o): batch rows band out across the
        // pool while the packed kernel absorbs the transpose into its
        // B-panel packing, so W is read in place by every band.
        par_gemm_bt(b, o, i, 1.0, x.as_slice(), self.weight.as_slice(), 0.0, y.as_mut_slice());
        let bias = &self.bias;
        for row in 0..b {
            let dst = &mut y.as_mut_slice()[row * o..(row + 1) * o];
            for (v, bv) in dst.iter_mut().zip(bias) {
                *v += bv;
            }
        }
        y
    }

    /// Backward: accumulates `dW += dy^T x`, `db += sum(dy)` and returns
    /// `dx = dy W`.
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        assert_eq!(dy.cols(), self.out_dim());
        assert_eq!(dy.rows(), x.rows());
        let (b, o, i) = (x.rows(), self.out_dim(), self.in_dim());
        // dW (o x i) += dy^T (o x b) * x (b x i)
        add_at_b(b, o, i, dy.as_slice(), x.as_slice(), self.grad_weight.as_mut_slice());
        for row in 0..b {
            for (g, v) in self.grad_bias.iter_mut().zip(dy.row(row)) {
                *g += v;
            }
        }
        // dx (b x i) = dy (b x o) * W (o x i)
        let mut dx = Matrix::zeros(b, i);
        par_gemm(b, i, o, 1.0, dy.as_slice(), self.weight.as_slice(), 0.0, dx.as_mut_slice());
        dx
    }

    /// SGD step and gradient reset.
    pub fn step(&mut self, lr: f32) {
        self.weight.axpy(-lr, &self.grad_weight.clone());
        for (b, g) in self.bias.iter_mut().zip(&self.grad_bias) {
            *b -= lr * g;
        }
        self.zero_grad();
    }

    /// Adagrad step over [weights, bias] and gradient reset. The state
    /// must have been created with `Adagrad::new(self.param_count())`.
    pub fn step_adagrad(&mut self, lr: f32, state: &mut crate::optim::Adagrad) {
        let w = self.weight.len();
        assert_eq!(state.accum.len(), self.param_count(), "adagrad state size mismatch");
        let eps = state.eps;
        let (acc_w, acc_b) = state.accum.split_at_mut(w);
        for ((wv, g), a) in
            self.weight.as_mut_slice().iter_mut().zip(self.grad_weight.as_slice()).zip(acc_w)
        {
            *a += g * g;
            *wv -= lr * g / (a.sqrt() + eps);
        }
        for ((bv, g), a) in self.bias.iter_mut().zip(&self.grad_bias).zip(acc_b) {
            *a += g * g;
            *bv -= lr * g / (a.sqrt() + eps);
        }
        self.zero_grad();
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.fill_zero();
        self.grad_bias.fill(0.0);
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Serializes parameters into a flat buffer (for all-reduce).
    pub fn export_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weight.as_slice());
        out.extend_from_slice(&self.bias);
    }

    /// Restores parameters from a flat buffer, returning the consumed
    /// length.
    pub fn import_params(&mut self, data: &[f32]) -> usize {
        let w = self.weight.len();
        let b = self.bias.len();
        self.weight.as_mut_slice().copy_from_slice(&data[..w]);
        self.bias.copy_from_slice(&data[w..w + b]);
        w + b
    }
}

/// Ensures a reference GEMM-free forward for tests.
#[cfg(test)]
fn forward_reference(layer: &Linear, x: &Matrix) -> Matrix {
    let mut y = Matrix::zeros(x.rows(), layer.out_dim());
    for b in 0..x.rows() {
        for o in 0..layer.out_dim() {
            let mut acc = layer.bias[o];
            for i in 0..layer.in_dim() {
                acc += x.get(b, i) * layer.weight.get(o, i);
            }
            y.set(b, o, acc);
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let layer = Linear::new(7, 5, &mut rng);
        let x = Matrix::uniform(3, 7, 1.0, &mut rng);
        let y = layer.forward(&x);
        assert!(y.max_abs_diff(&forward_reference(&layer, &x)) < 1e-5);
    }

    #[test]
    fn gradient_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut layer = Linear::new(4, 3, &mut rng);
        let x = Matrix::uniform(2, 4, 1.0, &mut rng);
        let gweight = Matrix::uniform(2, 3, 1.0, &mut rng); // dL/dy

        let dx = layer.backward(&x, &gweight);
        let analytic_dw = layer.grad_weight.clone();

        let eps = 1e-3;
        // weight gradient
        for &(o, i) in &[(0usize, 0usize), (2, 3), (1, 2)] {
            let orig = layer.weight.get(o, i);
            layer.weight.set(o, i, orig + eps);
            let up: f32 = layer
                .forward(&x)
                .as_slice()
                .iter()
                .zip(gweight.as_slice())
                .map(|(y, g)| y * g)
                .sum();
            layer.weight.set(o, i, orig - eps);
            let down: f32 = layer
                .forward(&x)
                .as_slice()
                .iter()
                .zip(gweight.as_slice())
                .map(|(y, g)| y * g)
                .sum();
            layer.weight.set(o, i, orig);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - analytic_dw.get(o, i)).abs() < 1e-2,
                "dW({o},{i}): {numeric} vs {}",
                analytic_dw.get(o, i)
            );
        }
        // input gradient
        let mut x2 = x.clone();
        let (b, i) = (0, 1);
        let orig = x2.get(b, i);
        x2.set(b, i, orig + eps);
        let up: f32 =
            layer.forward(&x2).as_slice().iter().zip(gweight.as_slice()).map(|(y, g)| y * g).sum();
        x2.set(b, i, orig - eps);
        let down: f32 =
            layer.forward(&x2).as_slice().iter().zip(gweight.as_slice()).map(|(y, g)| y * g).sum();
        let numeric = (up - down) / (2.0 * eps);
        assert!((numeric - dx.get(b, i)).abs() < 1e-2);
    }

    #[test]
    fn step_applies_sgd_and_clears() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut layer = Linear::new(2, 2, &mut rng);
        let w0 = layer.weight.clone();
        layer.grad_weight = Matrix::full(2, 2, 1.0);
        layer.grad_bias = vec![2.0, 2.0];
        layer.step(0.5);
        let mut expected = w0;
        expected.axpy(-0.5, &Matrix::full(2, 2, 1.0));
        assert!(layer.weight.max_abs_diff(&expected) < 1e-6);
        assert_eq!(layer.bias, vec![-1.0, -1.0]);
        assert!(layer.grad_weight.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn export_import_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = Linear::new(3, 2, &mut rng);
        let mut b = Linear::new(3, 2, &mut rng);
        let mut buf = Vec::new();
        a.export_params(&mut buf);
        let consumed = b.import_params(&buf);
        assert_eq!(consumed, a.param_count());
        assert!(a.weight.max_abs_diff(&b.weight) == 0.0);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn shape_mismatch_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let layer = Linear::new(4, 2, &mut rng);
        let _ = layer.forward(&Matrix::zeros(1, 3));
    }
}
