//! Multi-layer perceptron with ReLU activations.
//!
//! DLRM's bottom MLP maps dense features to the embedding dimension; the
//! top MLP maps the interaction output to the click logit. Activation
//! caches are kept inside the struct (one training step at a time, like the
//! rest of the trainer), so callers just pair `forward` and `backward`.

use crate::linear::Linear;
use el_tensor::Matrix;
use rand::Rng;

/// A ReLU MLP; the final layer is linear (no activation), producing either
/// features (bottom) or logits (top).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Mlp {
    /// Layers, applied in order.
    pub layers: Vec<Linear>,
    /// Per-layer input caches from the latest forward.
    #[serde(skip)]
    inputs: Vec<Matrix>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[13, 512, 64]`.
    pub fn new(sizes: &[usize], rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least one layer");
        let layers = sizes.windows(2).map(|w| Linear::new(w[0], w[1], rng)).collect::<Vec<_>>();
        Self { layers, inputs: Vec::new() }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.layers.first().unwrap().in_dim() // PANIC-OK: constructor guarantees >= 1 layer
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim() // PANIC-OK: constructor guarantees >= 1 layer
    }

    /// Forward pass, caching activations for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.inputs.clear();
        let mut cur = x.clone();
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            self.inputs.push(cur.clone());
            let mut y = layer.forward(&cur);
            if li != last {
                for v in y.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            cur = y;
        }
        cur
    }

    /// Inference-only forward (no caches touched).
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let mut cur = x.clone();
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let mut y = layer.forward(&cur);
            if li != last {
                for v in y.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            cur = y;
        }
        cur
    }

    /// Backward pass; accumulates layer gradients and returns `dx`.
    ///
    /// # Panics
    /// Panics when called without a preceding [`Mlp::forward`].
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        assert_eq!(self.inputs.len(), self.layers.len(), "backward requires a cached forward");
        let mut grad = dy.clone();
        let last = self.layers.len() - 1;
        for li in (0..self.layers.len()).rev() {
            if li != last {
                // grad flows through the ReLU applied to this layer's output;
                // the next layer's cached *input* is exactly that activation.
                let activated = &self.inputs[li + 1];
                for (g, &a) in grad.as_mut_slice().iter_mut().zip(activated.as_slice()) {
                    if a <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            grad = self.layers[li].backward(&self.inputs[li], &grad);
        }
        grad
    }

    /// SGD step on every layer.
    pub fn step(&mut self, lr: f32) {
        for layer in &mut self.layers {
            layer.step(lr);
        }
    }

    /// Adagrad step on every layer (one state per layer).
    pub fn step_adagrad(&mut self, lr: f32, states: &mut [crate::optim::Adagrad]) {
        assert_eq!(states.len(), self.layers.len(), "one adagrad state per layer");
        for (layer, state) in self.layers.iter_mut().zip(states) {
            layer.step_adagrad(lr, state);
        }
    }

    /// Fresh Adagrad states sized for this MLP's layers.
    pub fn adagrad_states(&self) -> Vec<crate::optim::Adagrad> {
        self.layers.iter().map(|l| crate::optim::Adagrad::new(l.param_count())).collect()
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Serializes all parameters (for replication / all-reduce).
    pub fn export_params(&self) -> Vec<f32> {
        let mut buf = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.export_params(&mut buf);
        }
        buf
    }

    /// Restores all parameters.
    pub fn import_params(&mut self, data: &[f32]) {
        let mut off = 0;
        for layer in &mut self.layers {
            off += layer.import_params(&data[off..]);
        }
        assert_eq!(off, data.len(), "parameter buffer length mismatch");
    }

    /// Serializes accumulated gradients without clearing them.
    pub fn export_grads(&self) -> Vec<f32> {
        let mut buf = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            buf.extend_from_slice(layer.grad_weight.as_slice());
            buf.extend_from_slice(&layer.grad_bias);
        }
        buf
    }

    /// Replaces accumulated gradients (after all-reduce).
    pub fn import_grads(&mut self, data: &[f32]) {
        let mut off = 0;
        for layer in &mut self.layers {
            let w = layer.grad_weight.len();
            layer.grad_weight.as_mut_slice().copy_from_slice(&data[off..off + w]);
            off += w;
            let b = layer.grad_bias.len();
            layer.grad_bias.copy_from_slice(&data[off..off + b]);
            off += b;
        }
        assert_eq!(off, data.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shapes_flow_through() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[13, 32, 8], &mut rng);
        let x = Matrix::uniform(4, 13, 1.0, &mut rng);
        let y = mlp.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 8));
        let dx = mlp.backward(&y);
        assert_eq!((dx.rows(), dx.cols()), (4, 13));
    }

    #[test]
    fn predict_equals_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&[5, 9, 3], &mut rng);
        let x = Matrix::uniform(6, 5, 1.0, &mut rng);
        let a = mlp.forward(&x);
        let b = mlp.predict(&x);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn relu_masks_negative_activations_in_backward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[2, 2, 1], &mut rng);
        // force one hidden unit to be strictly negative pre-ReLU
        mlp.layers[0].weight = Matrix::from_vec(2, 2, vec![1.0, 0.0, -1.0, 0.0]);
        mlp.layers[0].bias = vec![0.0, 0.0];
        let x = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let y = mlp.forward(&x);
        let dy = Matrix::full(1, 1, 1.0);
        let _ = mlp.backward(&dy);
        // hidden unit 1 was clamped to 0 by ReLU, so its weight rows get no
        // gradient
        assert_eq!(mlp.layers[0].grad_weight.get(1, 0), 0.0);
        assert!(mlp.layers[0].grad_weight.get(0, 0).abs() > 0.0 || y.get(0, 0) == 0.0);
    }

    #[test]
    fn end_to_end_gradient_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut mlp = Mlp::new(&[3, 6, 2], &mut rng);
        let x = Matrix::uniform(2, 3, 1.0, &mut rng);
        let g = Matrix::uniform(2, 2, 1.0, &mut rng);

        let _ = mlp.forward(&x);
        let dx = mlp.backward(&g);

        let loss = |mlp: &Mlp, x: &Matrix| -> f32 {
            mlp.predict(x).as_slice().iter().zip(g.as_slice()).map(|(y, gv)| y * gv).sum()
        };
        let eps = 1e-3;
        let mut x2 = x.clone();
        for &(b, i) in &[(0usize, 0usize), (1, 2)] {
            let orig = x2.get(b, i);
            x2.set(b, i, orig + eps);
            let up = loss(&mlp, &x2);
            x2.set(b, i, orig - eps);
            let down = loss(&mlp, &x2);
            x2.set(b, i, orig);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - dx.get(b, i)).abs() < 2e-2,
                "dx({b},{i}): {numeric} vs {}",
                dx.get(b, i)
            );
        }
    }

    #[test]
    fn params_round_trip_and_grads_transfer() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut a = Mlp::new(&[4, 8, 2], &mut rng);
        let mut b = Mlp::new(&[4, 8, 2], &mut rng);
        b.import_params(&a.export_params());
        let x = Matrix::uniform(3, 4, 1.0, &mut rng);
        assert_eq!(a.predict(&x).as_slice(), b.predict(&x).as_slice());

        let _ = a.forward(&x);
        let dy = Matrix::full(3, 2, 1.0);
        let _ = a.backward(&dy);
        b.import_grads(&a.export_grads());
        a.step(0.1);
        b.step(0.1);
        assert_eq!(a.predict(&x).as_slice(), b.predict(&x).as_slice());
    }

    #[test]
    fn mlp_learns_xor_like_pattern() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut mlp = Mlp::new(&[2, 32, 1], &mut rng);
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let t = [0.0f32, 1.0, 1.0, 0.0];
        let mut last = f32::MAX;
        for _ in 0..3000 {
            let y = mlp.forward(&x);
            let mut d = Matrix::zeros(4, 1);
            let mut loss = 0.0;
            for (i, target) in t.iter().enumerate() {
                let e = y.get(i, 0) - target;
                loss += 0.5 * e * e;
                d.set(i, 0, e / 4.0);
            }
            last = loss;
            let _ = mlp.backward(&d);
            mlp.step(0.1);
        }
        assert!(last < 0.05, "XOR loss stuck at {last}");
    }
}
