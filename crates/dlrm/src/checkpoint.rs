//! Model checkpointing.
//!
//! Industry DLRM training runs for days; a training system needs durable
//! snapshots. [`DlrmCheckpoint`] captures everything trainable (MLPs,
//! dense tables, TT cores, optimizer choice) in a serde-serializable form;
//! kernel workspaces and option flags that only affect speed are rebuilt
//! on load.

use crate::embedding_bag::EmbeddingBag;
use crate::mlp::Mlp;
use crate::model::{DlrmModel, EmbeddingLayer};
use crate::optim::OptimizerKind;
use el_core::{TtEmbeddingBag, TtOptions, TtWorkspace};
use el_tensor::tt::TtCores;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// Serializable snapshot of one embedding layer.
#[derive(Serialize, Deserialize)]
pub enum TableCheckpoint {
    /// Uncompressed table.
    Dense(EmbeddingBag),
    /// TT table: cores plus logical row count and kernel options.
    Tt {
        /// The trained cores.
        cores: TtCores,
        /// Logical rows (capacity may be padded above this).
        num_rows: usize,
        /// Kernel options to restore.
        options: TtOptions,
    },
    /// Parameters live elsewhere; only the dimension is recorded.
    Hosted {
        /// Embedding dimension.
        dim: usize,
    },
}

/// Serializable snapshot of a whole model.
#[derive(Serialize, Deserialize)]
pub struct DlrmCheckpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Bottom MLP parameters.
    pub bottom: Mlp,
    /// Top MLP parameters.
    pub top: Mlp,
    /// Embedding layers.
    pub tables: Vec<TableCheckpoint>,
    /// Learning rate.
    pub lr: f32,
    /// Optimizer kind (Adagrad accumulators are intentionally not
    /// persisted: restarting them is standard practice and keeps
    /// checkpoints small).
    pub optimizer: OptimizerKind,
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

impl DlrmCheckpoint {
    /// Captures a model.
    pub fn capture(model: &DlrmModel) -> Self {
        let tables = model
            .tables
            .iter()
            .map(|t| match t {
                EmbeddingLayer::Dense(bag) => TableCheckpoint::Dense(bag.clone()),
                EmbeddingLayer::Tt(bag, _) => TableCheckpoint::Tt {
                    cores: bag.cores().clone(),
                    num_rows: bag.num_rows(),
                    options: bag.options.clone(),
                },
                EmbeddingLayer::Hosted { dim } => TableCheckpoint::Hosted { dim: *dim },
            })
            .collect();
        Self {
            version: CHECKPOINT_VERSION,
            bottom: model.bottom.clone(),
            top: model.top.clone(),
            tables,
            lr: model.lr,
            optimizer: model.optimizer,
        }
    }

    /// Restores a model (fresh workspaces, fresh optimizer accumulators).
    pub fn restore(self) -> DlrmModel {
        assert_eq!(
            self.version, CHECKPOINT_VERSION,
            "unsupported checkpoint version {}",
            self.version
        );
        let tables = self
            .tables
            .into_iter()
            .map(|t| match t {
                TableCheckpoint::Dense(bag) => EmbeddingLayer::Dense(bag),
                TableCheckpoint::Tt { cores, num_rows, options } => EmbeddingLayer::Tt(
                    Box::new(TtEmbeddingBag::from_cores(cores, num_rows).with_options(options)),
                    TtWorkspace::new(),
                ),
                TableCheckpoint::Hosted { dim } => EmbeddingLayer::Hosted { dim },
            })
            .collect();
        DlrmModel::from_parts(self.bottom, tables, self.top, self.lr, self.optimizer)
    }

    /// Serializes to a writer as JSON.
    pub fn save(&self, w: impl Write) -> std::io::Result<()> {
        serde_json::to_writer(w, self).map_err(std::io::Error::other)
    }

    /// Deserializes from a reader.
    pub fn load(r: impl Read) -> std::io::Result<Self> {
        serde_json::from_reader(r).map_err(std::io::Error::other)
    }

    /// Saves to a file path.
    pub fn save_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.save(std::io::BufWriter::new(f))
    }

    /// Loads from a file path.
    pub fn load_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::File::open(path)?;
        Self::load(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DlrmConfig;
    use el_data::{DatasetSpec, SyntheticDataset};
    use rand::SeedableRng;

    fn trained_model() -> (DlrmModel, SyntheticDataset) {
        let mut spec = DatasetSpec::toy(3, 1500, 1_000_000);
        spec.num_dense = 4;
        let ds = SyntheticDataset::new(spec, 55);
        let cfg = DlrmConfig {
            num_dense: 4,
            table_cardinalities: vec![1500; 3],
            dim: 8,
            bottom_hidden: vec![16],
            top_hidden: vec![16],
            tt_threshold: 1000, // all tables TT
            tt_rank: 8,
            lr: 0.05,
            optimizer: OptimizerKind::Sgd,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut model = DlrmModel::new(&cfg, &mut rng);
        for k in 0..5 {
            let _ = model.train_step(&ds.batch(k, 64));
        }
        (model, ds)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (mut model, ds) = trained_model();
        let batch = ds.batch(100, 32);
        let before = model.predict(&batch);

        let mut buf = Vec::new();
        DlrmCheckpoint::capture(&model).save(&mut buf).unwrap();
        let mut restored = DlrmCheckpoint::load(&buf[..]).unwrap().restore();
        let after = restored.predict(&batch);
        assert_eq!(before, after, "restored model must predict identically");
    }

    #[test]
    fn restored_model_keeps_training() {
        let (model, ds) = trained_model();
        let mut buf = Vec::new();
        DlrmCheckpoint::capture(&model).save(&mut buf).unwrap();
        let mut restored = DlrmCheckpoint::load(&buf[..]).unwrap().restore();
        let loss = restored.train_step(&ds.batch(50, 64));
        assert!(loss.is_finite());
    }

    #[test]
    fn file_round_trip() {
        let (model, ds) = trained_model();
        let path = std::env::temp_dir().join("el_rec_ckpt_test.json");
        DlrmCheckpoint::capture(&model).save_file(&path).unwrap();
        let mut restored = DlrmCheckpoint::load_file(&path).unwrap().restore();
        std::fs::remove_file(&path).ok();
        let batch = ds.batch(7, 16);
        assert!(restored.predict(&batch).iter().all(|p| p.is_finite()));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (model, _) = trained_model();
        let mut ckpt = DlrmCheckpoint::capture(&model);
        ckpt.version = 999;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ckpt.restore()));
        assert!(r.is_err());
    }

    #[test]
    fn hosted_tables_round_trip_as_stubs() {
        let (mut model, _) = trained_model();
        model.tables[1] = EmbeddingLayer::Hosted { dim: 8 };
        let mut buf = Vec::new();
        DlrmCheckpoint::capture(&model).save(&mut buf).unwrap();
        let restored = DlrmCheckpoint::load(&buf[..]).unwrap().restore();
        assert_eq!(restored.hosted_tables(), vec![1]);
    }
}
