//! Model checkpointing.
//!
//! Industry DLRM training runs for days; a training system needs durable
//! snapshots. [`DlrmCheckpoint`] captures everything trainable (MLPs,
//! dense tables, TT cores, optimizer choice **and** optimizer
//! accumulators) in a serde-serializable form; kernel workspaces and
//! option flags that only affect speed are rebuilt on load.
//!
//! Two durability properties this module owns (DESIGN.md §11):
//!
//! * **Typed failure** — [`DlrmCheckpoint::restore`] returns a
//!   [`CkptError`] instead of panicking, so a corrupt or future-versioned
//!   file degrades into an error the caller can route around (e.g. fall
//!   back to an older checkpoint).
//! * **Atomic replacement** — [`DlrmCheckpoint::save_file`] goes through
//!   [`atomic_write`] (temp file → fsync → rename → fsync directory), so
//!   a crash mid-save can never destroy the previous checkpoint: the
//!   target path always holds either the old bytes or the new bytes.
//!
//! Hosted tables are still serialized as dimension stubs *here* because
//! their parameters live in the parameter server; the full
//! training-state capture (server tables, push stamps, loader cursor) is
//! `el_pipeline::ckpt::TrainingCheckpoint`, which embeds this checkpoint.

use crate::embedding_bag::EmbeddingBag;
use crate::mlp::Mlp;
use crate::model::{AdagradStates, DlrmModel, EmbeddingLayer};
use crate::optim::OptimizerKind;
use el_core::{TtEmbeddingBag, TtOptions, TtWorkspace};
use el_tensor::tt::TtCores;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// Typed checkpoint failure: corruption, versioning and IO are distinct
/// conditions with distinct recoveries (fall back to an older file, warn
/// and upgrade, retry the mount), so they must not collapse into one
/// opaque `io::Error` — and never into a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptError {
    /// The bytes are not a valid checkpoint: bad magic, framing that runs
    /// past the end of the file, a checksum mismatch, or a payload that
    /// fails to deserialize. Carries a human-readable reason.
    Corrupt(String),
    /// The checkpoint's format version is not supported by this build.
    Version {
        /// Version recorded in the file.
        got: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The checkpoint is well-formed but inconsistent with the model it
    /// is being restored into (e.g. optimizer state of the wrong shape).
    StateMismatch(String),
    /// The underlying storage failed (message of the OS error).
    Io(String),
    /// A checkpoint store scan found no checkpoint that passes
    /// verification.
    NoValidCheckpoint,
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CkptError::Version { got, supported } => {
                write!(f, "unsupported checkpoint version {got} (this build reads <= {supported})")
            }
            CkptError::StateMismatch(why) => {
                write!(f, "checkpoint does not fit the model: {why}")
            }
            CkptError::Io(why) => write!(f, "checkpoint IO failed: {why}"),
            CkptError::NoValidCheckpoint => write!(f, "no valid checkpoint found"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e.to_string())
    }
}

/// Writes `bytes` to `path` atomically with respect to crashes:
///
/// 1. write to a fresh temp file in the **same directory** (rename must
///    not cross filesystems),
/// 2. `fsync` the temp file (contents durable before the name switch),
/// 3. `rename` over the target (POSIX rename replaces atomically),
/// 4. `fsync` the directory (the new directory entry itself durable).
///
/// A crash at any point leaves the target path holding either the
/// complete old bytes or the complete new bytes — never a torn mix, and
/// never nothing. This is the write path every checkpoint save uses.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("atomic_write target has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{file_name}.tmp.{}", std::process::id()));
    let result = (|| {
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Directory fsync makes the rename itself durable. Not every
        // filesystem supports opening a directory for sync; failures to
        // *open* are ignored (best effort), sync failures are not.
        if let Ok(d) = std::fs::File::open(&dir) {
            d.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Serializable snapshot of one embedding layer.
#[derive(Serialize, Deserialize)]
pub enum TableCheckpoint {
    /// Uncompressed table.
    Dense(EmbeddingBag),
    /// TT table: cores plus logical row count and kernel options.
    Tt {
        /// The trained cores.
        cores: TtCores,
        /// Logical rows (capacity may be padded above this).
        num_rows: usize,
        /// Kernel options to restore.
        options: TtOptions,
    },
    /// Parameters live elsewhere; only the dimension is recorded. The
    /// owning parameter server's state is captured separately
    /// (`el_pipeline::ckpt::ServerCheckpoint`).
    Hosted {
        /// Embedding dimension.
        dim: usize,
    },
    /// int8-quantized table (codes plus per-row affine parameters).
    Quantized(el_core::quantized::QuantizedEmbeddingBag),
    /// bfloat16-storage table.
    Bf16(el_core::quantized::Bf16EmbeddingBag),
}

/// Serializable snapshot of a whole model.
#[derive(Serialize, Deserialize)]
pub struct DlrmCheckpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Bottom MLP parameters.
    pub bottom: Mlp,
    /// Top MLP parameters.
    pub top: Mlp,
    /// Embedding layers.
    pub tables: Vec<TableCheckpoint>,
    /// Learning rate.
    pub lr: f32,
    /// Optimizer kind.
    pub optimizer: OptimizerKind,
    /// Adagrad accumulators (format v2; `None` for SGD models and for v1
    /// files, which dropped them). Absent accumulators on an Adagrad
    /// model restart from zero with a logged warning — the resumed run is
    /// then *not* byte-identical to an uninterrupted one.
    #[serde(default)]
    pub opt_states: Option<AdagradStates>,
}

/// Current checkpoint format version.
///
/// * v1 — parameters only; Adagrad accumulators intentionally dropped.
/// * v2 — adds `opt_states` so an Adagrad run resumes byte-identically.
pub const CHECKPOINT_VERSION: u32 = 2;

impl DlrmCheckpoint {
    /// Captures a model, including optimizer accumulators.
    pub fn capture(model: &DlrmModel) -> Self {
        let tables: Vec<TableCheckpoint> = model
            .tables
            .iter()
            .map(|t| match t {
                EmbeddingLayer::Dense(bag) => TableCheckpoint::Dense(bag.clone()),
                EmbeddingLayer::Tt(bag, _) => TableCheckpoint::Tt {
                    cores: bag.cores().clone(),
                    num_rows: bag.num_rows(),
                    options: bag.options.clone(),
                },
                EmbeddingLayer::Hosted { dim } => TableCheckpoint::Hosted { dim: *dim },
                EmbeddingLayer::Quantized(bag) => TableCheckpoint::Quantized(bag.clone()),
                EmbeddingLayer::Bf16(bag) => TableCheckpoint::Bf16(bag.clone()),
            })
            .collect();
        let mut opt_states = model.opt_states().cloned();
        if let Some(states) = &mut opt_states {
            // Hosted tables train server-side (plain SGD on the parameter
            // server); any worker-side accumulator entry for them is a
            // leftover from before the table was hoisted and must not be
            // persisted — restore builds hosted entries empty.
            for (i, t) in model.tables.iter().enumerate() {
                if matches!(t, EmbeddingLayer::Hosted { .. }) {
                    if let Some(entry) = states.tables.get_mut(i) {
                        entry.clear();
                    }
                }
            }
        }
        Self {
            version: CHECKPOINT_VERSION,
            bottom: model.bottom.clone(),
            top: model.top.clone(),
            tables,
            lr: model.lr,
            optimizer: model.optimizer,
            opt_states,
        }
    }

    /// Restores a model (fresh workspaces; optimizer accumulators from
    /// the checkpoint when present, restarted with a warning otherwise).
    pub fn restore(self) -> Result<DlrmModel, CkptError> {
        if self.version == 0 || self.version > CHECKPOINT_VERSION {
            return Err(CkptError::Version { got: self.version, supported: CHECKPOINT_VERSION });
        }
        let tables = self
            .tables
            .into_iter()
            .map(|t| match t {
                TableCheckpoint::Dense(bag) => EmbeddingLayer::Dense(bag),
                TableCheckpoint::Tt { cores, num_rows, options } => EmbeddingLayer::Tt(
                    Box::new(TtEmbeddingBag::from_cores(cores, num_rows).with_options(options)),
                    TtWorkspace::new(),
                ),
                TableCheckpoint::Hosted { dim } => EmbeddingLayer::Hosted { dim },
                TableCheckpoint::Quantized(bag) => EmbeddingLayer::Quantized(bag),
                TableCheckpoint::Bf16(bag) => EmbeddingLayer::Bf16(bag),
            })
            .collect();
        if matches!(self.optimizer, OptimizerKind::Adagrad { .. }) && self.opt_states.is_none() {
            eprintln!(
                "warning: checkpoint (format v{}) carries no Adagrad accumulators; \
                 restarting them — the resumed trajectory will diverge from the \
                 original run",
                self.version
            );
        }
        DlrmModel::from_parts_with_states(
            self.bottom,
            tables,
            self.top,
            self.lr,
            self.optimizer,
            self.opt_states,
        )
        .map_err(CkptError::StateMismatch)
    }

    /// Serializes to a writer as JSON.
    pub fn save(&self, w: impl Write) -> std::io::Result<()> {
        serde_json::to_writer(w, self).map_err(std::io::Error::other)
    }

    /// Serializes to a byte vector (the payload checkpoint stores frame).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.save(&mut buf).expect("serializing to a Vec cannot fail");
        buf
    }

    /// Deserializes from a reader.
    pub fn load(r: impl Read) -> std::io::Result<Self> {
        serde_json::from_reader(r).map_err(std::io::Error::other)
    }

    /// Deserializes from bytes with a typed corruption error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| CkptError::Corrupt(format!("model payload not UTF-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| CkptError::Corrupt(format!("model payload: {e}")))
    }

    /// Saves to a file path atomically (see [`atomic_write`]): a crash
    /// mid-save leaves any previous checkpoint at `path` intact.
    pub fn save_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        atomic_write(path, &self.to_bytes())
    }

    /// Loads from a file path.
    pub fn load_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::File::open(path)?;
        Self::load(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DlrmConfig;
    use el_data::{DatasetSpec, SyntheticDataset};
    use rand::SeedableRng;

    fn trained_model_with(optimizer: OptimizerKind) -> (DlrmModel, SyntheticDataset) {
        let mut spec = DatasetSpec::toy(3, 1500, 1_000_000);
        spec.num_dense = 4;
        let ds = SyntheticDataset::new(spec, 55);
        let cfg = DlrmConfig {
            num_dense: 4,
            table_cardinalities: vec![1500; 3],
            dim: 8,
            bottom_hidden: vec![16],
            top_hidden: vec![16],
            tt_threshold: 1000, // all tables TT
            tt_rank: 8,
            lr: 0.05,
            optimizer,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut model = DlrmModel::new(&cfg, &mut rng);
        for k in 0..5 {
            let _ = model.train_step(&ds.batch(k, 64));
        }
        (model, ds)
    }

    fn trained_model() -> (DlrmModel, SyntheticDataset) {
        trained_model_with(OptimizerKind::Sgd)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (mut model, ds) = trained_model();
        let batch = ds.batch(100, 32);
        let before = model.predict(&batch);

        let mut buf = Vec::new();
        DlrmCheckpoint::capture(&model).save(&mut buf).unwrap();
        let mut restored = DlrmCheckpoint::load(&buf[..]).unwrap().restore().unwrap();
        let after = restored.predict(&batch);
        assert_eq!(before, after, "restored model must predict identically");
    }

    #[test]
    fn restored_model_keeps_training() {
        let (model, ds) = trained_model();
        let mut buf = Vec::new();
        DlrmCheckpoint::capture(&model).save(&mut buf).unwrap();
        let mut restored = DlrmCheckpoint::load(&buf[..]).unwrap().restore().unwrap();
        let loss = restored.train_step(&ds.batch(50, 64));
        assert!(loss.is_finite());
    }

    #[test]
    fn file_round_trip() {
        let (model, ds) = trained_model();
        let path = std::env::temp_dir().join("el_rec_ckpt_test.json");
        DlrmCheckpoint::capture(&model).save_file(&path).unwrap();
        let mut restored = DlrmCheckpoint::load_file(&path).unwrap().restore().unwrap();
        std::fs::remove_file(&path).ok();
        let batch = ds.batch(7, 16);
        assert!(restored.predict(&batch).iter().all(|p| p.is_finite()));
    }

    #[test]
    fn save_file_replaces_without_truncating_first() {
        // The old save path opened the target with File::create (truncate
        // in place) — a crash mid-write destroyed the only copy. The
        // atomic path must leave the previous file fully intact until the
        // rename, so after any number of re-saves the file is a complete,
        // loadable checkpoint and no temp litter remains.
        let (model, _) = trained_model();
        let dir = std::env::temp_dir().join(format!("el_rec_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        for _ in 0..3 {
            DlrmCheckpoint::capture(&model).save_file(&path).unwrap();
            let restored = DlrmCheckpoint::load_file(&path).unwrap().restore();
            assert!(restored.is_ok(), "every save must leave a loadable file");
        }
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "ckpt.json")
            .collect();
        assert!(leftovers.is_empty(), "temp litter left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let (model, _) = trained_model();
        let mut ckpt = DlrmCheckpoint::capture(&model);
        ckpt.version = 999;
        match ckpt.restore() {
            Err(CkptError::Version { got: 999, supported }) => {
                assert_eq!(supported, CHECKPOINT_VERSION)
            }
            other => panic!("expected a version error, got {:?}", other.map(|_| "a model")),
        }
    }

    #[test]
    fn low_bit_tables_round_trip() {
        let (mut model, ds) = trained_model();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        model.tables[0] = EmbeddingLayer::Quantized(
            el_core::quantized::QuantizedEmbeddingBag::new(1500, 8, 0.1, &mut rng),
        );
        model.tables[2] =
            EmbeddingLayer::Bf16(el_core::quantized::Bf16EmbeddingBag::new(1500, 8, 0.1, &mut rng));
        let batch = ds.batch(3, 32);
        let want = model.predict(&batch);
        let bytes = DlrmCheckpoint::capture(&model).to_bytes();
        let mut restored =
            DlrmCheckpoint::from_bytes(&bytes).expect("parse").restore().expect("restore");
        assert!(matches!(restored.tables[0], EmbeddingLayer::Quantized(_)));
        assert!(matches!(restored.tables[2], EmbeddingLayer::Bf16(_)));
        let got = restored.predict(&batch);
        assert_eq!(want, got, "low-bit tables must restore bit-exactly");
    }

    #[test]
    fn hosted_tables_round_trip_as_stubs() {
        let (mut model, _) = trained_model();
        model.tables[1] = EmbeddingLayer::Hosted { dim: 8 };
        let mut buf = Vec::new();
        DlrmCheckpoint::capture(&model).save(&mut buf).unwrap();
        let restored = DlrmCheckpoint::load(&buf[..]).unwrap().restore().unwrap();
        assert_eq!(restored.hosted_tables(), vec![1]);
    }

    #[test]
    fn adagrad_accumulators_resume_byte_identically() {
        // Uninterrupted: train 5 + 3 more batches. Interrupted: train 5,
        // checkpoint, restore, train the same 3. With persisted
        // accumulators both must follow the same bit-exact trajectory.
        let (mut oracle, ds) = trained_model_with(OptimizerKind::Adagrad { eps: 1e-8 });
        let ckpt = DlrmCheckpoint::capture(&oracle);
        assert!(ckpt.opt_states.is_some(), "v2 must capture Adagrad state");
        let bytes = ckpt.to_bytes();
        let mut resumed = DlrmCheckpoint::from_bytes(&bytes).unwrap().restore().unwrap();
        for k in 5..8 {
            let a = oracle.train_step(&ds.batch(k, 64));
            let b = resumed.train_step(&ds.batch(k, 64));
            assert_eq!(a.to_bits(), b.to_bits(), "loss diverged at batch {k}");
        }
        let check = ds.batch(99, 32);
        for (a, b) in oracle.predict(&check).iter().zip(resumed.predict(&check)) {
            assert_eq!(a.to_bits(), b.to_bits(), "predictions diverged after resume");
        }
    }

    #[test]
    fn v1_checkpoint_loads_with_restarted_accumulators() {
        // A v1 file has version: 1 and no opt_states field at all. It
        // must load (not panic), with accumulators restarted.
        let (model, ds) = trained_model_with(OptimizerKind::Adagrad { eps: 1e-8 });
        let mut ckpt = DlrmCheckpoint::capture(&model);
        ckpt.version = 1;
        ckpt.opt_states = None;
        let json = String::from_utf8(ckpt.to_bytes()).unwrap();
        assert!(!json.contains("\"opt_states\":{"), "v1 surrogate must not carry state");
        let mut restored = DlrmCheckpoint::from_bytes(json.as_bytes()).unwrap().restore().unwrap();
        let fresh = restored.opt_states().expect("adagrad model rebuilds state");
        assert!(
            fresh.bottom.iter().all(|s| s.accum.iter().all(|&a| a == 0.0)),
            "v1 load must restart accumulators from zero"
        );
        assert!(restored.train_step(&ds.batch(9, 32)).is_finite());
    }

    #[test]
    fn mismatched_opt_states_are_rejected() {
        let (model, _) = trained_model_with(OptimizerKind::Adagrad { eps: 1e-8 });
        let (other, _) = trained_model_with(OptimizerKind::Adagrad { eps: 1e-8 });
        let mut ckpt = DlrmCheckpoint::capture(&model);
        let mut wrong = other.opt_states().unwrap().clone();
        wrong.bottom[0].accum.push(0.0); // shape no longer fits
        ckpt.opt_states = Some(wrong);
        match ckpt.restore() {
            Err(CkptError::StateMismatch(_)) => {}
            other => panic!("expected StateMismatch, got {:?}", other.map(|_| "a model")),
        }
    }

    #[test]
    fn corrupt_bytes_are_a_typed_error() {
        match DlrmCheckpoint::from_bytes(b"{ not json") {
            Err(CkptError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {:?}", other.map(|_| "a model")),
        }
    }
}
