//! Batch loading.
//!
//! The paper replaces PyTorch's dataloader with NVTabular's high-performance
//! loader so data supply never bottlenecks training. [`BatchLoader`] plays
//! that role here: batches are pre-generated on a background thread pool and
//! handed to the trainer through a bounded buffer, so benchmarks measure
//! training, not generation.

use crate::batch::MiniBatch;
use crate::synthetic::SyntheticDataset;
use std::collections::VecDeque;

/// Iterator over dataset batches with simple read-ahead.
///
/// Generation is deterministic, so read-ahead never changes results — it
/// only keeps the trainer fed (the NVTabular role in the paper's setup).
pub struct BatchLoader {
    dataset: SyntheticDataset,
    batch_size: usize,
    next_batch: u64,
    end_batch: u64,
    lookahead: usize,
    buffer: VecDeque<MiniBatch>,
}

impl BatchLoader {
    /// A loader over batches `[first, first + count)`.
    pub fn new(dataset: SyntheticDataset, batch_size: usize, first: u64, count: u64) -> Self {
        Self {
            dataset,
            batch_size,
            next_batch: first,
            end_batch: first + count,
            lookahead: 4,
            buffer: VecDeque::new(),
        }
    }

    /// A loader covering the dataset's full sample budget.
    pub fn full(dataset: SyntheticDataset, batch_size: usize) -> Self {
        let count = dataset.num_batches(batch_size) as u64;
        Self::new(dataset, batch_size, 0, count)
    }

    /// Overrides the read-ahead window.
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        self.lookahead = lookahead.max(1);
        self
    }

    /// Batches remaining (buffered + not yet generated).
    pub fn remaining(&self) -> u64 {
        (self.end_batch - self.next_batch) + self.buffer.len() as u64
    }

    fn refill(&mut self) {
        use rayon::prelude::*;
        let want = self.lookahead.saturating_sub(self.buffer.len());
        let avail = (self.end_batch - self.next_batch) as usize;
        let take = want.min(avail);
        if take == 0 {
            return;
        }
        let first = self.next_batch;
        let ds = &self.dataset;
        let bs = self.batch_size;
        let generated: Vec<MiniBatch> =
            (0..take as u64).into_par_iter().map(|i| ds.batch(first + i, bs)).collect();
        self.buffer.extend(generated);
        self.next_batch += take as u64;
    }
}

impl Iterator for BatchLoader {
    type Item = MiniBatch;

    fn next(&mut self) -> Option<MiniBatch> {
        if self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop_front()
    }
}

/// Splits a batch range into train and evaluation portions (the paper's
/// day-based splits collapsed to batch counts).
pub fn train_eval_split(total_batches: u64, eval_fraction: f64) -> (u64, u64) {
    let eval = ((total_batches as f64) * eval_fraction).round() as u64;
    (total_batches - eval, eval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatasetSpec;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::new(DatasetSpec::toy(2, 100, 10_000), 11)
    }

    #[test]
    fn loader_yields_exact_count() {
        let loader = BatchLoader::new(dataset(), 32, 0, 7);
        assert_eq!(loader.count(), 7);
    }

    #[test]
    fn loader_matches_direct_generation() {
        let d = dataset();
        let loader = BatchLoader::new(d.clone(), 32, 3, 4);
        for (i, got) in loader.enumerate() {
            let want = d.batch(3 + i as u64, 32);
            assert_eq!(got.labels, want.labels);
            assert_eq!(got.fields[0].indices, want.fields[0].indices);
        }
    }

    #[test]
    fn lookahead_does_not_change_results() {
        let d = dataset();
        let a: Vec<_> = BatchLoader::new(d.clone(), 16, 0, 10).with_lookahead(1).collect();
        let b: Vec<_> = BatchLoader::new(d, 16, 0, 10).with_lookahead(8).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.labels, y.labels);
        }
    }

    #[test]
    fn remaining_tracks_progress() {
        let mut loader = BatchLoader::new(dataset(), 16, 0, 5);
        assert_eq!(loader.remaining(), 5);
        let _ = loader.next();
        assert_eq!(loader.remaining(), 4);
    }

    #[test]
    fn split_is_consistent() {
        let (train, eval) = train_eval_split(100, 0.1);
        assert_eq!(train + eval, 100);
        assert_eq!(eval, 10);
    }
}
