//! Parser for the real Criteo TSV format.
//!
//! The Criteo Kaggle / Terabyte logs are tab-separated lines:
//!
//! ```text
//! <label> \t I1 ... I13 \t C1 ... C26
//! ```
//!
//! with integer features `I*` (possibly empty) and 32-bit hex categorical
//! hashes `C*` (possibly empty). When the actual datasets are present on
//! disk this module converts them into [`MiniBatch`]es so every experiment
//! in the suite can run on genuine data; the synthetic generators stand in
//! otherwise (see DESIGN.md's substitution table).

use crate::batch::{MiniBatch, SparseField};
use std::io::BufRead;

/// Number of integer features in the Criteo schema.
pub const CRITEO_DENSE: usize = 13;
/// Number of categorical features in the Criteo schema.
pub const CRITEO_SPARSE: usize = 26;

/// One parsed Criteo record.
#[derive(Clone, Debug, PartialEq)]
pub struct CriteoRecord {
    /// Click label.
    pub label: f32,
    /// Log-transformed integer features (`log(1 + x)`, missing = 0).
    pub dense: [f32; CRITEO_DENSE],
    /// Raw categorical hashes (missing = 0).
    pub sparse: [u32; CRITEO_SPARSE],
}

/// Parses one TSV line. Returns `None` for malformed lines (the public
/// datasets contain a small number of truncated records).
pub fn parse_line(line: &str) -> Option<CriteoRecord> {
    let mut parts = line.split('\t');
    let label: f32 = parts.next()?.trim().parse().ok()?;
    let mut dense = [0.0f32; CRITEO_DENSE];
    for d in dense.iter_mut() {
        let field = parts.next()?;
        if !field.is_empty() {
            let v: f64 = field.trim().parse().ok()?;
            // standard Criteo preprocessing: log(1 + max(x, 0))
            *d = ((v.max(0.0)) + 1.0).ln() as f32;
        }
    }
    let mut sparse = [0u32; CRITEO_SPARSE];
    for s in sparse.iter_mut() {
        let field = parts.next()?;
        if !field.is_empty() {
            *s = u32::from_str_radix(field.trim(), 16).ok()?;
        }
    }
    Some(CriteoRecord { label, dense, sparse })
}

/// Reads records from a TSV reader, hashing each categorical value into its
/// table's cardinality (the `max_ind_range` trick of the reference DLRM),
/// and groups them into batches.
pub fn read_batches(
    reader: impl BufRead,
    cardinalities: &[usize; CRITEO_SPARSE],
    batch_size: usize,
) -> std::io::Result<Vec<MiniBatch>> {
    let mut batches = Vec::new();
    let mut current: Vec<CriteoRecord> = Vec::with_capacity(batch_size);
    for line in reader.lines() {
        let line = line?;
        if let Some(rec) = parse_line(&line) {
            current.push(rec);
            if current.len() == batch_size {
                batches.push(records_to_batch(&current, cardinalities));
                current.clear();
            }
        }
    }
    if !current.is_empty() {
        batches.push(records_to_batch(&current, cardinalities));
    }
    Ok(batches)
}

fn records_to_batch(records: &[CriteoRecord], cardinalities: &[usize; CRITEO_SPARSE]) -> MiniBatch {
    let mut dense = Vec::with_capacity(records.len() * CRITEO_DENSE);
    let mut fields: Vec<SparseField> = (0..CRITEO_SPARSE)
        .map(|_| SparseField::with_capacity(records.len(), records.len()))
        .collect();
    let mut labels = Vec::with_capacity(records.len());
    for rec in records {
        dense.extend_from_slice(&rec.dense);
        labels.push(rec.label);
        for (t, field) in fields.iter_mut().enumerate() {
            let idx = (rec.sparse[t] as usize % cardinalities[t]) as u32;
            field.push_sample(&[idx]);
        }
    }
    MiniBatch { dense, num_dense: CRITEO_DENSE, fields, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_line() -> String {
        let dense: Vec<String> = (0..13).map(|i| i.to_string()).collect();
        let sparse: Vec<String> = (0..26).map(|i| format!("{:08x}", i * 1000 + 7)).collect();
        format!("1\t{}\t{}", dense.join("\t"), sparse.join("\t"))
    }

    #[test]
    fn parses_well_formed_line() {
        let rec = parse_line(&sample_line()).unwrap();
        assert_eq!(rec.label, 1.0);
        assert_eq!(rec.dense[0], 0.0f32.max((1.0f64).ln() as f32)); // log(1+0)
        assert!((rec.dense[1] - (2.0f64).ln() as f32).abs() < 1e-6);
        assert_eq!(rec.sparse[0], 7);
        assert_eq!(rec.sparse[1], 1007);
    }

    #[test]
    fn empty_fields_default_to_zero() {
        let line = format!("0\t{}\t{}", vec![""; 13].join("\t"), vec![""; 26].join("\t"));
        let rec = parse_line(&line).unwrap();
        assert_eq!(rec.dense, [0.0; 13]);
        assert_eq!(rec.sparse, [0; 26]);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_line("garbage").is_none());
        assert!(parse_line("1\t2").is_none());
        assert!(parse_line("").is_none());
    }

    #[test]
    fn negative_integers_are_clamped() {
        let mut parts = vec!["1".to_string()];
        parts.extend((0..13).map(|_| "-5".to_string()));
        parts.extend((0..26).map(|_| "ff".to_string()));
        let rec = parse_line(&parts.join("\t")).unwrap();
        assert_eq!(rec.dense[0], 0.0); // log(1 + max(-5, 0)) = 0
    }

    #[test]
    fn read_batches_hashes_into_cardinality() {
        let data = format!("{}\n{}\n{}\n", sample_line(), sample_line(), sample_line());
        let cards = [10usize; CRITEO_SPARSE];
        let batches = read_batches(Cursor::new(data), &cards, 2).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].batch_size(), 2);
        assert_eq!(batches[1].batch_size(), 1);
        for b in &batches {
            b.validate().unwrap();
            for f in &b.fields {
                assert!(f.indices.iter().all(|&i| i < 10));
            }
        }
    }
}
