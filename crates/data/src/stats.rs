//! Dataset statistics — the measurements behind paper Figure 4.
//!
//! * [`AccessHistogram`] accumulates per-index access counts and reports the
//!   cumulative-access curve of Figure 4a ("a small proportion of embeddings
//!   accounts for the majority of embedding access").
//! * [`unique_per_batch`] measures the batch-size vs unique-indices gap of
//!   Figure 4b, which motivates in-advance gradient aggregation.

use crate::batch::MiniBatch;

/// Per-index access counters for one embedding table.
#[derive(Clone, Debug)]
pub struct AccessHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl AccessHistogram {
    /// A histogram for a table with `cardinality` rows.
    pub fn new(cardinality: usize) -> Self {
        Self { counts: vec![0; cardinality], total: 0 }
    }

    /// Records every access of table `field` across the batch.
    pub fn record(&mut self, batch: &MiniBatch, field: usize) {
        for &i in &batch.fields[field].indices {
            self.counts[i as usize] += 1;
            self.total += 1;
        }
    }

    /// Records raw indices.
    pub fn record_indices(&mut self, indices: &[u32]) {
        for &i in indices {
            self.counts[i as usize] += 1;
            self.total += 1;
        }
    }

    /// Total recorded accesses.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Access counts sorted descending (popularity order).
    pub fn sorted_counts(&self) -> Vec<u64> {
        let mut c = self.counts.clone();
        c.sort_unstable_by(|a, b| b.cmp(a));
        c
    }

    /// Indices sorted by descending access frequency — the `Fre_order` input
    /// of paper Algorithm 2.
    pub fn frequency_order(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.counts.len() as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.counts[i as usize]));
        order
    }

    /// Cumulative access share of the top `fraction` of indices
    /// (Figure 4a's y-axis for a given x).
    pub fn cumulative_share(&self, fraction: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let k = ((self.counts.len() as f64 * fraction).ceil() as usize).min(self.counts.len());
        let sorted = self.sorted_counts();
        let top: u64 = sorted[..k].iter().sum();
        top as f64 / self.total as f64
    }

    /// The full CDF sampled at `points` evenly spaced fractions; the series
    /// plotted in Figure 4a.
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        let sorted = self.sorted_counts();
        let mut running = 0u64;
        let mut prefix = Vec::with_capacity(sorted.len());
        for c in &sorted {
            running += c;
            prefix.push(running);
        }
        (1..=points)
            .map(|p| {
                let frac = p as f64 / points as f64;
                let k = ((sorted.len() as f64 * frac).ceil() as usize).clamp(1, sorted.len());
                let share =
                    if self.total == 0 { 0.0 } else { prefix[k - 1] as f64 / self.total as f64 };
                (frac, share)
            })
            .collect()
    }
}

/// Average number of unique indices per batch for the given table across a
/// set of batches (Figure 4b's y-axis).
pub fn unique_per_batch(batches: &[MiniBatch], field: usize) -> f64 {
    if batches.is_empty() {
        return 0.0;
    }
    let sum: usize = batches.iter().map(|b| b.fields[field].unique_count()).sum();
    sum as f64 / batches.len() as f64
}

/// Average unique indices per batch aggregated over all tables.
pub fn mean_unique_per_batch(batches: &[MiniBatch]) -> f64 {
    if batches.is_empty() || batches[0].fields.is_empty() {
        return 0.0;
    }
    let tables = batches[0].fields.len();
    (0..tables).map(|t| unique_per_batch(batches, t)).sum::<f64>() / tables as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatasetSpec;
    use crate::synthetic::SyntheticDataset;

    #[test]
    fn histogram_counts_accesses() {
        let mut h = AccessHistogram::new(10);
        h.record_indices(&[1, 1, 2, 9]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.sorted_counts()[0], 2);
    }

    #[test]
    fn frequency_order_ranks_hot_first() {
        let mut h = AccessHistogram::new(4);
        h.record_indices(&[3, 3, 3, 0, 0, 2]);
        let order = h.frequency_order();
        assert_eq!(order[0], 3);
        assert_eq!(order[1], 0);
    }

    #[test]
    fn cumulative_share_monotone_and_bounded() {
        let d = SyntheticDataset::new(DatasetSpec::toy(1, 500, 10_000), 3);
        let mut h = AccessHistogram::new(500);
        for bi in 0..20 {
            h.record(&d.batch(bi, 256), 0);
        }
        let mut prev = 0.0;
        for (_, share) in h.cdf(10) {
            assert!(share >= prev - 1e-12);
            assert!(share <= 1.0 + 1e-12);
            prev = share;
        }
        assert!((h.cumulative_share(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn synthetic_data_shows_power_law() {
        // Matches the Figure 4a observation: a small index fraction takes
        // the bulk of accesses.
        let d = SyntheticDataset::new(DatasetSpec::toy(1, 2000, 100_000), 5);
        let mut h = AccessHistogram::new(2000);
        for bi in 0..40 {
            h.record(&d.batch(bi, 512), 0);
        }
        assert!(h.cumulative_share(0.1) > 0.5, "got {}", h.cumulative_share(0.1));
    }

    #[test]
    fn unique_gap_grows_with_batch_size() {
        // Figure 4b: unique/batch-size ratio shrinks as batches grow.
        let d = SyntheticDataset::new(DatasetSpec::toy(1, 1000, 1_000_000), 7);
        let small: Vec<_> = (0..4).map(|i| d.batch(i, 128)).collect();
        let large: Vec<_> = (0..4).map(|i| d.batch(i, 2048)).collect();
        let r_small = unique_per_batch(&small, 0) / (128.0 * 2.0);
        let r_large = unique_per_batch(&large, 0) / (2048.0 * 2.0);
        assert!(r_large < r_small, "expected ratio to shrink: {r_small} -> {r_large}");
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(unique_per_batch(&[], 0), 0.0);
        assert_eq!(mean_unique_per_batch(&[]), 0.0);
        let h = AccessHistogram::new(5);
        assert_eq!(h.cumulative_share(0.5), 0.0);
    }
}
