//! Open-loop serving load generator.
//!
//! Drives the serving tier the way a latency benchmark must be driven: the
//! arrival schedule is drawn *ahead of time* from a Poisson process at the
//! offered rate, independent of how fast the server answers. Closed-loop
//! generators (issue, wait, issue) implicitly apply back-pressure and hide
//! queueing delay — the "coordinated omission" trap — whereas an open-loop
//! trace keeps arriving on schedule, so p99/p999 reflect what a real user
//! population would see.
//!
//! Index popularity follows the same scattered-Zipf model as
//! [`crate::synthetic`]: ranks are Zipf-distributed and mapped through a
//! coprime multiplicative permutation so popular indices carry no locality
//! in their raw values. Generation is deterministic in the seed, which the
//! serving equivalence tests rely on.

use crate::synthetic::{coprime_multiplier, mix};
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

/// Parameters of an open-loop request stream.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Offered load in requests per second (arrivals keep this rate no
    /// matter how slowly requests complete).
    pub offered_rps: f64,
    /// Embedding-table cardinality the indices are drawn from.
    pub num_rows: usize,
    /// Sparse lookups per request (multi-hot width).
    pub indices_per_request: usize,
    /// Zipf exponent of the index popularity distribution.
    pub zipf_exponent: f64,
    /// Tenants requests are spread over (uniformly).
    pub num_tenants: usize,
    /// Master seed; equal seeds yield bit-identical traces.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            offered_rps: 1_000.0,
            num_rows: 100_000,
            indices_per_request: 16,
            zipf_exponent: 1.05,
            num_tenants: 1,
            seed: 0,
        }
    }
}

/// One generated request: when it arrives, who sent it, what it looks up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenRequest {
    /// Arrival time in nanoseconds since the start of the trace.
    pub arrive_ns: u64,
    /// Owning tenant, `0..num_tenants`.
    pub tenant: u32,
    /// Sparse lookup indices (one pooled sample).
    pub indices: Vec<u32>,
}

/// Deterministic open-loop Poisson/Zipf request generator.
pub struct OpenLoopGen {
    cfg: OpenLoopConfig,
    rng: rand::rngs::StdRng,
    zipf: Zipf<f64>,
    /// Rank -> index scattering multiplier (coprime with `num_rows`).
    mult: u64,
    clock_ns: u64,
}

impl OpenLoopGen {
    /// A generator over `cfg`, deterministically derived from `cfg.seed`.
    ///
    /// # Panics
    /// Panics when the offered rate is not positive or a dimension is zero.
    pub fn new(cfg: OpenLoopConfig) -> Self {
        assert!(cfg.offered_rps > 0.0, "offered rate must be positive");
        assert!(cfg.num_rows > 0, "table must have rows");
        assert!(cfg.indices_per_request > 0, "requests must look something up");
        assert!(cfg.num_tenants > 0, "at least one tenant");
        let card = cfg.num_rows as u64;
        let zipf = Zipf::new(card, cfg.zipf_exponent).expect("valid zipf parameters"); // PANIC-OK: asserted above
        let rng = rand::rngs::StdRng::seed_from_u64(mix(cfg.seed, 0x10AD_6E4E));
        let mult = coprime_multiplier(card, mix(cfg.seed, 0x5CA7));
        Self { cfg, rng, zipf, mult, clock_ns: 0 }
    }

    /// The configuration this stream follows.
    pub fn config(&self) -> &OpenLoopConfig {
        &self.cfg
    }

    /// Draws the next request, advancing the arrival clock by an
    /// exponentially distributed inter-arrival gap (Poisson arrivals at the
    /// offered rate).
    pub fn next_request(&mut self) -> GenRequest {
        // Inverse-CDF sample of Exp(rate); 1-u in (0,1] keeps ln finite.
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let gap_s = -(1.0 - u).ln() / self.cfg.offered_rps;
        self.clock_ns += (gap_s * 1e9) as u64;
        let tenant = self.rng.gen_range(0..self.cfg.num_tenants as u32);
        let card = self.cfg.num_rows as u64;
        let indices = (0..self.cfg.indices_per_request)
            .map(|_| {
                let rank = self.zipf.sample(&mut self.rng) as u64 - 1;
                ((rank % card).wrapping_mul(self.mult) % card) as u32
            })
            .collect();
        GenRequest { arrive_ns: self.clock_ns, tenant, indices }
    }

    /// Materializes the first `count` arrivals as a trace (the bench draws
    /// the whole schedule before starting the clock, as open loop demands).
    pub fn trace(&mut self, count: usize) -> Vec<GenRequest> {
        (0..count).map(|_| self.next_request()).collect()
    }
}

impl Iterator for OpenLoopGen {
    type Item = GenRequest;

    fn next(&mut self) -> Option<GenRequest> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> OpenLoopConfig {
        OpenLoopConfig {
            offered_rps: 10_000.0,
            num_rows: 5_000,
            indices_per_request: 8,
            zipf_exponent: 1.05,
            num_tenants: 3,
            seed,
        }
    }

    #[test]
    fn equal_seeds_yield_identical_traces() {
        let a = OpenLoopGen::new(cfg(7)).trace(500);
        let b = OpenLoopGen::new(cfg(7)).trace(500);
        assert_eq!(a, b, "open-loop trace must be a pure function of the seed");
    }

    #[test]
    fn different_seeds_differ() {
        let a = OpenLoopGen::new(cfg(7)).trace(100);
        let b = OpenLoopGen::new(cfg(8)).trace(100);
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_monotone_and_near_the_offered_rate() {
        let trace = OpenLoopGen::new(cfg(42)).trace(20_000);
        for w in trace.windows(2) {
            assert!(w[0].arrive_ns <= w[1].arrive_ns);
        }
        let span_s = trace.last().unwrap().arrive_ns as f64 / 1e9;
        let rate = trace.len() as f64 / span_s;
        assert!(
            (rate - 10_000.0).abs() < 500.0,
            "measured arrival rate {rate} too far from offered 10000"
        );
    }

    #[test]
    fn indices_stay_in_range_and_are_skewed() {
        let trace = OpenLoopGen::new(cfg(9)).trace(4_000);
        let mut counts = vec![0usize; 5_000];
        for r in &trace {
            assert!(r.tenant < 3);
            assert_eq!(r.indices.len(), 8);
            for &i in &r.indices {
                assert!((i as usize) < 5_000);
                counts[i as usize] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = counts[..500].iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.5,
            "zipf skew missing: top-10% share {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn all_tenants_receive_traffic() {
        let trace = OpenLoopGen::new(cfg(3)).trace(1_000);
        let mut seen = [false; 3];
        for r in &trace {
            seen[r.tenant as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform tenant draw missed a tenant");
    }
}
