//! Dataset schemas shaped like the paper's three benchmarks (Table II).
//!
//! | Dataset         | samples | dense | sparse | largest table |
//! |-----------------|---------|-------|--------|---------------|
//! | Avazu           | 40.4M   | 1     | 20     | ~2.0M rows    |
//! | Criteo Kaggle   | 45.8M   | 13    | 26     | ~10.1M rows   |
//! | Criteo Terabyte | 4.37B   | 13    | 26     | ~227M rows*   |
//!
//! (*) the Terabyte tables are usually capped during preprocessing; the
//! paper reports a 59.2 GB total embedding footprint at dim 128.
//!
//! The synthetic generators reproduce the schema *shape* (feature counts and
//! the skewed spread of table cardinalities) at a configurable scale so the
//! experiment suite runs on one machine. `scale = 1.0` reproduces the real
//! cardinalities.

/// Schema and scale of one DLRM dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Human-readable name used in benchmark output.
    pub name: String,
    /// Number of continuous features per sample.
    pub num_dense: usize,
    /// Cardinality (row count) of each sparse feature's embedding table.
    pub table_cardinalities: Vec<usize>,
    /// Number of indices each sample contributes per sparse field
    /// (1 = one-hot, >1 = multi-hot).
    pub indices_per_sample: usize,
    /// Total number of training samples the generator will produce.
    pub num_samples: usize,
    /// Zipf exponent of the access distribution (≈1 matches Figure 4a).
    pub zipf_exponent: f64,
}

impl DatasetSpec {
    /// Number of sparse fields (= embedding tables).
    pub fn num_sparse(&self) -> usize {
        self.table_cardinalities.len()
    }

    /// Total embedding rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.table_cardinalities.iter().sum()
    }

    /// Dense footprint of all embedding tables at dimension `dim`, in bytes.
    pub fn embedding_footprint_bytes(&self, dim: usize) -> usize {
        self.total_rows() * dim * std::mem::size_of::<f32>()
    }

    /// Tables with at least `threshold` rows — the set EL-Rec/TT-Rec
    /// compress (the paper compresses tables above 1M rows).
    pub fn large_tables(&self, threshold: usize) -> Vec<usize> {
        self.table_cardinalities
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= threshold)
            .map(|(i, _)| i)
            .collect()
    }

    /// Avazu-shaped spec: 1 dense + 20 categorical features; cardinalities
    /// follow Avazu's published field sizes (few huge ID fields, many tiny
    /// categorical fields).
    pub fn avazu(scale: f64) -> Self {
        let raw: [usize; 20] = [
            // site/app/device id-like fields dominate the footprint
            2_000_000, 1_200_000, 800_000, 300_000, 100_000, 40_000, 9_000, 5_000, 2_600, 2_000,
            500, 300, 100, 70, 30, 10, 8, 6, 5, 4,
        ];
        Self {
            name: format!("avazu(x{scale})"),
            num_dense: 1,
            table_cardinalities: scale_cards(&raw, scale),
            indices_per_sample: 1,
            num_samples: (40_400_000_f64 * scale) as usize,
            zipf_exponent: 1.05,
        }
    }

    /// Criteo-Kaggle-shaped spec: 13 dense + 26 categorical features.
    pub fn criteo_kaggle(scale: f64) -> Self {
        // Published per-field cardinalities of the Kaggle Display
        // Advertising Challenge data.
        let raw: [usize; 26] = [
            1_460, 583, 10_131_227, 2_202_608, 305, 24, 12_517, 633, 3, 93_145, 5_683, 8_351_593,
            3_194, 27, 14_992, 5_461_306, 10, 5_652, 2_173, 4, 7_046_547, 18, 15, 286_181, 105,
            142_572,
        ];
        Self {
            name: format!("criteo-kaggle(x{scale})"),
            num_dense: 13,
            table_cardinalities: scale_cards(&raw, scale),
            indices_per_sample: 1,
            num_samples: (45_840_617_f64 * scale) as usize,
            zipf_exponent: 1.1,
        }
    }

    /// Criteo-Terabyte-shaped spec: same schema as Kaggle with the larger
    /// cardinalities of the full 24-day log (hashed at 227M per the
    /// standard preprocessing; 59.2 GB of fp32 embeddings at dim 128).
    pub fn criteo_terabyte(scale: f64) -> Self {
        // Published per-field cardinalities of the full 24-day log.
        let raw: [usize; 26] = [
            227_605_432,
            39_060,
            17_295,
            7_424,
            20_265,
            3,
            7_122,
            1_543,
            63,
            130_229_467,
            3_067_956,
            405_282,
            10,
            2_209,
            11_938,
            155,
            4,
            976,
            14,
            292_775_614,
            40_790_948,
            187_188_510,
            590_152,
            12_973,
            108,
            36,
        ];
        Self {
            name: format!("criteo-terabyte(x{scale})"),
            num_dense: 13,
            table_cardinalities: scale_cards(&raw, scale),
            indices_per_sample: 1,
            num_samples: (4_373_472_329_f64 * scale) as usize,
            zipf_exponent: 1.15,
        }
    }

    /// A small uniform spec for unit tests and examples.
    pub fn toy(tables: usize, rows_per_table: usize, samples: usize) -> Self {
        Self {
            name: "toy".into(),
            num_dense: 4,
            table_cardinalities: vec![rows_per_table; tables],
            indices_per_sample: 2,
            num_samples: samples,
            zipf_exponent: 1.1,
        }
    }
}

/// Scales cardinalities, keeping every table at least 4 rows so tiny fields
/// stay meaningful at small scales.
fn scale_cards(raw: &[usize], scale: f64) -> Vec<usize> {
    raw.iter().map(|&c| (((c as f64) * scale) as usize).max(4)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avazu_schema_shape() {
        let s = DatasetSpec::avazu(1.0);
        assert_eq!(s.num_dense, 1);
        assert_eq!(s.num_sparse(), 20);
        assert_eq!(s.indices_per_sample, 1);
    }

    #[test]
    fn criteo_schemas_have_26_tables_13_dense() {
        for s in [DatasetSpec::criteo_kaggle(1.0), DatasetSpec::criteo_terabyte(1.0)] {
            assert_eq!(s.num_dense, 13);
            assert_eq!(s.num_sparse(), 26);
        }
    }

    #[test]
    fn terabyte_footprint_matches_paper_order_of_magnitude() {
        // Paper: "about 59.2 GB" at dim 128 for Criteo Terabyte.
        let s = DatasetSpec::criteo_terabyte(1.0);
        let gb = s.embedding_footprint_bytes(128) as f64 / 1e9;
        assert!(gb > 100.0, "full terabyte footprint should exceed 100 GB at dim 128, got {gb}");
        // The paper's 59.2 GB reflects frequency-capped preprocessing; our
        // uncapped schema is deliberately an upper bound.
    }

    #[test]
    fn scaling_shrinks_cardinalities_with_floor() {
        let s = DatasetSpec::criteo_kaggle(0.001);
        assert!(s.table_cardinalities.iter().all(|&c| c >= 4));
        assert!(s.table_cardinalities[0] < 20_000);
    }

    #[test]
    fn large_tables_filters_by_threshold() {
        let s = DatasetSpec::criteo_kaggle(1.0);
        let large = s.large_tables(1_000_000);
        assert!(!large.is_empty());
        for &t in &large {
            assert!(s.table_cardinalities[t] >= 1_000_000);
        }
    }
}
