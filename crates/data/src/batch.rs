//! Mini-batch containers.
//!
//! A DLRM mini-batch carries dense features, one sparse field per embedding
//! table, and labels. Sparse fields use the CSR (indices + offsets) layout
//! of PyTorch's `nn.EmbeddingBag`, which is also what the Eff-TT table
//! consumes.

/// One sparse feature field (one embedding table) in CSR layout.
///
/// Sample `s` owns `indices[offsets[s] .. offsets[s + 1]]`; `offsets` has
/// `batch_size + 1` entries so every sample's span is well defined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseField {
    /// Embedding-row indices, concatenated over samples.
    pub indices: Vec<u32>,
    /// Per-sample start offsets into `indices`, plus a final sentinel.
    pub offsets: Vec<u32>,
}

impl SparseField {
    /// An empty field expecting `batch_size` samples.
    pub fn with_capacity(batch_size: usize, nnz_hint: usize) -> Self {
        let mut offsets = Vec::with_capacity(batch_size + 1);
        offsets.push(0);
        Self { indices: Vec::with_capacity(nnz_hint), offsets }
    }

    /// Builds a field from per-sample index lists.
    pub fn from_samples(samples: &[Vec<u32>]) -> Self {
        let mut field = Self::with_capacity(samples.len(), samples.iter().map(Vec::len).sum());
        for s in samples {
            field.push_sample(s);
        }
        field
    }

    /// Appends one sample's indices.
    pub fn push_sample(&mut self, indices: &[u32]) {
        self.indices.extend_from_slice(indices);
        self.offsets.push(self.indices.len() as u32);
    }

    /// Number of samples.
    pub fn batch_size(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of lookups in the field.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The index span of sample `s`.
    #[inline]
    pub fn sample(&self, s: usize) -> &[u32] {
        &self.indices[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }

    /// Iterates over per-sample spans.
    pub fn iter_samples(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.batch_size()).map(move |s| self.sample(s))
    }

    /// Number of distinct indices in the field (the quantity Figure 4b
    /// contrasts with batch size).
    pub fn unique_count(&self) -> usize {
        let mut sorted: Vec<u32> = self.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Applies an index bijection in place (used by `el-reorder`).
    pub fn remap(&mut self, bijection: &[u32]) {
        for idx in &mut self.indices {
            *idx = bijection[*idx as usize];
        }
    }

    /// Validates CSR invariants; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets must contain at least the sentinel".into());
        }
        if self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        if !self.offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("offsets must be non-decreasing".into());
        }
        if *self.offsets.last().unwrap() as usize != self.indices.len() {
            return Err("final offset must equal indices length".into());
        }
        Ok(())
    }
}

/// One training mini-batch.
#[derive(Clone, Debug)]
pub struct MiniBatch {
    /// Dense features, row-major `batch_size x num_dense`.
    pub dense: Vec<f32>,
    /// Number of dense features per sample.
    pub num_dense: usize,
    /// One sparse field per embedding table.
    pub fields: Vec<SparseField>,
    /// Click labels in `{0.0, 1.0}`.
    pub labels: Vec<f32>,
}

impl MiniBatch {
    /// Number of samples in the batch.
    pub fn batch_size(&self) -> usize {
        self.labels.len()
    }

    /// Dense feature row of sample `s`.
    #[inline]
    pub fn dense_row(&self, s: usize) -> &[f32] {
        &self.dense[s * self.num_dense..(s + 1) * self.num_dense]
    }

    /// Total sparse lookups across all fields.
    pub fn total_lookups(&self) -> usize {
        self.fields.iter().map(SparseField::nnz).sum()
    }

    /// Validates shape invariants across dense, sparse and label parts.
    pub fn validate(&self) -> Result<(), String> {
        let b = self.batch_size();
        if self.num_dense > 0 && self.dense.len() != b * self.num_dense {
            return Err(format!(
                "dense buffer holds {} values, expected {}",
                self.dense.len(),
                b * self.num_dense
            ));
        }
        for (t, f) in self.fields.iter().enumerate() {
            f.validate().map_err(|e| format!("field {t}: {e}"))?;
            if f.batch_size() != b {
                return Err(format!("field {t} has batch size {} != {b}", f.batch_size()));
            }
        }
        if !self.labels.iter().all(|&y| y == 0.0 || y == 1.0) {
            return Err("labels must be binary".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> SparseField {
        SparseField::from_samples(&[vec![1, 2], vec![], vec![2, 2, 5]])
    }

    #[test]
    fn csr_layout_round_trips() {
        let f = field();
        assert_eq!(f.batch_size(), 3);
        assert_eq!(f.nnz(), 5);
        assert_eq!(f.sample(0), &[1, 2]);
        assert_eq!(f.sample(1), &[] as &[u32]);
        assert_eq!(f.sample(2), &[2, 2, 5]);
        f.validate().unwrap();
    }

    #[test]
    fn unique_count_dedups() {
        assert_eq!(field().unique_count(), 3); // {1, 2, 5}
    }

    #[test]
    fn remap_applies_bijection() {
        let mut f = field();
        let mut bij: Vec<u32> = (0..6).collect();
        bij.swap(2, 5);
        f.remap(&bij);
        assert_eq!(f.sample(0), &[1, 5]);
        assert_eq!(f.sample(2), &[5, 5, 2]);
    }

    #[test]
    fn validate_catches_broken_offsets() {
        let f = SparseField { indices: vec![1, 2], offsets: vec![0, 3] };
        assert!(f.validate().is_err());
        let f = SparseField { indices: vec![1, 2], offsets: vec![1, 2] };
        assert!(f.validate().is_err());
        let f = SparseField { indices: vec![], offsets: vec![] };
        assert!(f.validate().is_err());
    }

    #[test]
    fn minibatch_validation() {
        let mb = MiniBatch {
            dense: vec![0.0; 6],
            num_dense: 2,
            fields: vec![field()],
            labels: vec![0.0, 1.0, 1.0],
        };
        mb.validate().unwrap();

        let bad = MiniBatch {
            dense: vec![0.0; 5],
            num_dense: 2,
            fields: vec![],
            labels: vec![0.0, 1.0, 1.0],
        };
        assert!(bad.validate().is_err());

        let bad_label =
            MiniBatch { dense: vec![], num_dense: 0, fields: vec![], labels: vec![0.5] };
        assert!(bad_label.validate().is_err());
    }

    #[test]
    fn iter_samples_covers_all() {
        let f = field();
        let collected: Vec<&[u32]> = f.iter_samples().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], &[2, 2, 5]);
    }
}
