//! Synthetic DLRM workload generator.
//!
//! Reproduces the three training-data properties the EL-Rec paper builds on:
//!
//! * **Global skew** (Figure 4a): per-table index popularity is
//!   Zipf-distributed, and popular indices are *scattered* through the index
//!   space by a coprime multiplicative permutation — as in real logs, where
//!   raw categorical IDs carry no locality.
//! * **Batch redundancy** (Figure 4b): skew plus multi-hot sampling makes
//!   the number of unique indices per batch far smaller than the batch
//!   size.
//! * **Local structure** (§IV-A): each index belongs to a latent
//!   *co-occurrence group* (user-behaviour community); every batch activates
//!   a small, slowly drifting set of groups and draws a fraction of its
//!   indices from them. Group membership is invisible in the raw index
//!   values — exactly the structure EL-Rec's index-reordering stage has to
//!   rediscover from batch co-occurrence.
//!
//! Labels follow a fixed hidden click model (logistic in the dense features
//! plus hashed per-index contributions), so models trained on this data have
//! a real signal to learn and accuracy comparisons (Table IV) are
//! meaningful.
//!
//! Generation is deterministic: batch `b` of a dataset seeded with `s` is
//! identical across runs, machines and callers, which the pipeline
//! equivalence tests rely on.

use crate::batch::{MiniBatch, SparseField};
use crate::schema::DatasetSpec;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

/// Fraction of lookups drawn from the batch's active co-occurrence groups.
const LOCAL_FRACTION: f64 = 0.5;
/// Number of latent groups per table (capped by table size).
const GROUPS_PER_TABLE: usize = 64;
/// Active groups per batch.
const ACTIVE_GROUPS: usize = 4;
/// Batches between drifts of the active-group set.
const DRIFT_PERIOD: u64 = 16;

/// A deterministic synthetic DLRM dataset.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    spec: DatasetSpec,
    seed: u64,
    tables: Vec<TableSampler>,
    dense_weights: Vec<f32>,
}

#[derive(Clone, Debug)]
struct TableSampler {
    cardinality: u64,
    zipf: Zipf<f64>,
    /// Multiplier of the rank -> index scattering permutation.
    mult: u64,
    /// Latent co-occurrence group count.
    groups: u64,
}

impl TableSampler {
    fn new(cardinality: usize, exponent: f64, table_seed: u64) -> Self {
        let card = cardinality.max(1) as u64;
        Self {
            cardinality: card,
            zipf: Zipf::new(card, exponent).expect("valid zipf parameters"),
            mult: coprime_multiplier(card, table_seed),
            groups: (GROUPS_PER_TABLE as u64).min(card),
        }
    }

    /// Popularity rank (0 = most popular) -> scattered index.
    #[inline]
    fn scatter(&self, rank: u64) -> u32 {
        ((rank % self.cardinality).wrapping_mul(self.mult) % self.cardinality) as u32
    }

    /// Draws a globally-popular index (pure Zipf).
    fn sample_global(&self, rng: &mut impl Rng) -> u32 {
        let rank = self.zipf.sample(rng) as u64 - 1;
        self.scatter(rank)
    }

    /// Draws an index from latent group `g`: zipf over within-group rank.
    fn sample_from_group(&self, g: u64, rng: &mut impl Rng) -> u32 {
        let group_size = (self.cardinality / self.groups).max(1);
        // within-group popularity is also skewed
        let within = Zipf::new(group_size, 1.05).expect("valid zipf"); // PANIC-OK: constant parameters
        let j = within.sample(rng) as u64 - 1;
        let rank = j * self.groups + (g % self.groups);
        self.scatter(rank.min(self.cardinality - 1))
    }
}

impl SyntheticDataset {
    /// Builds a dataset for `spec`, deterministically derived from `seed`.
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        let tables = spec
            .table_cardinalities
            .iter()
            .enumerate()
            .map(|(t, &c)| TableSampler::new(c, spec.zipf_exponent, mix(seed, t as u64)))
            .collect();
        let mut wrng = rand::rngs::StdRng::seed_from_u64(mix(seed, 0xDEAD));
        let dense_weights = (0..spec.num_dense).map(|_| wrng.gen_range(-0.5..0.5)).collect();
        Self { spec, seed, tables, dense_weights }
    }

    /// The schema this dataset follows.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Number of whole batches of the given size the spec's sample budget
    /// allows.
    pub fn num_batches(&self, batch_size: usize) -> usize {
        self.spec.num_samples / batch_size
    }

    /// Generates batch `batch_idx` of size `batch_size`.
    ///
    /// Deterministic in `(seed, batch_idx, batch_size)`.
    pub fn batch(&self, batch_idx: u64, batch_size: usize) -> MiniBatch {
        let mut rng = rand::rngs::StdRng::seed_from_u64(mix(self.seed, batch_idx));

        // The active co-occurrence groups drift every DRIFT_PERIOD batches
        // (paper: "users may view more work-related information during the
        // day and more entertainment information at night").
        let epoch = batch_idx / DRIFT_PERIOD;
        let mut group_rng = rand::rngs::StdRng::seed_from_u64(mix(self.seed ^ 0xA5A5, epoch));
        let active: Vec<u64> =
            (0..ACTIVE_GROUPS).map(|_| group_rng.gen_range(0..GROUPS_PER_TABLE as u64)).collect();

        let mut dense = Vec::with_capacity(batch_size * self.spec.num_dense);
        let mut fields: Vec<SparseField> = self
            .tables
            .iter()
            .map(|_| {
                SparseField::with_capacity(batch_size, batch_size * self.spec.indices_per_sample)
            })
            .collect();
        let mut labels = Vec::with_capacity(batch_size);
        let mut sample_indices: Vec<u32> = Vec::with_capacity(self.spec.indices_per_sample);

        for _ in 0..batch_size {
            let mut logit = -0.3f32; // negative bias: clicks are rarer than non-clicks
            for w in &self.dense_weights {
                let x = normal(&mut rng);
                dense.push(x);
                logit += w * x;
            }
            for (t, table) in self.tables.iter().enumerate() {
                sample_indices.clear();
                for _ in 0..self.spec.indices_per_sample {
                    let idx = if rng.gen_bool(LOCAL_FRACTION) {
                        let g = active[rng.gen_range(0..active.len())];
                        table.sample_from_group(g, &mut rng)
                    } else {
                        table.sample_global(&mut rng)
                    };
                    sample_indices.push(idx);
                    logit += index_weight(t as u64, idx);
                }
                fields[t].push_sample(&sample_indices);
            }
            let p = 1.0 / (1.0 + (-logit).exp());
            labels.push(if rng.gen_bool(p.clamp(0.001, 0.999) as f64) { 1.0 } else { 0.0 });
        }

        MiniBatch { dense, num_dense: self.spec.num_dense, fields, labels }
    }

    /// Convenience: generates `count` consecutive batches starting at
    /// `first`.
    pub fn batches(&self, first: u64, count: usize, batch_size: usize) -> Vec<MiniBatch> {
        (0..count as u64).map(|i| self.batch(first + i, batch_size)).collect()
    }
}

/// Hidden per-index click-model weight: a hash mapped to `[-0.35, 0.35]`.
fn index_weight(table: u64, idx: u32) -> f32 {
    let h = mix(table.wrapping_mul(0x2545_F491_4F6C_DD1D), idx as u64);
    ((h >> 11) as f64 / (1u64 << 53) as f64 * 0.7 - 0.35) as f32
}

/// Any odd multiplier > 1 coprime with the cardinality scatters popularity
/// ranks through the index space (shared with [`crate::loadgen`]).
pub(crate) fn coprime_multiplier(card: u64, seed: u64) -> u64 {
    let mut mult = (0x9E37_79B9_7F4A_7C15u64 ^ seed) % card;
    mult = mult.max(1) | 1;
    while gcd(mult, card) != 1 {
        mult = (mult + 2) % card.max(3);
        mult = mult.max(1) | 1;
    }
    mult
}

/// SplitMix64-style mixer for deriving independent streams.
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> SyntheticDataset {
        SyntheticDataset::new(DatasetSpec::toy(3, 1000, 100_000), 42)
    }

    #[test]
    fn batches_are_deterministic() {
        let d1 = toy_dataset();
        let d2 = toy_dataset();
        let b1 = d1.batch(7, 64);
        let b2 = d2.batch(7, 64);
        assert_eq!(b1.dense, b2.dense);
        assert_eq!(b1.labels, b2.labels);
        for (f1, f2) in b1.fields.iter().zip(&b2.fields) {
            assert_eq!(f1, f2);
        }
    }

    #[test]
    fn different_batches_differ() {
        let d = toy_dataset();
        let a = d.batch(0, 64);
        let b = d.batch(1, 64);
        assert_ne!(a.fields[0].indices, b.fields[0].indices);
    }

    #[test]
    fn batch_shapes_are_consistent() {
        let d = toy_dataset();
        let b = d.batch(0, 33);
        b.validate().unwrap();
        assert_eq!(b.batch_size(), 33);
        assert_eq!(b.fields.len(), 3);
        assert_eq!(b.fields[0].nnz(), 33 * 2);
    }

    #[test]
    fn indices_stay_in_range() {
        let d = toy_dataset();
        for bi in 0..10 {
            let b = d.batch(bi, 128);
            for f in &b.fields {
                assert!(f.indices.iter().all(|&i| (i as usize) < 1000));
            }
        }
    }

    #[test]
    fn access_distribution_is_skewed() {
        // Top 10% of indices should take well over 10% of accesses.
        let d = toy_dataset();
        let mut counts = vec![0usize; 1000];
        for bi in 0..50 {
            let b = d.batch(bi, 256);
            for &i in &b.fields[0].indices {
                counts[i as usize] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = sorted[..100].iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.5,
            "top-10% share too low: {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn unique_indices_below_batch_nnz() {
        let d = toy_dataset();
        let b = d.batch(3, 512);
        let f = &b.fields[0];
        assert!(f.unique_count() < f.nnz() / 2, "expected heavy index reuse within a batch");
    }

    #[test]
    fn labels_have_both_classes() {
        let d = toy_dataset();
        let b = d.batch(0, 512);
        let pos: f32 = b.labels.iter().sum();
        assert!(pos > 0.0 && pos < 512.0, "degenerate label distribution: {pos}");
    }

    #[test]
    fn scatter_is_a_bijection() {
        let t = TableSampler::new(997, 1.05, 123); // prime cardinality
        let mut seen = vec![false; 997];
        for r in 0..997 {
            let idx = t.scatter(r) as usize;
            assert!(!seen[idx], "collision at rank {r}");
            seen[idx] = true;
        }
    }

    #[test]
    fn tiny_tables_are_handled() {
        let d = SyntheticDataset::new(DatasetSpec::toy(2, 4, 1000), 9);
        let b = d.batch(0, 100);
        for f in &b.fields {
            assert!(f.indices.iter().all(|&i| i < 4));
        }
    }

    #[test]
    fn num_batches_counts_whole_batches() {
        let d = SyntheticDataset::new(DatasetSpec::toy(1, 10, 1050), 1);
        assert_eq!(d.num_batches(100), 10);
    }
}
