//! Parser for the real Avazu CTR dataset format.
//!
//! Avazu (Kaggle "avazu-ctr-prediction") ships as a CSV with header:
//!
//! ```text
//! id,click,hour,C1,banner_pos,site_id,site_domain,site_category,app_id,
//! app_domain,app_category,device_id,device_ip,device_model,device_type,
//! device_conn_type,C14,C15,C16,C17,C18,C19,C20,C21
//! ```
//!
//! i.e. one label, one usable numeric field (`hour`, which we normalize to
//! hour-of-day) and 21 categorical fields; the paper's Table II counts 20
//! categorical features (dropping `id`; `hour`'s day part is folded into
//! the numeric feature). Categorical values are hex strings or small
//! integers; like the Criteo path we hash them into each table's
//! cardinality.

use crate::batch::{MiniBatch, SparseField};
use std::io::BufRead;

/// Number of categorical fields the loader emits.
pub const AVAZU_SPARSE: usize = 21;

/// One parsed Avazu record.
#[derive(Clone, Debug, PartialEq)]
pub struct AvazuRecord {
    /// Click label.
    pub label: f32,
    /// Hour-of-day in `[0, 1)` (the single dense feature).
    pub hour: f32,
    /// Hashed categorical fields.
    pub sparse: [u32; AVAZU_SPARSE],
}

/// FNV-1a over the raw field text — categorical values mix hex ids and
/// decimal codes, so hashing the bytes is the uniform treatment.
fn fnv1a(s: &str) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for b in s.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Parses one CSV data line (not the header). Returns `None` on malformed
/// rows.
pub fn parse_line(line: &str) -> Option<AvazuRecord> {
    let mut parts = line.split(',');
    let _id = parts.next()?;
    let label: f32 = parts.next()?.trim().parse().ok()?;
    if label != 0.0 && label != 1.0 {
        return None;
    }
    // hour is YYMMDDHH
    let hour_raw = parts.next()?.trim();
    if hour_raw.len() < 2 {
        return None;
    }
    let hh: u32 = hour_raw[hour_raw.len() - 2..].parse().ok()?;
    if hh >= 24 {
        return None;
    }
    let mut sparse = [0u32; AVAZU_SPARSE];
    for s in sparse.iter_mut() {
        *s = fnv1a(parts.next()?.trim());
    }
    Some(AvazuRecord { label, hour: hh as f32 / 24.0, sparse })
}

/// Reads records from a CSV reader (skipping the header when present) and
/// groups them into batches, hashing each field into its cardinality.
pub fn read_batches(
    reader: impl BufRead,
    cardinalities: &[usize; AVAZU_SPARSE],
    batch_size: usize,
) -> std::io::Result<Vec<MiniBatch>> {
    let mut batches = Vec::new();
    let mut current: Vec<AvazuRecord> = Vec::with_capacity(batch_size);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 && line.starts_with("id,") {
            continue; // header
        }
        if let Some(rec) = parse_line(&line) {
            current.push(rec);
            if current.len() == batch_size {
                batches.push(records_to_batch(&current, cardinalities));
                current.clear();
            }
        }
    }
    if !current.is_empty() {
        batches.push(records_to_batch(&current, cardinalities));
    }
    Ok(batches)
}

fn records_to_batch(records: &[AvazuRecord], cardinalities: &[usize; AVAZU_SPARSE]) -> MiniBatch {
    let mut dense = Vec::with_capacity(records.len());
    let mut fields: Vec<SparseField> = (0..AVAZU_SPARSE)
        .map(|_| SparseField::with_capacity(records.len(), records.len()))
        .collect();
    let mut labels = Vec::with_capacity(records.len());
    for rec in records {
        dense.push(rec.hour);
        labels.push(rec.label);
        for (t, field) in fields.iter_mut().enumerate() {
            field.push_sample(&[(rec.sparse[t] as usize % cardinalities[t]) as u32]);
        }
    }
    MiniBatch { dense, num_dense: 1, fields, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_line(click: u32, hh: u32) -> String {
        let cats: Vec<String> = (0..AVAZU_SPARSE).map(|i| format!("c{i:04x}")).collect();
        format!("10000001,{click},141021{hh:02},{}", cats.join(","))
    }

    #[test]
    fn parses_well_formed_line() {
        let rec = parse_line(&sample_line(1, 13)).unwrap();
        assert_eq!(rec.label, 1.0);
        assert!((rec.hour - 13.0 / 24.0).abs() < 1e-6);
        assert_ne!(rec.sparse[0], rec.sparse[1], "distinct fields should hash apart");
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(parse_line("garbage").is_none());
        assert!(parse_line("id,2,14102113,a").is_none()); // label 2
        assert!(parse_line(&sample_line(1, 31)).is_none()); // hour 31
    }

    #[test]
    fn hashing_is_deterministic() {
        let a = parse_line(&sample_line(0, 5)).unwrap();
        let b = parse_line(&sample_line(0, 5)).unwrap();
        assert_eq!(a.sparse, b.sparse);
    }

    #[test]
    fn read_batches_skips_header_and_hashes_into_range() {
        let data = format!(
            "id,click,hour,C1,banner_pos,site_id,site_domain,site_category,app_id,app_domain,app_category,device_id,device_ip,device_model,device_type,device_conn_type,C14,C15,C16,C17,C18,C19,C20,C21\n{}\n{}\n{}\n",
            sample_line(1, 0),
            sample_line(0, 12),
            sample_line(1, 23)
        );
        let cards = [7usize; AVAZU_SPARSE];
        let batches = read_batches(Cursor::new(data), &cards, 2).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].batch_size(), 2);
        assert_eq!(batches[1].batch_size(), 1);
        for b in &batches {
            b.validate().unwrap();
            assert_eq!(b.num_dense, 1);
            assert_eq!(b.fields.len(), AVAZU_SPARSE);
            for f in &b.fields {
                assert!(f.indices.iter().all(|&i| i < 7));
            }
        }
    }
}
