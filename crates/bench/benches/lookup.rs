//! Criterion microbenchmark: Eff-TT lookup (forward) kernels.
//!
//! Complements `fig17_lookup` with statistically rigorous per-kernel
//! timings: TT-Rec-style naive chains vs batch-level reuse, across batch
//! sizes, plus the dense EmbeddingBag reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use el_core::{ForwardStrategy, TtConfig, TtEmbeddingBag, TtOptions, TtWorkspace};
use el_data::{DatasetSpec, SyntheticDataset};
use el_dlrm::embedding_bag::EmbeddingBag;
use rand::SeedableRng;

fn bench_lookup(c: &mut Criterion) {
    let rows = 500_000;
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 2;
    let ds = SyntheticDataset::new(spec, 5);

    let config = TtConfig::new(rows, 32, 32);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let reuse = TtEmbeddingBag::new(&config, &mut rng);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let naive = TtEmbeddingBag::new(&config, &mut rng)
        .with_options(TtOptions { forward: ForwardStrategy::Naive, ..TtOptions::default() });
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let dense = EmbeddingBag::new(rows, 32, 0.05, &mut rng);

    let mut group = c.benchmark_group("lookup");
    for &bs in &[1024usize, 4096] {
        let batch = ds.batch(9, bs);
        let field = &batch.fields[0];
        group.throughput(Throughput::Elements(field.nnz() as u64));

        group.bench_with_input(BenchmarkId::new("tt_naive", bs), &bs, |b, _| {
            let mut ws = TtWorkspace::new();
            b.iter(|| naive.forward(&field.indices, &field.offsets, &mut ws));
        });
        group.bench_with_input(BenchmarkId::new("tt_reuse", bs), &bs, |b, _| {
            let mut ws = TtWorkspace::new();
            b.iter(|| reuse.forward(&field.indices, &field.offsets, &mut ws));
        });
        group.bench_with_input(BenchmarkId::new("dense_reference", bs), &bs, |b, _| {
            b.iter(|| dense.forward(&field.indices, &field.offsets));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).provenance(el_bench::provenance_fields());
    targets = bench_lookup
}
criterion_main!(benches);
