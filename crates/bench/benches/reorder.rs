//! Criterion microbenchmark: the index-reordering pipeline.
//!
//! Reordering runs offline, but its cost still matters for practicality;
//! these benches time plan construction (the pointer-preparation analogue
//! that *does* run per batch), index-graph building and Louvain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use el_core::LookupPlan;
use el_data::{DatasetSpec, SyntheticDataset};
use el_reorder::graph::IndexGraphBuilder;
use el_reorder::{label_propagation, louvain, Reorderer};
use el_tensor::shape::balanced_factorization;

fn bench_plan_build(c: &mut Criterion) {
    let rows = 1_000_000usize;
    let dims = balanced_factorization(rows, 3);
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 2;
    let ds = SyntheticDataset::new(spec, 7);

    let mut group = c.benchmark_group("plan_build");
    for &bs in &[1024usize, 4096] {
        let batch = ds.batch(0, bs);
        let field = &batch.fields[0];
        group.bench_with_input(BenchmarkId::new("dedup", bs), &bs, |b, _| {
            b.iter(|| LookupPlan::build(&field.indices, &field.offsets, &dims, true));
        });
        group.bench_with_input(BenchmarkId::new("no_dedup", bs), &bs, |b, _| {
            b.iter(|| LookupPlan::build(&field.indices, &field.offsets, &dims, false));
        });
    }
    group.finish();
}

fn bench_reorder_pipeline(c: &mut Criterion) {
    let rows = 20_000usize;
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 2;
    let ds = SyntheticDataset::new(spec, 8);
    let batches: Vec<_> = (0..8u64).map(|b| ds.batch(b, 1024)).collect();
    let lists: Vec<&[u32]> = batches.iter().map(|b| &b.fields[0].indices[..]).collect();

    c.bench_function("index_graph_build", |b| {
        b.iter(|| {
            let mut builder = IndexGraphBuilder::new(rows, &vec![false; rows], 1);
            for l in &lists {
                builder.add_batch(l);
            }
            builder.build()
        });
    });

    let mut builder = IndexGraphBuilder::new(rows, &vec![false; rows], 1);
    for l in &lists {
        builder.add_batch(l);
    }
    let graph = builder.build();
    c.bench_function("louvain", |b| b.iter(|| louvain(&graph)));
    c.bench_function("label_propagation", |b| b.iter(|| label_propagation(&graph, 16)));

    c.bench_function("bijection_fit_end_to_end", |b| {
        b.iter(|| Reorderer::default().fit(rows, &lists));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).provenance(el_bench::provenance_fields());
    targets = bench_plan_build, bench_reorder_pipeline
}
criterion_main!(benches);
