//! Criterion microbenchmark: Eff-TT backward kernels.
//!
//! Complements `fig18_backward`: per-lookup (TT-Rec) gradients vs
//! in-advance aggregation, fused vs materialized updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use el_core::{TtConfig, TtEmbeddingBag, TtOptions, TtWorkspace};
use el_data::{DatasetSpec, SyntheticDataset};
use rand::SeedableRng;

fn bench_backward(c: &mut Criterion) {
    let rows = 500_000;
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 2;
    let ds = SyntheticDataset::new(spec, 6);
    let config = TtConfig::new(rows, 32, 32);

    let variants: Vec<(&str, TtOptions)> = vec![
        ("tt_rec_baseline", TtOptions::tt_rec_baseline()),
        ("fused_only", TtOptions { fused_update: true, ..TtOptions::tt_rec_baseline() }),
        ("aggregated_fused", TtOptions::default()),
    ];

    let mut group = c.benchmark_group("backward");
    for &bs in &[1024usize, 4096] {
        let batch = ds.batch(3, bs);
        let field = &batch.fields[0];
        group.throughput(Throughput::Elements(field.nnz() as u64));
        for (name, options) in &variants {
            group.bench_with_input(BenchmarkId::new(name, bs), &bs, |b, _| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(2);
                let mut table =
                    TtEmbeddingBag::new(&config, &mut rng).with_options(options.clone());
                let mut ws = TtWorkspace::new();
                b.iter(|| {
                    let out = table.forward(&field.indices, &field.offsets, &mut ws);
                    table.backward_sgd(&out, &mut ws, 1e-4);
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).provenance(el_bench::provenance_fields());
    targets = bench_backward
}
criterion_main!(benches);
