//! Criterion microbenchmark: the GEMM substrate.
//!
//! The batched-GEMM engine is the cuBLAS stand-in every Eff-TT kernel sits
//! on; these benches pin its scaling (many small products, the TT slice
//! shapes) and the blocked single-GEMM kernel against the naive oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use el_tensor::batched::{batched_gemm, batched_gemm_seq, GemmBatch};
use el_tensor::gemm::{gemm, gemm_nn, gemm_nn_axpy, gemm_ref, Trans};
use el_tensor::micro::{gemm_packed, set_kernel, Kernel, Layout};
use rand::{Rng, SeedableRng};

fn rand_vec(n: usize, rng: &mut impl Rng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_single_gemm(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("gemm_single");
    for &n in &[64usize, 256] {
        let a = rand_vec(n * n, &mut rng);
        let b = rand_vec(n * n, &mut rng);
        let mut cbuf = vec![0.0f32; n * n];
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| gemm_nn(n, n, n, 1.0, &a, &b, 0.0, &mut cbuf));
        });
        if n <= 64 {
            group.bench_with_input(BenchmarkId::new("reference", n), &n, |bch, _| {
                bch.iter(|| gemm_ref(n, n, n, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut cbuf));
            });
        }
    }
    group.finish();
}

/// Packed micro-kernel vs the blocked axpy loop on square shapes around and
/// above the dispatch cutoff — the numbers behind the ≥2x claim.
fn bench_packed_vs_axpy(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("gemm_packed");
    for &n in &[128usize, 192, 256, 384] {
        let a = rand_vec(n * n, &mut rng);
        let b = rand_vec(n * n, &mut rng);
        let mut cbuf = vec![0.0f32; n * n];
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |bch, _| {
            bch.iter(|| {
                gemm_packed(
                    n,
                    n,
                    n,
                    1.0,
                    &a,
                    Layout::row_major(n),
                    &b,
                    Layout::row_major(n),
                    0.0,
                    &mut cbuf,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("axpy", n), &n, |bch, _| {
            bch.iter(|| gemm_nn_axpy(n, n, n, 1.0, &a, &b, 0.0, &mut cbuf));
        });
    }
    group.finish();
}

/// The same packed GEMM under every micro-kernel this CPU supports — the
/// dispatch-tier comparison behind the `EL_KERNEL` override. Each variant
/// is pinned with `set_kernel` for the duration of its measurements, so the
/// rows differ only in the inner kernel (packing and blocking identical).
fn bench_kernel_sweep(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("gemm_kernels");
    for &n in &[128usize, 256, 384] {
        let a = rand_vec(n * n, &mut rng);
        let b = rand_vec(n * n, &mut rng);
        let mut cbuf = vec![0.0f32; n * n];
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        for kernel in Kernel::ALL {
            if !kernel.supported() {
                continue;
            }
            set_kernel(Some(kernel));
            group.bench_with_input(BenchmarkId::new(kernel.name(), n), &n, |bch, _| {
                bch.iter(|| {
                    gemm_packed(
                        n,
                        n,
                        n,
                        1.0,
                        &a,
                        Layout::row_major(n),
                        &b,
                        Layout::row_major(n),
                        0.0,
                        &mut cbuf,
                    )
                });
            });
            set_kernel(None);
        }
    }
    group.finish();
}

/// MLP-layer shapes (DLRM top/bottom nets): batch x out x in with the
/// weight matrix read transposed in place — the Linear::forward path.
fn bench_mlp_shapes(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("gemm_mlp");
    for &(b, o, i) in &[(128usize, 512usize, 256usize), (512, 256, 64), (2048, 64, 16)] {
        let x = rand_vec(b * i, &mut rng);
        let w = rand_vec(o * i, &mut rng);
        let mut y = vec![0.0f32; b * o];
        let label = format!("{b}x{o}x{i}");
        group.throughput(Throughput::Elements((2 * b * o * i) as u64));
        group.bench_with_input(BenchmarkId::new("xwt", &label), &b, |bch, _| {
            bch.iter(|| gemm(b, o, i, 1.0, &x, Trans::No, &w, Trans::Yes, 0.0, &mut y));
        });
    }
    group.finish();
}

fn bench_batched_gemm(c: &mut Criterion) {
    // TT slice shapes: (n1 x R1) x (R1 x n2*R2) with n=4, R=32
    let (m, k, n) = (4usize, 32usize, 4 * 32);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("gemm_batched");
    for &count in &[512usize, 4096] {
        let a_arena = rand_vec(m * k * count, &mut rng);
        let b_arena = rand_vec(k * n * count, &mut rng);
        let mut c_arena = vec![0.0f32; m * n * count];
        let mut batch = GemmBatch::new(m, n, k);
        for i in 0..count {
            batch.push(i * m * k, i * k * n, i * m * n);
        }
        group.throughput(Throughput::Elements(batch.flops() as u64));
        group.bench_with_input(BenchmarkId::new("parallel", count), &count, |bch, _| {
            bch.iter(|| batched_gemm(&batch, &a_arena, &b_arena, &mut c_arena));
        });
        group.bench_with_input(BenchmarkId::new("sequential", count), &count, |bch, _| {
            bch.iter(|| batched_gemm_seq(&batch, &a_arena, &b_arena, &mut c_arena));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).provenance(el_bench::provenance_fields());
    targets = bench_single_gemm, bench_packed_vs_axpy, bench_kernel_sweep, bench_mlp_shapes,
        bench_batched_gemm
}
criterion_main!(benches);
