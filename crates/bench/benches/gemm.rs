//! Criterion microbenchmark: the GEMM substrate.
//!
//! The batched-GEMM engine is the cuBLAS stand-in every Eff-TT kernel sits
//! on; these benches pin its scaling (many small products, the TT slice
//! shapes) and the blocked single-GEMM kernel against the naive oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use el_tensor::batched::{batched_gemm, batched_gemm_seq, GemmBatch};
use el_tensor::gemm::{gemm_nn, gemm_ref, Trans};
use rand::{Rng, SeedableRng};

fn rand_vec(n: usize, rng: &mut impl Rng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_single_gemm(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("gemm_single");
    for &n in &[64usize, 256] {
        let a = rand_vec(n * n, &mut rng);
        let b = rand_vec(n * n, &mut rng);
        let mut cbuf = vec![0.0f32; n * n];
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| gemm_nn(n, n, n, 1.0, &a, &b, 0.0, &mut cbuf));
        });
        if n <= 64 {
            group.bench_with_input(BenchmarkId::new("reference", n), &n, |bch, _| {
                bch.iter(|| gemm_ref(n, n, n, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut cbuf));
            });
        }
    }
    group.finish();
}

fn bench_batched_gemm(c: &mut Criterion) {
    // TT slice shapes: (n1 x R1) x (R1 x n2*R2) with n=4, R=32
    let (m, k, n) = (4usize, 32usize, 4 * 32);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("gemm_batched");
    for &count in &[512usize, 4096] {
        let a_arena = rand_vec(m * k * count, &mut rng);
        let b_arena = rand_vec(k * n * count, &mut rng);
        let mut c_arena = vec![0.0f32; m * n * count];
        let mut batch = GemmBatch::new(m, n, k);
        for i in 0..count {
            batch.push(i * m * k, i * k * n, i * m * n);
        }
        group.throughput(Throughput::Elements(batch.flops() as u64));
        group.bench_with_input(BenchmarkId::new("parallel", count), &count, |bch, _| {
            bch.iter(|| batched_gemm(&batch, &a_arena, &b_arena, &mut c_arena));
        });
        group.bench_with_input(BenchmarkId::new("sequential", count), &count, |bch, _| {
            bch.iter(|| batched_gemm_seq(&batch, &a_arena, &b_arena, &mut c_arena));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_gemm, bench_batched_gemm
}
criterion_main!(benches);
