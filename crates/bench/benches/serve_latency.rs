//! Tail-latency SLO harness for the online serving tier.
//!
//! Replays a deterministic open-loop Poisson/Zipf trace (`el_data::loadgen`)
//! against `el_serve::serve`, sweeping offered load x batch window x
//! precision. Each leg submits requests *on the generated schedule* — never
//! waiting for responses before the next arrival — so queueing delay lands
//! in the recorded latencies instead of being hidden by back-pressure
//! (coordinated omission). Latency is measured from the request's *intended*
//! arrival time to its completion stamp, and recorded in the log-bucketed
//! [`el_serve::LatencyHistogram`].
//!
//! The `max_batch = 1` legs are the request-at-a-time baseline: every
//! admitted request crosses the queues alone and is contracted alone. The
//! coalesced legs batch up to `max_batch` requests per window, so duplicate
//! rows across concurrent requests are contracted once (the paper's
//! Algorithm 1 dedup applied to the request stream). The headline claim the
//! JSON must support: at equal offered load, coalescing wins on p99 and
//! sustains more load before shedding.
//!
//! Results go to `BENCH_serve_latency.json` (override with
//! `CRITERION_BENCH_JSON`), one row per leg with p50/p99/p999, shed rate,
//! dedup and cache counters, and the standard provenance fields.
//!
//! `--test` (as passed by `cargo bench -- --test` or the CI `serve-smoke`
//! job) shrinks the sweep to seconds; the harness exits nonzero if the
//! calibrated low-load legs shed anything, which is the CI gate.

use el_core::{InferencePrecision, TtConfig, TtEmbeddingBag};
use el_data::{OpenLoopConfig, OpenLoopGen};
use el_serve::{serve, LatencyHistogram, ServeConfig, ServeError, ServeRequest, TenantConfig};
use rand::SeedableRng;
use std::time::Duration;

const NUM_TENANTS: usize = 4;
const INDICES_PER_REQUEST: usize = 8;
const NUM_ROWS: usize = 100_000;
const TRACE_SEED: u64 = 20_220_213;

/// One measured (load, window, precision) leg.
struct Row {
    mode: &'static str,
    precision: &'static str,
    offered_rps: f64,
    max_batch: usize,
    max_wait_us: u64,
    requests: usize,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    shed_rate: f64,
    completed: u64,
    batches: u64,
    lookups: u64,
    unique_rows: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn precision_name(p: InferencePrecision) -> &'static str {
    match p {
        InferencePrecision::F32 => "f32",
        InferencePrecision::Bf16 => "bf16",
        InferencePrecision::Int8 => "int8",
    }
}

/// Replays `count` requests at `offered_rps` through a serving tier with
/// the given batch window and tenant precision, returning the measured leg.
fn run_leg(
    table: &TtEmbeddingBag,
    mode: &'static str,
    offered_rps: f64,
    max_batch: usize,
    max_wait_us: u64,
    precision: InferencePrecision,
    count: usize,
) -> Row {
    let mut gen = OpenLoopGen::new(OpenLoopConfig {
        offered_rps,
        num_rows: NUM_ROWS,
        indices_per_request: INDICES_PER_REQUEST,
        zipf_exponent: 1.05,
        num_tenants: NUM_TENANTS,
        seed: TRACE_SEED, // same trace for every mode at a given load
    });
    let mut trace = gen.trace(count);
    let arrivals: Vec<u64> = trace.iter().map(|r| r.arrive_ns).collect();

    // A bounded per-tenant budget is the SLO stance: queue depth bounds
    // worst-case latency, so offered load beyond capacity must shed
    // instead of stretching the tail. 128 in-flight per tenant is ~10x
    // the deepest backlog any sustainable leg reaches.
    let cfg = ServeConfig { workers: 1, tenant_inflight_cap: 128, ..ServeConfig::default() }
        .with_batching(max_batch, max_wait_us);
    let tenants = [TenantConfig { precision }; NUM_TENANTS];

    let (hist, report) = serve(table, &cfg, &tenants, |h| {
        let base = h.now_ns();
        let mut hist = LatencyHistogram::new();
        let mut free: Vec<ServeRequest> = Vec::new();
        let mut next = 0usize;
        let mut admitted = 0u64;
        let mut received = 0u64;

        let record = |resp: el_serve::ServeResponse,
                      hist: &mut LatencyHistogram,
                      free: &mut Vec<ServeRequest>| {
            let intended = base + arrivals[resp.req.id as usize];
            hist.record(resp.done_ns.saturating_sub(intended));
            free.push(resp.req);
        };

        while next < trace.len() {
            while let Some(resp) = h.try_recv_response() {
                record(resp, &mut hist, &mut free);
                received += 1;
            }
            let target = base + arrivals[next];
            let now = h.now_ns();
            if now < target {
                let gap = target - now;
                if gap > 300_000 {
                    // Long gap: sleep most of it, leave slack for wake-up
                    // jitter.
                    std::thread::sleep(Duration::from_nanos(gap - 200_000));
                } else {
                    std::thread::yield_now();
                }
                continue;
            }
            let mut req = free.pop().unwrap_or_default();
            req.tenant = trace[next].tenant;
            req.id = next as u64;
            req.indices = std::mem::take(&mut trace[next].indices);
            match h.submit(req) {
                Ok(()) => admitted += 1,
                Err(ServeError::Overloaded { request }) => free.push(request),
                Err(e) => panic!("unexpected admission failure: {e}"),
            }
            next += 1;
        }
        // Drain the stragglers; on a graceful run every admitted request is
        // answered, the deadline only guards the harness against a hang.
        while received < admitted {
            match h.recv_response(Duration::from_secs(10)) {
                Some(resp) => {
                    record(resp, &mut hist, &mut free);
                    received += 1;
                }
                None => panic!("serving tier hung with {} responses missing", admitted - received),
            }
        }
        hist
    });

    let (p50, p99, p999) = hist.percentiles();
    Row {
        mode,
        precision: precision_name(precision),
        offered_rps,
        max_batch,
        max_wait_us,
        requests: count,
        p50_us: p50 as f64 / 1e3,
        p99_us: p99 as f64 / 1e3,
        p999_us: p999 as f64 / 1e3,
        shed_rate: report.shed_rate(),
        completed: report.completed,
        batches: report.batches,
        lookups: report.lookups,
        unique_rows: report.unique_rows,
        cache_hits: report.cache_hits,
        cache_misses: report.cache_misses,
        cache_evictions: report.cache_evictions,
    }
}

fn render_json(rows: &[Row], provenance: &[(String, String)]) -> String {
    let prov: String = provenance.iter().map(|(k, v)| format!(",\"{k}\":\"{v}\"")).collect();
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"id\":\"serve_latency/{}/{}/rps{:.0}\",\"mode\":\"{}\",\
             \"precision\":\"{}\",\"offered_rps\":{:.0},\"max_batch\":{},\
             \"max_wait_us\":{},\"requests\":{},\"p50_us\":{:.1},\"p99_us\":{:.1},\
             \"p999_us\":{:.1},\"shed_rate\":{:.4},\"completed\":{},\"batches\":{},\
             \"lookups\":{},\"unique_rows\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"cache_evictions\":{}{prov}}}",
            r.mode,
            r.precision,
            r.offered_rps,
            r.mode,
            r.precision,
            r.offered_rps,
            r.max_batch,
            r.max_wait_us,
            r.requests,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.shed_rate,
            r.completed,
            r.batches,
            r.lookups,
            r.unique_rows,
            r.cache_hits,
            r.cache_misses,
            r.cache_evictions,
        ));
    }
    out.push_str("\n]\n");
    out
}

fn main() {
    let quick = quick_mode();
    let loads: &[f64] =
        if quick { &[500.0, 2_000.0] } else { &[500.0, 4_000.0, 16_000.0, 48_000.0, 96_000.0] };
    // (mode, max_batch, max_wait_us): batch=1 is the per-request baseline.
    let windows: &[(&'static str, usize, u64)] = if quick {
        &[("naive", 1, 0), ("coalesced", 32, 200)]
    } else {
        &[("naive", 1, 0), ("coalesced_narrow", 8, 100), ("coalesced", 32, 200)]
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let table = TtEmbeddingBag::new(&TtConfig::new(NUM_ROWS, 32, 8), &mut rng);

    let mut rows = Vec::new();
    for &rps in loads {
        let count = if quick { 300 } else { ((rps * 2.0) as usize).clamp(1_000, 40_000) };
        for &(mode, max_batch, max_wait_us) in windows {
            let row =
                run_leg(&table, mode, rps, max_batch, max_wait_us, InferencePrecision::F32, count);
            eprintln!(
                "serve_latency/{}/{}/rps{:.0}: p50 {:.0} us, p99 {:.0} us, p999 {:.0} us, \
                 shed {:.1}%, {} batches, dedup {}/{} rows",
                row.mode,
                row.precision,
                rps,
                row.p50_us,
                row.p99_us,
                row.p999_us,
                row.shed_rate * 100.0,
                row.batches,
                row.unique_rows,
                row.lookups,
            );
            rows.push(row);
        }
        // Quantized lanes at the standard coalescing window: same trace,
        // smaller resident products.
        for precision in [InferencePrecision::Bf16, InferencePrecision::Int8] {
            let row = run_leg(&table, "coalesced", rps, 32, 200, precision, count);
            eprintln!(
                "serve_latency/{}/{}/rps{:.0}: p50 {:.0} us, p99 {:.0} us, shed {:.1}%",
                row.mode,
                row.precision,
                rps,
                row.p50_us,
                row.p99_us,
                row.shed_rate * 100.0,
            );
            rows.push(row);
        }
    }

    let path = std::env::var("CRITERION_BENCH_JSON")
        .unwrap_or_else(|_| "BENCH_serve_latency.json".to_string());
    std::fs::write(&path, render_json(&rows, &el_bench::provenance_fields()))
        .expect("writing the serve-latency summary failed");
    println!("wrote serve-latency results to {path}");

    // Headline comparison: coalesced vs per-request p99 at each shared load.
    for &rps in loads {
        let p99_of = |mode: &str| {
            rows.iter()
                .find(|r| r.mode == mode && r.precision == "f32" && r.offered_rps == rps)
                .map(|r| r.p99_us)
        };
        if let (Some(naive), Some(coalesced)) = (p99_of("naive"), p99_of("coalesced")) {
            println!(
                "rps {rps:.0}: p99 naive {naive:.0} us vs coalesced {coalesced:.0} us ({:.2}x)",
                naive / coalesced.max(1e-9),
            );
        }
    }

    // CI gate: the lowest offered load is calibrated to be comfortably
    // inside capacity for every window — any shedding there is a
    // correctness regression (admission control rejecting sustainable
    // load), not an overload response.
    let low = loads.iter().copied().fold(f64::INFINITY, f64::min);
    let violations: Vec<&Row> =
        rows.iter().filter(|r| r.offered_rps == low && r.shed_rate > 0.0).collect();
    if !violations.is_empty() {
        for r in &violations {
            eprintln!(
                "SLO violation: {}/{} shed {:.2}% at the low-load point ({} rps)",
                r.mode,
                r.precision,
                r.shed_rate * 100.0,
                low,
            );
        }
        std::process::exit(1);
    }
}
