//! End-to-end training-throughput harness: samples/second of the full DLRM
//! training loop across batch sizes × analysis modes × rayon thread counts.
//!
//! The four modes isolate the tentpole optimizations:
//!
//! * `sequential` — inline sequential pointer preparation (the baseline);
//! * `parallel` — inline `LookupPlan::par_build_into` (Algorithm 1 run on
//!   the rayon pool);
//! * `parallel_overlap` — parallel analysis of batch `i+1` on the plan
//!   prefetcher while batch `i` computes (paper §V overlap);
//! * `parallel_fused` — parallel analysis plus the fused pooled-lookup+GEMM
//!   forward (the last chain level and sum pooling in one pass, per-lookup
//!   rows never materialized).
//!
//! Thread counts are swept by re-executing this binary with
//! `RAYON_NUM_THREADS` set (the pool reads the variable once at startup,
//! so an in-process sweep is impossible). The parent process merges every
//! child's rows into `BENCH_train_throughput.json`, tagging each row with
//! its thread count for provenance. Each row also carries the cumulative
//! TT stage timers (analysis / forward / backward nanoseconds), so the
//! JSON shows *where* a configuration spends its time, not just how fast
//! it is.
//!
//! `--test` (as passed by `cargo bench -- --test` or the CI quick job)
//! shrinks the matrix and step counts so the harness finishes in seconds;
//! it still writes the JSON artifact.

use el_data::{DatasetSpec, MiniBatch, SyntheticDataset};
use el_dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer, OptimizerKind};
use rand::SeedableRng;
use std::time::Instant;

/// One measured configuration.
struct Row {
    mode: &'static str,
    batch_size: usize,
    threads: usize,
    samples_per_sec: f64,
    steps: usize,
    analysis_ns: u64,
    forward_ns: u64,
    backward_ns: u64,
    kernel: &'static str,
    cpu_features: String,
}

const MODES: [&str; 4] = ["sequential", "parallel", "parallel_overlap", "parallel_fused"];

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn build_model(rows: usize, dim: usize) -> DlrmModel {
    let cfg = DlrmConfig {
        num_dense: 4,
        table_cardinalities: vec![rows, rows],
        dim,
        bottom_hidden: vec![16],
        top_hidden: vec![16],
        tt_threshold: 0, // every table TT-compressed
        tt_rank: 8,
        lr: 0.05,
        optimizer: OptimizerKind::Sgd,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    DlrmModel::new(&cfg, &mut rng)
}

/// Trains `steps` batches in `mode`, returning throughput + stage timers.
fn run_one(mode: &'static str, pool: &[MiniBatch], steps: usize, threads: usize) -> Row {
    let batch_size = pool[0].batch_size();
    let mut model = build_model(200_000, 32);
    let overlap = mode == "parallel_overlap";
    for t in &mut model.tables {
        if let EmbeddingLayer::Tt(bag, _) = t {
            bag.options.parallel_analysis = mode != "sequential";
            bag.options.fused_pooling = mode == "parallel_fused";
        }
    }
    if overlap {
        model.enable_plan_overlap();
    }

    // Warm-up: one pass over the pool grows every workspace buffer.
    for batch in pool {
        model.train_step(batch);
    }
    model.reset_stage_timers();

    if overlap {
        model.prefetch_plans(&pool[0]);
    }
    let t0 = Instant::now();
    for s in 0..steps {
        if overlap {
            model.prefetch_plans(&pool[(s + 1) % pool.len()]);
        }
        model.train_step(&pool[s % pool.len()]);
    }
    let elapsed = t0.elapsed();
    let timers = model.stage_timers();

    Row {
        mode,
        batch_size,
        threads,
        samples_per_sec: (steps * batch_size) as f64 / elapsed.as_secs_f64(),
        steps,
        analysis_ns: timers.analysis_ns,
        forward_ns: timers.forward_ns,
        backward_ns: timers.backward_ns,
        kernel: el_tensor::micro::active_kernel(),
        cpu_features: el_tensor::micro::cpu_features(),
    }
}

/// The per-process sweep: every (batch size, mode) at this thread count.
fn child_main(threads: usize, out_path: &str) {
    let quick = quick_mode();
    let batch_sizes: &[usize] = if quick { &[2048] } else { &[512, 2048, 4096] };

    let mut spec = DatasetSpec::toy(2, 200_000, usize::MAX / 2);
    spec.indices_per_sample = 4;
    let ds = SyntheticDataset::new(spec, 17);

    let mut rows = Vec::new();
    for &bs in batch_sizes {
        let pool: Vec<MiniBatch> = (0..8).map(|i| ds.batch(i, bs)).collect();
        let steps = if quick { 4 } else { (32_768 / bs).max(8) };
        // Best-of-N: wall-clock throughput on a shared box is noisy in the
        // slow direction only, so the fastest repetition is the estimate
        // closest to the machine's true capability for each mode.
        let reps = if quick { 1 } else { 3 };
        for mode in MODES {
            let row = (0..reps)
                .map(|_| run_one(mode, &pool, steps, threads))
                .max_by(|a, b| a.samples_per_sec.total_cmp(&b.samples_per_sec))
                .expect("at least one repetition");
            eprintln!(
                "train_throughput/{}/bs{}/t{}: {:.0} samples/s \
                 (analysis {:.1} ms, forward {:.1} ms, backward {:.1} ms over {} steps)",
                row.mode,
                row.batch_size,
                row.threads,
                row.samples_per_sec,
                row.analysis_ns as f64 / 1e6,
                row.forward_ns as f64 / 1e6,
                row.backward_ns as f64 / 1e6,
                row.steps,
            );
            rows.push(row);
        }
    }
    std::fs::write(out_path, render_json(&rows)).expect("writing child results failed");
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"id\":\"train_throughput/{}/bs{}/t{}\",\"mode\":\"{}\",\
             \"batch_size\":{},\"rayon_threads\":{},\"samples_per_sec\":{:.1},\
             \"steps\":{},\"analysis_ns\":{},\"forward_ns\":{},\"backward_ns\":{},\
             \"kernel\":\"{}\",\"cpu_features\":\"{}\"}}",
            r.mode,
            r.batch_size,
            r.threads,
            r.mode,
            r.batch_size,
            r.threads,
            r.samples_per_sec,
            r.steps,
            r.analysis_ns,
            r.forward_ns,
            r.backward_ns,
            r.kernel,
            r.cpu_features,
        ));
    }
    out.push_str("\n]\n");
    out
}

fn main() {
    if let Ok(out_path) = std::env::var("EL_BENCH_CHILD_OUT") {
        let threads: usize = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .expect("child runs need RAYON_NUM_THREADS");
        child_main(threads, &out_path);
        return;
    }

    let quick = quick_mode();
    let thread_counts: &[usize] = if quick { &[1, 4] } else { &[1, 4, 8] };
    let exe = std::env::current_exe().expect("cannot locate the bench binary");

    // One child process per thread count: the rayon pool sizes itself from
    // RAYON_NUM_THREADS exactly once, so the sweep cannot run in-process.
    let mut merged = String::from("[\n");
    let mut first = true;
    for &t in thread_counts {
        let out_path = format!("train_throughput.t{t}.partial.json");
        let mut cmd = std::process::Command::new(&exe);
        cmd.env("RAYON_NUM_THREADS", t.to_string()).env("EL_BENCH_CHILD_OUT", &out_path);
        if quick {
            cmd.arg("--test");
        }
        let status = cmd.status().expect("spawning the bench child failed");
        assert!(status.success(), "bench child for {t} thread(s) failed: {status}");
        let body = std::fs::read_to_string(&out_path).expect("child wrote no results");
        let _ = std::fs::remove_file(&out_path);
        let inner = body.trim().trim_start_matches('[').trim_end_matches(']').trim();
        if !inner.is_empty() {
            if !first {
                merged.push_str(",\n");
            }
            merged.push_str(inner);
            first = false;
        }
    }
    merged.push_str("\n]\n");

    let path = std::env::var("CRITERION_BENCH_JSON")
        .unwrap_or_else(|_| "BENCH_train_throughput.json".to_string());
    std::fs::write(&path, merged).expect("writing the merged summary failed");
    println!("wrote merged train-throughput results to {path}");
}
