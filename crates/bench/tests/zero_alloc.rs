//! Steady-state allocation audit of the Eff-TT training hot path.
//!
//! A counting global allocator wraps the system allocator; after warming a
//! workspace over a pool of batches, further forward/backward iterations
//! over the same pool must perform **zero** heap allocations — the plan,
//! level buffers, batch task list and output matrix are all recycled.
//!
//! The hard assertion only fires in release builds: debug builds run the
//! batched-GEMM `outputs_disjoint` debug check, which allocates a sort
//! buffer by design.

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use el_core::bag::{TtEmbeddingBag, TtWorkspace};
use el_core::config::{BackwardStrategy, ForwardStrategy, TtConfig, TtOptions};
use el_tensor::Matrix;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to the System allocator plus a relaxed
// atomic counter; layout handling and memory validity are exactly the
// System allocator's.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`, which does the real work.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged; the caller upholds
        // GlobalAlloc's contract (non-zero size).
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `Self::alloc`/`Self::realloc`,
        // i.e. by the System allocator, with this same `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` come from this allocator (hence the
        // System allocator); `new_size` validity is the caller's contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// A pool of CSR batches cycled through warm-up and measurement, so the
/// measured iterations see exactly the shapes the warm-up grew buffers for.
fn batch_pool(rows: usize, pool: usize, lookups: usize) -> Vec<(Vec<u32>, Vec<u32>)> {
    (0..pool)
        .map(|p| {
            let indices: Vec<u32> =
                (0..lookups).map(|i| ((i * 31 + p * 17) % rows) as u32).collect();
            let samples = 8;
            let per = lookups / samples;
            let offsets: Vec<u32> = (0..=samples)
                .map(|s| if s == samples { lookups as u32 } else { (s * per) as u32 })
                .collect();
            (indices, offsets)
        })
        .collect()
}

fn run_steady_state(options: TtOptions, label: &str) {
    run_steady_state_sized(options, 256, false, label);
}

fn run_steady_state_sized(options: TtOptions, lookups: usize, overlap: bool, label: &str) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut bag = TtEmbeddingBag::new(&TtConfig::new(4096, 32, 8), &mut rng).with_options(options);
    let mut ws = TtWorkspace::new();
    let mut out = Matrix::zeros(0, 0);
    let pool = batch_pool(bag.num_rows(), 4, lookups);

    // Warm-up pass with inline analysis: grows the consumer-side plan
    // scratch so even a prefetch miss in the measured pass (a dropped
    // queue slot) would not allocate.
    for (indices, offsets) in &pool {
        bag.forward_into(indices, offsets, &mut ws, &mut out);
        bag.backward_sgd(&out, &mut ws, 0.01);
    }

    if overlap {
        ws.enable_plan_prefetch();
    }
    // `prefetch(b0); loop { prefetch(b_{i+1}); step(b_i) }` — the trainer's
    // overlap pattern. The spin keeps the queue strictly ordered so every
    // take is a hit (a dropped prefetch would desynchronize the FIFO).
    let queue = |i: usize, bag: &TtEmbeddingBag, ws: &TtWorkspace| {
        if overlap {
            let (ni, no) = &pool[i % pool.len()];
            while !bag.prefetch_plan(ni, no, ws) {
                std::thread::yield_now();
            }
        }
    };

    // Warm-up: two passes over the pool grow every buffer (including the
    // prefetcher's recycled job buffers) to its steady shape; the second
    // pass exercises the plan ping-pong on rebuilds.
    queue(0, &bag, &ws);
    for _ in 0..2 {
        for (i, (indices, offsets)) in pool.iter().enumerate() {
            queue(i + 1, &bag, &ws);
            bag.forward_into(indices, offsets, &mut ws, &mut out);
            bag.backward_sgd(&out, &mut ws, 0.01);
        }
    }

    // The counter is process-global, so a one-time lazy initialization on a
    // harness thread (e.g. libtest's coordinator parking for the first time)
    // can land inside the window — observed as a rare 2-allocation blip from
    // a thread other than this one. Steady state is idempotent: re-measuring
    // over the same pool is an equally valid observation, and only one-shot
    // foreign noise passes a retry — a real per-iteration allocation in the
    // hot path (on any thread, including rayon workers and the prefetch
    // coordinator) fails every attempt.
    let mut new_allocs = 0;
    for _attempt in 0..3 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for (i, (indices, offsets)) in pool.iter().enumerate() {
            queue(i + 1, &bag, &ws);
            bag.forward_into(indices, offsets, &mut ws, &mut out);
            bag.backward_sgd(&out, &mut ws, 0.01);
        }
        new_allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        if new_allocs == 0 {
            break;
        }
    }

    if cfg!(debug_assertions) {
        // Debug builds allocate inside debug_assert! checks; just make sure
        // the harness itself works.
        eprintln!("{label}: {new_allocs} allocations (debug build, not asserted)");
    } else {
        assert_eq!(
            new_allocs, 0,
            "{label}: steady-state iterations performed {new_allocs} heap allocations"
        );
    }
}

#[test]
fn reuse_aggregated_fused_path_is_allocation_free() {
    run_steady_state(
        TtOptions {
            forward: ForwardStrategy::Reuse,
            backward: BackwardStrategy::Aggregated,
            fused_update: true,
            deterministic: false,
            parallel_analysis: false,
            fused_pooling: false,
        },
        "reuse/aggregated/fused",
    );
}

#[test]
fn parallel_analysis_path_is_allocation_free() {
    // 8192 lookups per batch puts analysis above PAR_BUILD_CUTOFF, so the
    // rayon-parallel builder runs; its sharded histograms and the pool's
    // injector queue must all reach a steady shape.
    run_steady_state_sized(
        TtOptions {
            forward: ForwardStrategy::Reuse,
            backward: BackwardStrategy::Aggregated,
            fused_update: true,
            deterministic: false,
            parallel_analysis: true,
            fused_pooling: false,
        },
        8192,
        false,
        "parallel analysis",
    );
}

#[test]
fn prefetcher_overlapped_loop_is_allocation_free() {
    // The full overlap pattern: batch i+1's plan builds on the prefetcher
    // while batch i trains. Recycled job buffers keep the cycle free of
    // allocation on both sides of the hand-off.
    run_steady_state_sized(
        TtOptions {
            forward: ForwardStrategy::Reuse,
            backward: BackwardStrategy::Aggregated,
            fused_update: true,
            deterministic: false,
            parallel_analysis: true,
            fused_pooling: false,
        },
        8192,
        true,
        "prefetcher overlap",
    );
}

#[test]
fn unfused_materialized_gradients_are_allocation_free() {
    run_steady_state(
        TtOptions {
            forward: ForwardStrategy::Reuse,
            backward: BackwardStrategy::Aggregated,
            fused_update: false,
            deterministic: false,
            parallel_analysis: false,
            fused_pooling: false,
        },
        "reuse/aggregated/unfused",
    );
}

#[test]
fn fused_pooling_path_is_allocation_free() {
    // The fused lookup+GEMM pooling path keeps its per-thread digit-group
    // scratch in thread-local storage, so the steady state stays free of
    // allocation just like the materialize-then-pool path.
    run_steady_state(
        TtOptions {
            forward: ForwardStrategy::Reuse,
            backward: BackwardStrategy::Aggregated,
            fused_update: true,
            deterministic: false,
            parallel_analysis: false,
            fused_pooling: true,
        },
        "reuse/aggregated/fused-pooling",
    );
}

#[test]
fn strategy_mismatch_rebuild_path_is_allocation_free() {
    // Naive forward + aggregated backward forces a plan rebuild on every
    // backward pass; the spare-plan ping-pong must keep it allocation-free.
    run_steady_state(
        TtOptions {
            forward: ForwardStrategy::Naive,
            backward: BackwardStrategy::Aggregated,
            fused_update: true,
            deterministic: false,
            parallel_analysis: false,
            fused_pooling: false,
        },
        "naive-forward/aggregated-backward rebuild",
    );
}
