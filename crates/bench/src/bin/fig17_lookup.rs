//! Figure 17 — Eff-TT table lookup latency vs batch size.
//!
//! Compares forward (lookup) latency of the TT-Rec baseline against the
//! Eff-TT kernels, with individual contributions: intermediate-result
//! reuse alone, and reuse + index reordering. The paper reports 1.83x mean
//! speedup over TT-Rec, growing with batch size.

use el_bench::{bench_batches, bench_scale, fmt_secs, fmt_speedup, print_table, section};
use el_core::{ForwardStrategy, TtConfig, TtEmbeddingBag, TtOptions, TtWorkspace};
use el_data::{DatasetSpec, SyntheticDataset};
use el_reorder::{ReorderConfig, Reorderer};
use rand::SeedableRng;
use std::time::Instant;

fn measure_forward(table: &TtEmbeddingBag, batches: &[(Vec<u32>, Vec<u32>)], reps: u64) -> f64 {
    let mut ws = TtWorkspace::new();
    // warmup
    for (idx, off) in batches.iter().take(1) {
        let _ = table.forward(idx, off, &mut ws);
    }
    let start = Instant::now();
    for _ in 0..reps {
        for (idx, off) in batches {
            let _ = table.forward(idx, off, &mut ws);
        }
    }
    start.elapsed().as_secs_f64() / (reps as usize * batches.len()) as f64
}

fn main() {
    let scale = bench_scale(0.2);
    let reps = bench_batches(3);
    let rows = (5_000_000f64 * scale) as usize;
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 2;
    let ds = SyntheticDataset::new(spec, 55);

    let profile: Vec<_> = (0..6u64).map(|b| ds.batch(b, 2048)).collect();
    let lists: Vec<&[u32]> = profile.iter().map(|b| &b.fields[0].indices[..]).collect();
    let bijection =
        Reorderer::new(ReorderConfig { hot_ratio: 0.05, seed: 2, ..ReorderConfig::default() })
            .fit(rows, &lists);

    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let config = TtConfig::new(rows, 32, 32);
    let naive = TtEmbeddingBag::new(&config, &mut rng)
        .with_options(TtOptions { forward: ForwardStrategy::Naive, ..TtOptions::default() });
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let reuse = TtEmbeddingBag::new(&config, &mut rng); // defaults: reuse on

    section(&format!("Figure 17: Eff-TT lookup latency vs batch size ({rows} rows, rank 32)"));
    let mut out = Vec::new();
    for &bs in &[1024usize, 2048, 4096, 8192] {
        let raw: Vec<(Vec<u32>, Vec<u32>)> = (0..4u64)
            .map(|b| {
                let batch = ds.batch(50 + b, bs);
                (batch.fields[0].indices.clone(), batch.fields[0].offsets.clone())
            })
            .collect();
        let reordered: Vec<(Vec<u32>, Vec<u32>)> = raw
            .iter()
            .map(|(idx, off)| {
                let mut idx = idx.clone();
                bijection.apply(&mut idx);
                (idx, off.clone())
            })
            .collect();

        let t_naive = measure_forward(&naive, &raw, reps);
        let t_reuse = measure_forward(&reuse, &raw, reps);
        let t_full = measure_forward(&reuse, &reordered, reps);
        out.push(vec![
            bs.to_string(),
            fmt_secs(t_naive),
            format!("{} ({})", fmt_secs(t_reuse), fmt_speedup(t_naive / t_reuse)),
            format!("{} ({})", fmt_secs(t_full), fmt_speedup(t_naive / t_full)),
        ]);
    }
    print_table(&["batch", "TT-Rec (naive)", "+ result reuse", "+ index reordering"], &out);
    println!(
        "paper: 1.83x mean speedup over TT-Rec (1.75x from reuse, 1.05x from\n\
         reordering), increasing with batch size."
    );
}
