//! Ablation: the cross-batch hot-prefix cache (inference extension).
//!
//! §III-A's motivation — reuse the intermediate results of *popular*
//! embeddings — extends past a single batch once the cores are frozen.
//! This bench serves zipf-distributed inference traffic through
//! `TtInferenceSession` at several cache capacities and reports hit rate
//! and latency against the uncached training-kernel lookup.

use el_bench::{bench_batches, bench_scale, fmt_bytes, fmt_secs, print_table, section};
use el_core::{TtConfig, TtEmbeddingBag, TtInferenceSession, TtWorkspace};
use el_data::{DatasetSpec, SyntheticDataset};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = bench_scale(0.2);
    let reps = bench_batches(3);
    let rows = (5_000_000f64 * scale) as usize;
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 2;
    let ds = SyntheticDataset::new(spec, 17);

    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let table = TtEmbeddingBag::new(&TtConfig::new(rows, 32, 32), &mut rng);
    let batches: Vec<(Vec<u32>, Vec<u32>)> = (0..12u64)
        .map(|b| {
            let batch = ds.batch(b, 2048);
            (batch.fields[0].indices.clone(), batch.fields[0].offsets.clone())
        })
        .collect();

    // baseline: the training forward kernel (per-batch reuse only)
    let mut ws = TtWorkspace::new();
    let _ = table.forward(&batches[0].0, &batches[0].1, &mut ws);
    let t0 = Instant::now();
    for _ in 0..reps {
        for (idx, off) in &batches {
            let _ = table.forward(idx, off, &mut ws);
        }
    }
    let base = t0.elapsed().as_secs_f64() / (reps as usize * batches.len()) as f64;

    section(&format!("Ablation: persistent hot-prefix cache, inference on a {rows}-row table"));
    let mut rows_out =
        vec![vec!["none (training kernel)".to_string(), fmt_secs(base), "-".into(), "-".into()]];
    for capacity in [256usize, 2048, 16384, 131072] {
        let mut session = TtInferenceSession::new(&table, capacity);
        // warm pass
        for (idx, off) in &batches {
            let _ = session.lookup(idx, off);
        }
        let t0 = Instant::now();
        for _ in 0..reps {
            for (idx, off) in &batches {
                let _ = session.lookup(idx, off);
            }
        }
        let per = t0.elapsed().as_secs_f64() / (reps as usize * batches.len()) as f64;
        rows_out.push(vec![
            format!("{capacity} prefixes"),
            fmt_secs(per),
            format!("{:.1}%", session.hit_rate() * 100.0),
            fmt_bytes(session.footprint_bytes()),
        ]);
    }
    print_table(&["cache", "latency / 2048-batch", "hit rate", "cache bytes"], &rows_out);
    println!(
        "hit rate follows the access CDF (Figure 4a): a cache holding the hot\n\
         prefixes serves most lookups without touching the first d-1 cores."
    );
}
