//! Table II — dataset statistics.
//!
//! Prints the schema shapes of the three benchmark datasets (at full scale,
//! as the paper reports them) together with the scaled shapes the rest of
//! the suite trains on.

use el_bench::{bench_scale, fmt_bytes, print_table, section};
use el_data::DatasetSpec;

fn row(spec: &DatasetSpec, dim: usize) -> Vec<String> {
    vec![
        spec.name.clone(),
        format!("{:.1}M", spec.num_samples as f64 / 1e6),
        spec.num_dense.to_string(),
        spec.num_sparse().to_string(),
        format!("{:.1}M", spec.total_rows() as f64 / 1e6),
        fmt_bytes(spec.embedding_footprint_bytes(dim)),
    ]
}

fn main() {
    section("Table II: dataset statistics (paper scale)");
    let dim = 128;
    let full = [
        DatasetSpec::avazu(1.0),
        DatasetSpec::criteo_kaggle(1.0),
        DatasetSpec::criteo_terabyte(1.0),
    ];
    print_table(
        &["dataset", "samples", "dense", "sparse", "emb rows", "emb bytes (dim 128)"],
        &full.iter().map(|s| row(s, dim)).collect::<Vec<_>>(),
    );
    println!(
        "paper: Criteo Terabyte embedding footprint ~59.2 GB at dim 128 after\n\
         frequency capping; the uncapped schema above is an upper bound."
    );

    let scale = bench_scale(0.01);
    section(&format!("Scaled shapes used by this suite (EL_BENCH_SCALE={scale})"));
    let scaled = [
        DatasetSpec::avazu(scale),
        DatasetSpec::criteo_kaggle(scale),
        DatasetSpec::criteo_terabyte(scale),
    ];
    print_table(
        &["dataset", "samples", "dense", "sparse", "emb rows", "emb bytes (dim 128)"],
        &scaled.iter().map(|s| row(s, dim)).collect::<Vec<_>>(),
    );
}
