//! Table I — framework comparison, regenerated with measurements.
//!
//! The paper's Table I is qualitative (host memory? compression? CPU-GPU
//! latency? compression overhead?). This binary reproduces it and backs
//! each qualitative cell with a measured quantity from a small run:
//! bus bytes per batch (comm latency proxy) and TT compute overhead versus
//! the dense lookup (compression overhead proxy).

use el_bench::{bench_scale, fmt_bytes, print_table, section};
use el_data::{DatasetSpec, SyntheticDataset};
use el_frameworks::{run_framework, FrameworkKind, RunParams};

fn main() {
    let scale = bench_scale(0.003);
    let ds = SyntheticDataset::new(DatasetSpec::criteo_kaggle(scale), 31);
    let params = RunParams {
        batch_size: 1024,
        num_batches: 6,
        dim: 32,
        large_threshold: 2_000,
        tt_rank: 16,
        profile_batches: 4,
        ..RunParams::default()
    };

    section("Table I: framework comparison (measured on criteo-kaggle shape)");
    let mut rows = Vec::new();
    let mut dense_wall = 0.0f64;
    for kind in FrameworkKind::all() {
        let run = run_framework(kind, &ds, &params);
        let r = &run.report;
        let per_batch = r.meter.total_bytes() as f64 / params.num_batches as f64;
        let wall = r.device_wall.as_secs_f64() + r.cpu_wall.as_secs_f64();
        if kind == FrameworkKind::DlrmPs {
            dense_wall = wall;
        }
        let (host_mem, compression) = match kind {
            FrameworkKind::DlrmPs => ("yes", "no"),
            FrameworkKind::Fae => ("yes", "no"),
            FrameworkKind::TtRec => ("no", "yes"),
            FrameworkKind::ElRec => ("optional", "yes"),
        };
        let overhead = if compression == "yes" {
            format!("{:.2}x compute vs dense", wall / dense_wall)
        } else {
            "n/a".to_string()
        };
        rows.push(vec![
            r.name.clone(),
            host_mem.to_string(),
            compression.to_string(),
            format!("{} /batch", fmt_bytes(per_batch as usize)),
            overhead,
            fmt_bytes(r.device_embedding_bytes),
        ]);
    }
    print_table(
        &[
            "framework",
            "host memory",
            "compression",
            "CPU-GPU traffic",
            "compression overhead",
            "device emb bytes",
        ],
        &rows,
    );
    println!(
        "paper: DLRM high comm latency; FAE moderate; TT-Rec high compression\n\
         overhead; EL-Rec low on both axes."
    );
}
