//! Figure 11 — end-to-end training speedup with a single GPU.
//!
//! Runs all four frameworks (DLRM, FAE, TT-Rec, EL-Rec) on the three
//! dataset shapes; compute and host-side costs are measured once, then the
//! device model converts them into simulated end-to-end times on a V100
//! and a T4 (the paper's two testbeds). Speedups are normalized to the
//! DLRM baseline, matching the figure.

use el_bench::{bench_batches, bench_scale, fmt_secs, fmt_speedup, print_table, section};
use el_data::{DatasetSpec, SyntheticDataset};
use el_frameworks::{run_framework, FrameworkKind, FrameworkReport, RunParams};
use el_pipeline::device::DeviceSpec;

fn main() {
    let scale = bench_scale(0.01);
    let num_batches = bench_batches(6);
    let datasets = [
        SyntheticDataset::new(DatasetSpec::avazu(scale), 11),
        SyntheticDataset::new(DatasetSpec::criteo_kaggle(scale), 12),
        SyntheticDataset::new(DatasetSpec::criteo_terabyte(scale * 0.1), 13),
    ];

    // Measure every framework once per dataset; the device model is applied
    // afterwards.
    let mut reports: Vec<(String, Vec<FrameworkReport>)> = Vec::new();
    for ds in &datasets {
        let params = RunParams {
            batch_size: 2048,
            num_batches,
            dim: 32,
            large_threshold: 4_000,
            tt_rank: 32,
            profile_batches: 6,
            ..RunParams::default()
        };
        let runs = FrameworkKind::all()
            .iter()
            .map(|&kind| run_framework(kind, ds, &params).report)
            .collect();
        reports.push((ds.spec().name.clone(), runs));
    }

    for device in [DeviceSpec::v100(), DeviceSpec::t4()] {
        section(&format!(
            "Figure 11: end-to-end speedup over DLRM, single {} (simulated comm)",
            device.name
        ));
        let mut rows = Vec::new();
        for (name, runs) in &reports {
            let mut cells = vec![name.clone()];
            let baseline = runs[0].simulated_total(&device).as_secs_f64();
            cells.push(format!("{} (1.00x)", fmt_secs(baseline)));
            for r in &runs[1..] {
                let t = r.simulated_total(&device).as_secs_f64();
                cells.push(format!("{} ({})", fmt_secs(t), fmt_speedup(baseline / t)));
            }
            rows.push(cells);
        }
        print_table(&["dataset", "DLRM", "FAE", "TT-Rec", "EL-Rec"], &rows);
    }
    println!(
        "paper (V100): EL-Rec ~3x over DLRM, ~1.5x over FAE, ~1.4x over TT-Rec\n\
         on average; the ordering DLRM < FAE/TT-Rec < EL-Rec is the target shape.\n\
         note: FAE's position is sensitive to the CPU/GPU kernel-speed knob —\n\
         scaled-down tables make dense lookups artificially cache-friendly,\n\
         which flatters the dense-table frameworks (see EXPERIMENTS.md)."
    );
}
