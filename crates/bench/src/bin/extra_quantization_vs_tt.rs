//! Extra experiment: quantization vs tensor-train compression.
//!
//! The paper's §I positions TT against low-bit quantization: quantization
//! is "feasible for inference, but training with a quantized embedding
//! table often yields significant accuracy losses", while TT compresses
//! further at negligible accuracy cost (plus compute). This bench makes
//! the comparison concrete on one table-only training task:
//! embedding regression toward fixed targets under each representation.

use el_bench::{bench_batches, bench_scale, fmt_bytes, print_table, section};
use el_core::{TtConfig, TtEmbeddingBag, TtWorkspace};
use el_data::{DatasetSpec, SyntheticDataset};
use el_dlrm::embedding_bag::EmbeddingBag;
use el_dlrm::quantized::{Bf16EmbeddingBag, QuantizedEmbeddingBag};
use el_tensor::Matrix;
use rand::SeedableRng;

/// Deterministic per-row regression target.
fn target_for(indices: &[u32], offsets: &[u32], dim: usize) -> Matrix {
    let mut t = Matrix::zeros(offsets.len() - 1, dim);
    for s in 0..offsets.len() - 1 {
        for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
            for (c, v) in t.row_mut(s).iter_mut().enumerate() {
                let h = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(c as u64 * 31);
                *v += ((h % 1000) as f32 / 1000.0 - 0.5) * 0.2;
            }
        }
    }
    t
}

fn main() {
    let scale = bench_scale(0.02);
    let train_batches = bench_batches(60);
    let rows = (1_000_000f64 * scale) as usize;
    let dim = 32;
    let batch_size = 1024;
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 1;
    let ds = SyntheticDataset::new(spec, 19);

    section(&format!(
        "Extra: quantization vs TT — {rows}-row table, dim {dim}, embedding \
         regression ({train_batches} batches)"
    ));

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut dense = EmbeddingBag::new(rows, dim, 0.05, &mut rng);
    let mut int8 = QuantizedEmbeddingBag::from_dense(&dense.weight);
    let mut bf16 = Bf16EmbeddingBag::new(rows, dim, 0.05, &mut rng);
    let mut tt = TtEmbeddingBag::new(&TtConfig::new(rows, dim, 16), &mut rng);
    let mut ws = TtWorkspace::new();

    // One shared schedule: residuals normalized by batch size so a row
    // occurring k times takes a k/batch-sized step — stable under skew.
    let lr = 1.0f32;
    let mut final_losses = [0.0f64; 4];
    for k in 0..train_batches {
        let batch = ds.batch(k, batch_size);
        let field = &batch.fields[0];
        let target = target_for(&field.indices, &field.offsets, dim);
        let residual = |out: &Matrix| {
            let mut d = out.clone();
            d.axpy(-1.0, &target);
            let mse = (d.frobenius_norm() as f64).powi(2) / batch_size as f64;
            d.scale(1.0 / batch_size as f32);
            (d, mse)
        };

        let out = dense.forward(&field.indices, &field.offsets);
        let (d, mse) = residual(&out);
        final_losses[0] = mse;
        dense.backward_sgd(&field.indices, &field.offsets, &d, lr);

        let out = int8.forward(&field.indices, &field.offsets);
        let (d, mse) = residual(&out);
        final_losses[1] = mse;
        int8.backward_sgd(&field.indices, &field.offsets, &d, lr);

        let out = bf16.forward(&field.indices, &field.offsets);
        let (d, mse) = residual(&out);
        final_losses[2] = mse;
        bf16.backward_sgd(&field.indices, &field.offsets, &d, lr);

        let out = tt.forward(&field.indices, &field.offsets, &mut ws);
        let (d, mse) = residual(&out);
        final_losses[3] = mse;
        tt.backward_sgd(&d, &mut ws, lr);
    }

    let dense_bytes = rows * dim * 4;
    let rows_out = vec![
        vec![
            "dense f32".to_string(),
            fmt_bytes(dense_bytes),
            "1.0x".into(),
            format!("{:.5}", final_losses[0]),
        ],
        vec![
            "int8 (per-row affine)".to_string(),
            fmt_bytes(int8.footprint_bytes()),
            format!("{:.1}x", dense_bytes as f64 / int8.footprint_bytes() as f64),
            format!("{:.5}", final_losses[1]),
        ],
        vec![
            "bf16".to_string(),
            fmt_bytes(bf16.footprint_bytes()),
            format!("{:.1}x", dense_bytes as f64 / bf16.footprint_bytes() as f64),
            format!("{:.5}", final_losses[2]),
        ],
        vec![
            "Eff-TT rank 16".to_string(),
            fmt_bytes(tt.footprint_bytes()),
            format!("{:.1}x", dense_bytes as f64 / tt.footprint_bytes() as f64),
            format!("{:.5}", final_losses[3]),
        ],
    ];
    print_table(&["representation", "bytes", "compression", "final train MSE"], &rows_out);
    println!(
        "paper §I: quantized *training* erodes accuracy (sub-step updates are\n\
         swallowed); TT compresses far harder and still trains cleanly —\n\
         compare the compression column against the loss column."
    );
}
