//! Figure 4 — characteristics of DLRM training data.
//!
//! (a) cumulative access share of the top-x% indices (power-law skew);
//! (b) average unique indices per batch vs batch size.

use el_bench::{bench_scale, print_table, section};
use el_data::stats::{unique_per_batch, AccessHistogram};
use el_data::{DatasetSpec, SyntheticDataset};

fn main() {
    let scale = bench_scale(0.005);
    let datasets = [
        SyntheticDataset::new(DatasetSpec::avazu(scale), 1),
        SyntheticDataset::new(DatasetSpec::criteo_kaggle(scale), 2),
        SyntheticDataset::new(DatasetSpec::criteo_terabyte(scale * 0.1), 3),
    ];

    section("Figure 4(a): cumulative access share (largest table of each dataset)");
    let fractions = [0.01, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0];
    let mut rows = Vec::new();
    for ds in &datasets {
        let spec = ds.spec();
        let (table, &card) =
            spec.table_cardinalities.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        let mut hist = AccessHistogram::new(card);
        for b in 0..40 {
            hist.record(&ds.batch(b, 1024), table);
        }
        let mut row = vec![spec.name.clone()];
        for &f in &fractions {
            row.push(format!("{:.1}%", hist.cumulative_share(f) * 100.0));
        }
        rows.push(row);
    }
    let mut headers = vec!["dataset".to_string()];
    headers.extend(fractions.iter().map(|f| format!("top {:.0}%", f * 100.0)));
    print_table(&headers, &rows);
    println!("paper: a small proportion of embeddings accounts for the majority of access.");

    section("Figure 4(b): batch size vs average unique indices (largest table)");
    let batch_sizes = [512usize, 1024, 2048, 4096, 8192];
    let mut rows = Vec::new();
    for ds in &datasets {
        let spec = ds.spec();
        let (table, _) =
            spec.table_cardinalities.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        let mut row = vec![spec.name.clone()];
        for &bs in &batch_sizes {
            let batches: Vec<_> = (0..6).map(|i| ds.batch(i, bs)).collect();
            let uniq = unique_per_batch(&batches, table);
            let nnz = batches[0].fields[table].nnz();
            row.push(format!("{uniq:.0} / {nnz}"));
        }
        rows.push(row);
    }
    let mut headers = vec!["dataset".to_string()];
    headers.extend(batch_sizes.iter().map(|b| format!("batch {b}")));
    print_table(&headers, &rows);
    println!(
        "paper: unique indices per batch sit far below the lookup count,\n\
         motivating in-advance gradient aggregation."
    );
}
