//! Ablation: pre-fetch queue depth.
//!
//! The paper fixes the pipeline at "a few batches" of pre-fetch; this
//! sweep shows the trade-off the queue length controls: deeper queues hide
//! more host latency (modeled overlap) but hold more stale rows, growing
//! the embedding cache and its synchronization work.

use el_bench::{bench_batches, bench_scale, fmt_bytes, fmt_secs, print_table, section};
use el_data::{DatasetSpec, SyntheticDataset};
use el_dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer};
use el_pipeline::device::DeviceSpec;
use el_pipeline::server::HostServer;
use el_pipeline::trainer::{PipelineConfig, PipelineTrainer};
use rand::SeedableRng;

fn setup(ds: &SyntheticDataset) -> (DlrmModel, HostServer) {
    let mut cfg = DlrmConfig::for_spec(ds.spec(), 16, usize::MAX, 16);
    cfg.bottom_hidden = vec![32];
    cfg.top_hidden = vec![32];
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut model = DlrmModel::new(&cfg, &mut rng);
    let mut host = Vec::new();
    for (t, &card) in ds.spec().table_cardinalities.iter().enumerate() {
        if card >= 2_000 {
            if let EmbeddingLayer::Dense(bag) =
                std::mem::replace(&mut model.tables[t], EmbeddingLayer::Hosted { dim: 16 })
            {
                host.push((t, bag));
            }
        }
    }
    (model, HostServer::new(host, cfg.lr))
}

fn main() {
    let scale = bench_scale(0.003);
    let num_batches = bench_batches(16);
    let device = DeviceSpec::v100();
    let ds = SyntheticDataset::new(DatasetSpec::criteo_kaggle(scale), 91);

    section("Ablation: pre-fetch queue depth (EL-Rec pipeline placement)");
    let mut rows = Vec::new();
    for depth in [1usize, 2, 4, 8, 16] {
        let (model, server) = setup(&ds);
        let config = PipelineConfig {
            batch_size: 1024,
            first_batch: 0,
            num_batches,
            prefetch_depth: depth,
            pipelined: depth > 1,
            overlap_analysis: depth > 1,
        };
        let report = PipelineTrainer::train(model, server, &ds, &config);
        let host = report.server_cpu.as_secs_f64() / device.host_scale
            + report.server_meter.simulated_time(&device).as_secs_f64();
        let dev = report.worker_compute.as_secs_f64() / device.compute_scale;
        let modeled =
            if depth > 1 { host.max(dev) + host.min(dev) / num_batches as f64 } else { host + dev };
        rows.push(vec![
            depth.to_string(),
            fmt_secs(modeled),
            report.stale_hits.to_string(),
            fmt_bytes(report.cache_peak_bytes),
        ]);
    }
    print_table(&["queue depth", "modeled time", "stale rows synced", "cache peak"], &rows);
    println!(
        "depth 1 = the sequential baseline; returns flatten once the shorter\n\
         stage is fully hidden, while cache pressure keeps growing."
    );
}
