//! Figure 18 — Eff-TT table backward latency vs batch size.
//!
//! Compares backward (gradient + update) latency of the TT-Rec baseline
//! against the Eff-TT optimizations: fused core update, in-advance
//! gradient aggregation, and index reordering. The paper reports 1.70x
//! mean speedup (1.15x fused update, 1.40x aggregation, 1.06x reordering).

use el_bench::{bench_batches, bench_scale, fmt_secs, fmt_speedup, print_table, section};
use el_core::{TtConfig, TtEmbeddingBag, TtOptions, TtWorkspace};
use el_data::{DatasetSpec, SyntheticDataset};
use el_reorder::{ReorderConfig, Reorderer};
use rand::SeedableRng;
use std::time::Instant;

fn measure_backward(
    table: &mut TtEmbeddingBag,
    batches: &[(Vec<u32>, Vec<u32>)],
    reps: u64,
) -> f64 {
    let mut ws = TtWorkspace::new();
    let mut total = 0.0f64;
    for _ in 0..reps {
        for (idx, off) in batches {
            let out = table.forward(idx, off, &mut ws);
            let start = Instant::now();
            table.backward_sgd(&out, &mut ws, 0.001);
            total += start.elapsed().as_secs_f64();
        }
    }
    total / (reps as usize * batches.len()) as f64
}

fn main() {
    let scale = bench_scale(0.2);
    let reps = bench_batches(3);
    let rows = (5_000_000f64 * scale) as usize;
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 2;
    let ds = SyntheticDataset::new(spec, 77);

    let profile: Vec<_> = (0..6u64).map(|b| ds.batch(b, 2048)).collect();
    let lists: Vec<&[u32]> = profile.iter().map(|b| &b.fields[0].indices[..]).collect();
    let bijection =
        Reorderer::new(ReorderConfig { hot_ratio: 0.05, seed: 2, ..ReorderConfig::default() })
            .fit(rows, &lists);

    let config = TtConfig::new(rows, 32, 32);
    let make = |options: TtOptions| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        TtEmbeddingBag::new(&config, &mut rng).with_options(options)
    };
    let mut ttrec = make(TtOptions::tt_rec_baseline());
    let mut fused = make(TtOptions { fused_update: true, ..TtOptions::tt_rec_baseline() });
    let mut aggregated = make(TtOptions::default()); // aggregation + fused

    section(&format!("Figure 18: Eff-TT backward latency vs batch size ({rows} rows, rank 32)"));
    let mut out = Vec::new();
    for &bs in &[1024usize, 2048, 4096, 8192] {
        let raw: Vec<(Vec<u32>, Vec<u32>)> = (0..4u64)
            .map(|b| {
                let batch = ds.batch(50 + b, bs);
                (batch.fields[0].indices.clone(), batch.fields[0].offsets.clone())
            })
            .collect();
        let reordered: Vec<(Vec<u32>, Vec<u32>)> = raw
            .iter()
            .map(|(idx, off)| {
                let mut idx = idx.clone();
                bijection.apply(&mut idx);
                (idx, off.clone())
            })
            .collect();

        let t_base = measure_backward(&mut ttrec, &raw, reps);
        let t_fused = measure_backward(&mut fused, &raw, reps);
        let t_agg = measure_backward(&mut aggregated, &raw, reps);
        let t_full = measure_backward(&mut aggregated, &reordered, reps);
        out.push(vec![
            bs.to_string(),
            fmt_secs(t_base),
            format!("{} ({})", fmt_secs(t_fused), fmt_speedup(t_base / t_fused)),
            format!("{} ({})", fmt_secs(t_agg), fmt_speedup(t_base / t_agg)),
            format!("{} ({})", fmt_secs(t_full), fmt_speedup(t_base / t_full)),
        ]);
    }
    print_table(
        &["batch", "TT-Rec (naive)", "+ fused update", "+ aggregation", "+ reordering"],
        &out,
    );
    println!(
        "paper: 1.70x mean speedup over TT-Rec (1.47x-2.10x across batch sizes);\n\
         1.15x from fused update, 1.40x from aggregation, 1.06x from reordering."
    );
}
