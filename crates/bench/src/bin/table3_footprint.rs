//! Table III — embedding-table memory footprint: dense vs Eff-TT.
//!
//! For each dataset the paper compresses every table above 1M rows with TT
//! rank 128 (V100) / 64 (T4). This binary reproduces the footprint
//! comparison at full schema scale (footprints are arithmetic — no memory
//! is allocated).

use el_bench::{fmt_bytes, print_table, section};
use el_core::TtConfig;
use el_data::DatasetSpec;

fn footprints(spec: &DatasetSpec, dim: usize, rank: usize, threshold: usize) -> (usize, usize) {
    let dense: usize = spec.embedding_footprint_bytes(dim);
    let mut compressed = 0usize;
    for &card in &spec.table_cardinalities {
        if card >= threshold {
            compressed += TtConfig::new(card, dim, rank).param_count() * 4;
        } else {
            compressed += card * dim * 4;
        }
    }
    (dense, compressed)
}

fn main() {
    section("Table III: embedding footprint, dense vs TT (threshold 1M rows)");
    let dim = 128;
    let specs = [
        DatasetSpec::avazu(1.0),
        DatasetSpec::criteo_kaggle(1.0),
        DatasetSpec::criteo_terabyte(1.0),
    ];
    let mut rows = Vec::new();
    for spec in &specs {
        for rank in [64usize, 128] {
            let (dense, tt) = footprints(spec, dim, rank, 1_000_000);
            rows.push(vec![
                spec.name.clone(),
                rank.to_string(),
                fmt_bytes(dense),
                fmt_bytes(tt),
                format!("{:.0}x", dense as f64 / tt as f64),
            ]);
        }
    }
    print_table(&["dataset", "TT rank", "dense", "EL-Rec (Eff-TT)", "reduction"], &rows);
    println!(
        "paper: TT compression shrinks Criteo Terabyte's ~59 GB of embeddings\n\
         to fit a single 16 GB GPU; the reduction factors above show the same\n\
         orders of magnitude."
    );
}
