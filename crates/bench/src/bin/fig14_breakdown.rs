//! Figure 14 — Eff-TT optimization breakdown.
//!
//! Trains a single embedding table (2.5M / 5M / 10M rows in the paper;
//! scaled here) and reports training throughput with all optimizations on,
//! then with one disabled at a time:
//!
//! * in-advance gradient aggregation (paper: −52% when off),
//! * index reordering (−13%),
//! * intermediate result reuse (−10%).

use el_bench::{bench_batches, bench_scale, print_table, section};
use el_core::{
    BackwardStrategy, ForwardStrategy, TtConfig, TtEmbeddingBag, TtOptions, TtWorkspace,
};
use el_data::{DatasetSpec, SyntheticDataset};
use el_reorder::{ReorderConfig, Reorderer};
use rand::SeedableRng;
use std::time::Instant;

struct Variant {
    name: &'static str,
    options: TtOptions,
    reorder: bool,
}

fn throughput(rows: usize, variant: &Variant, batch_size: usize, num_batches: u64) -> f64 {
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 2;
    let ds = SyntheticDataset::new(spec, 101);

    // offline reordering from profiling batches
    let bijection = if variant.reorder {
        let profile: Vec<_> = (0..6u64).map(|b| ds.batch(b, batch_size)).collect();
        let lists: Vec<&[u32]> = profile.iter().map(|b| &b.fields[0].indices[..]).collect();
        Some(
            Reorderer::new(ReorderConfig { hot_ratio: 0.05, seed: 1, ..ReorderConfig::default() })
                .fit(rows, &lists),
        )
    } else {
        None
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut table = TtEmbeddingBag::new(&TtConfig::new(rows, 32, 32), &mut rng)
        .with_options(variant.options.clone());
    let mut ws = TtWorkspace::new();

    let start = Instant::now();
    for k in 0..num_batches {
        let mut batch = ds.batch(100 + k, batch_size);
        if let Some(b) = &bijection {
            batch.fields[0].remap(&b.forward);
        }
        let field = &batch.fields[0];
        let out = table.forward(&field.indices, &field.offsets, &mut ws);
        table.backward_sgd(&out, &mut ws, 0.01);
    }
    (num_batches as usize * batch_size) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let scale = bench_scale(0.1);
    let num_batches = bench_batches(6);
    let batch_size = 2048;
    let table_rows: Vec<usize> = [2_500_000usize, 5_000_000, 10_000_000]
        .iter()
        .map(|r| ((*r as f64) * scale) as usize)
        .collect();

    let variants = [
        Variant {
            name: "EL-Rec (all optimizations)",
            options: TtOptions::default(),
            reorder: true,
        },
        Variant {
            name: "- in-advance aggregation",
            options: TtOptions { backward: BackwardStrategy::PerLookup, ..TtOptions::default() },
            reorder: true,
        },
        Variant { name: "- index reordering", options: TtOptions::default(), reorder: false },
        Variant {
            name: "- intermediate result reuse",
            options: TtOptions { forward: ForwardStrategy::Naive, ..TtOptions::default() },
            reorder: true,
        },
        Variant {
            name: "- fused core update",
            options: TtOptions { fused_update: false, ..TtOptions::default() },
            reorder: true,
        },
    ];

    section(&format!("Figure 14: optimization breakdown (throughput, samples/s; scale {scale})"));
    let mut rows_out = Vec::new();
    for &rows in &table_rows {
        let base = throughput(rows, &variants[0], batch_size, num_batches);
        let mut cells = vec![format!("{:.1}M rows", rows as f64 / 1e6)];
        cells.push(format!("{base:.0} (100%)"));
        for v in &variants[1..] {
            let t = throughput(rows, v, batch_size, num_batches);
            cells.push(format!("{t:.0} ({:.0}%)", t / base * 100.0));
        }
        rows_out.push(cells);
    }
    let headers: Vec<&str> =
        std::iter::once("table size").chain(variants.iter().map(|v| v.name)).collect();
    print_table(&headers, &rows_out);
    println!(
        "paper: disabling in-advance aggregation costs ~52% throughput,\n\
         index reordering ~13%, intermediate-result reuse ~10%."
    );
}
