//! Figure 16 — pipeline training throughput.
//!
//! Compares three configurations on the same hybrid placement (the largest
//! table TT-compressed on the device, the remaining large tables in host
//! memory):
//!
//! * DLRM — every large table hosted, strict sequential parameter server;
//! * EL-Rec (Sequential) — pre-fetch queue length 1;
//! * EL-Rec (Pipeline) — queue depth 4, embedding cache resolving RAW.
//!
//! The two stages (host gather/update/load vs device compute) are
//! *measured* on real threads; because this machine exposes a single CPU
//! core, physical overlap is impossible, so the pipeline's effect is
//! modeled from the measured stage times: sequential = host + device,
//! pipelined = max(host, device) (+ one-batch fill). Bus time comes from
//! the metered traffic. This is the documented single-core substitution
//! for the paper's CPU+GPU testbed.

use el_bench::{bench_batches, bench_scale, fmt_secs, fmt_speedup, print_table, section};
use el_data::{DatasetSpec, SyntheticDataset};
use el_dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer};
use el_pipeline::device::DeviceSpec;
use el_pipeline::server::{HostServer, ServerMode};
use el_pipeline::trainer::{PipelineConfig, PipelineTrainer};
use rand::SeedableRng;

/// Builds a model + host server: the largest table stays on the device
/// (TT when `tt` is set), every other large table is hosted.
fn setup(
    ds: &SyntheticDataset,
    tt: bool,
    threshold: usize,
    mode: ServerMode,
) -> (DlrmModel, HostServer) {
    let spec = ds.spec();
    let largest = spec
        .table_cardinalities
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap();
    let tt_threshold = if tt { spec.table_cardinalities[largest] } else { usize::MAX };
    let mut cfg = DlrmConfig::for_spec(spec, 16, tt_threshold, 16);
    cfg.bottom_hidden = vec![32];
    cfg.top_hidden = vec![32];
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut model = DlrmModel::new(&cfg, &mut rng);

    let mut host = Vec::new();
    for (t, &card) in spec.table_cardinalities.iter().enumerate() {
        let device_resident = (tt && t == largest) || card < threshold;
        if !device_resident {
            let dense =
                match std::mem::replace(&mut model.tables[t], EmbeddingLayer::Hosted { dim: 16 }) {
                    EmbeddingLayer::Dense(bag) => bag,
                    other => {
                        model.tables[t] = other;
                        continue;
                    }
                };
            host.push((t, dense));
        }
    }
    (model, HostServer::new(host, cfg.lr).with_mode(mode))
}

fn main() {
    let scale = bench_scale(0.003);
    let num_batches = bench_batches(16);
    let device = DeviceSpec::v100();
    let ds = SyntheticDataset::new(DatasetSpec::criteo_kaggle(scale), 71);
    let threshold = 2_000;

    section(&format!(
        "Figure 16: pipeline training throughput (stages measured, overlap modeled, {})",
        device.name
    ));
    let mut rows = Vec::new();
    let mut baseline = 0.0f64;
    for (name, tt, pipelined, depth, mode) in [
        ("DLRM (all hosted, sequential)", false, false, 1usize, ServerMode::PooledEmbeddings),
        ("EL-Rec (Sequential)", true, false, 1, ServerMode::UniqueRows),
        ("EL-Rec (Pipeline)", true, true, 4, ServerMode::UniqueRows),
    ] {
        let (model, server) = setup(&ds, tt, threshold, mode);
        let config = PipelineConfig {
            batch_size: 1024,
            first_batch: 0,
            num_batches,
            prefetch_depth: depth,
            pipelined,
            overlap_analysis: pipelined,
        };
        let report = PipelineTrainer::train(model, server, &ds, &config);

        let host_stage = report.server_cpu.as_secs_f64() / device.host_scale
            + report.server_meter.simulated_time(&device).as_secs_f64();
        let device_stage = report.worker_compute.as_secs_f64() / device.compute_scale;
        let total = if pipelined {
            // stages overlap; the shorter one hides behind the longer,
            // plus one batch of pipeline fill
            host_stage.max(device_stage) + host_stage.min(device_stage) / num_batches as f64
        } else {
            host_stage + device_stage
        };
        let samples = (num_batches as usize * config.batch_size) as f64;
        let throughput = samples / total;
        if baseline == 0.0 {
            baseline = throughput;
        }
        rows.push(vec![
            name.to_string(),
            format!("{throughput:.0}"),
            fmt_speedup(throughput / baseline),
            fmt_secs(host_stage),
            fmt_secs(device_stage),
            report.stale_hits.to_string(),
        ]);
    }
    print_table(
        &["configuration", "samples/s", "speedup", "host stage", "device stage", "stale hits"],
        &rows,
    );
    println!(
        "paper: EL-Rec (Pipeline) 2.44x over DLRM and 1.30x over EL-Rec\n\
         (Sequential) on average; the embedding cache keeps pipelined\n\
         training numerically exact (see the pipeline equivalence test)."
    );
}
