//! Figure 15 — loss convergence of DLRM vs TT-Rec vs EL-Rec.
//!
//! Trains the three models on the Terabyte-shaped synthetic workload and
//! prints windowed training-loss averages. The paper's claim: the TT
//! table does not slow convergence — the three curves coincide.

use el_bench::{bench_batches, bench_scale, print_table, section};
use el_core::TtOptions;
use el_data::{DatasetSpec, SyntheticDataset};
use el_dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer};
use rand::SeedableRng;

fn train_curve(
    ds: &SyntheticDataset,
    tt_threshold: usize,
    options: Option<TtOptions>,
    num_batches: u64,
    window: usize,
) -> Vec<f32> {
    let mut cfg = DlrmConfig::for_spec(ds.spec(), 16, tt_threshold, 16);
    cfg.bottom_hidden = vec![32];
    cfg.top_hidden = vec![32];
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut model = DlrmModel::new(&cfg, &mut rng);
    if let Some(opts) = options {
        for t in &mut model.tables {
            if let EmbeddingLayer::Tt(bag, _) = t {
                bag.options = opts.clone();
            }
        }
    }
    let mut curve = Vec::new();
    let mut acc = 0.0f32;
    for k in 0..num_batches {
        acc += model.train_step(&ds.batch(k, 512));
        if (k + 1) % window as u64 == 0 {
            curve.push(acc / window as f32);
            acc = 0.0;
        }
    }
    curve
}

fn main() {
    let scale = bench_scale(0.0003);
    let num_batches = bench_batches(80);
    let window = 10usize;
    let ds = SyntheticDataset::new(DatasetSpec::criteo_terabyte(scale), 61);

    section("Figure 15: training-loss convergence (terabyte-shaped synthetic)");
    let dlrm = train_curve(&ds, usize::MAX, None, num_batches, window);
    let ttrec = train_curve(&ds, 2_000, Some(TtOptions::tt_rec_baseline()), num_batches, window);
    let elrec = train_curve(&ds, 2_000, Some(TtOptions::default()), num_batches, window);

    let mut rows = Vec::new();
    for (i, ((a, b), c)) in dlrm.iter().zip(&ttrec).zip(&elrec).enumerate() {
        rows.push(vec![
            format!("{}", (i + 1) * window),
            format!("{a:.4}"),
            format!("{b:.4}"),
            format!("{c:.4}"),
        ]);
    }
    print_table(&["iteration", "DLRM", "TT-Rec", "EL-Rec"], &rows);

    let last = rows.len() - 1;
    let spread = (dlrm[last] - elrec[last]).abs().max((ttrec[last] - elrec[last]).abs());
    println!(
        "final-window spread between curves: {spread:.4} \n\
         paper: the EL-Rec curve tracks DLRM — TT training needs no extra iterations."
    );
}
