//! Table IV — prediction accuracy across frameworks.
//!
//! Trains DLRM, FAE, TT-Rec and EL-Rec on each dataset shape and evaluates
//! accuracy on held-out batches. The paper's claim: TT compression costs
//! below 0.1% accuracy.

use el_bench::{bench_batches, bench_scale, print_table, section};
use el_data::{DatasetSpec, MiniBatch, SyntheticDataset};
use el_frameworks::{run_framework, FrameworkKind, RunParams};

fn main() {
    let scale = bench_scale(0.002);
    let num_batches = bench_batches(60);
    let datasets = [
        SyntheticDataset::new(DatasetSpec::avazu(scale), 21),
        SyntheticDataset::new(DatasetSpec::criteo_kaggle(scale), 22),
        SyntheticDataset::new(DatasetSpec::criteo_terabyte(scale * 0.1), 23),
    ];

    section("Table IV: prediction accuracy (%) after training");
    let mut rows = Vec::new();
    for ds in &datasets {
        let params = RunParams {
            batch_size: 512,
            num_batches,
            dim: 16,
            large_threshold: 2_000,
            tt_rank: 16,
            profile_batches: 6,
            ..RunParams::default()
        };
        let eval: Vec<MiniBatch> = (10_000..10_008u64).map(|b| ds.batch(b, 512)).collect();
        let mut cells = vec![ds.spec().name.clone()];
        for kind in FrameworkKind::all() {
            let mut run = run_framework(kind, ds, &params);
            let m = run.evaluate(&eval);
            cells.push(format!("{:.2} (auc {:.3})", m.accuracy * 100.0, m.auc));
        }
        rows.push(cells);
    }
    print_table(&["dataset", "DLRM", "FAE", "TT-Rec", "EL-Rec"], &rows);
    println!(
        "paper: DLRM 83.53/81.96/78.53, EL-Rec 83.51/81.90/78.50 — compression\n\
         costs < 0.1% accuracy. Expect all columns above within a small band."
    );
}
