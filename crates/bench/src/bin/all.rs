//! Runs the whole experiment suite — every table and figure — in paper
//! order, by invoking the sibling binaries.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1_frameworks",
    "table2_datasets",
    "table3_footprint",
    "table4_accuracy",
    "fig4_data_characteristics",
    "fig11_end_to_end",
    "fig12_multi_gpu",
    "fig13_large_table",
    "fig14_breakdown",
    "fig15_convergence",
    "fig16_pipeline",
    "fig17_lookup",
    "fig18_backward",
    "ablation_queue_depth",
    "ablation_rank_sweep",
    "ablation_inference_cache",
    "extra_quantization_vs_tt",
];

fn main() {
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe directory");
    let mut failed = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n################ {exp} ################");
        let status = Command::new(dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            eprintln!("!! {exp} exited with {status}");
            failed.push(*exp);
        }
    }
    if failed.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
