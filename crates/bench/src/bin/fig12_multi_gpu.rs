//! Figure 12 — training throughput under the multi-GPU setting.
//!
//! Both systems replicate the MLPs (data parallel). They differ in the
//! embedding layer:
//!
//! * **EL-Rec** replicates the compact Eff-TT tables too, so each device
//!   trains an independent batch and the only communication is the
//!   gradient all-reduce (MLP + TT cores);
//! * **DLRM** cannot replicate its dense tables — they are sharded model
//!   parallel, so every batch additionally pays an all-to-all embedding
//!   exchange forward and backward.
//!
//! Per-batch compute is measured on the real kernels; communication is
//! metered and charged to the PCIe link (the bottleneck hop of the
//! p3.8xlarge topology). Throughput = W * batch / (compute/scale + comm).

use el_bench::{bench_batches, bench_scale, fmt_speedup, print_table, section};
use el_data::{DatasetSpec, SyntheticDataset};
use el_dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer};
use el_pipeline::device::DeviceSpec;
use el_pipeline::parallel::ring_allreduce_bytes;
use rand::SeedableRng;
use std::time::Instant;

/// Measured mean per-batch train-step CPU seconds.
fn per_batch_compute(model: &mut DlrmModel, ds: &SyntheticDataset, batch: usize, n: u64) -> f64 {
    let _ = model.train_step(&ds.batch(1_000, batch)); // warmup
    let start = Instant::now();
    for k in 0..n {
        let _ = model.train_step(&ds.batch(k, batch));
    }
    start.elapsed().as_secs_f64() / n as f64
}

fn main() {
    let scale = bench_scale(0.01);
    let num_steps = bench_batches(3);
    // the paper's setting: batch 4K, dim 128
    let batch_size = 4096;
    let dim = 128;
    let device = DeviceSpec::v100();
    let ds = SyntheticDataset::new(DatasetSpec::criteo_kaggle(scale), 81);
    let threshold = 1_000;
    let large = ds.spec().large_tables(threshold).len();

    let make = |tt_threshold: usize| {
        let mut cfg = DlrmConfig::for_spec(ds.spec(), dim, tt_threshold, 32);
        cfg.bottom_hidden = vec![64];
        cfg.top_hidden = vec![64];
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        DlrmModel::new(&cfg, &mut rng)
    };

    let mut elrec = make(threshold);
    let mut dlrm = make(usize::MAX);
    let c_el = per_batch_compute(&mut elrec, &ds, batch_size, num_steps);
    let c_dlrm = per_batch_compute(&mut dlrm, &ds, batch_size, num_steps);
    // All-reduce payload: MLP grads + TT-core grads. Small dense tables
    // sync sparse gradients whose volume is negligible (unique rows per
    // batch), matching real data-parallel embedding replication.
    let mlp_bytes = (dlrm.bottom.param_count() + dlrm.top.param_count()) * 4;
    let tt_bytes: usize = elrec
        .tables
        .iter()
        .map(|t| match t {
            EmbeddingLayer::Tt(bag, _) => bag.param_count() * 4,
            _ => 0,
        })
        .sum();
    let grad_bytes_el = mlp_bytes + tt_bytes;

    // Split each model's step into kernel classes: dense lookups are
    // memory-bound gathers, everything else (MLP, interaction, TT chains)
    // is GEMM-class math. Measured on a representative batch.
    let probe = ds.batch(999, batch_size);
    let emb_time = |model: &mut DlrmModel| -> f64 {
        let t0 = Instant::now();
        for (t, table) in model.tables.iter_mut().enumerate() {
            let field = &probe.fields[t];
            match table {
                EmbeddingLayer::Dense(bag) => {
                    std::hint::black_box(bag.forward(&field.indices, &field.offsets));
                }
                EmbeddingLayer::Tt(bag, ws) => {
                    std::hint::black_box(bag.forward(&field.indices, &field.offsets, ws));
                }
                EmbeddingLayer::Quantized(bag) => {
                    std::hint::black_box(bag.forward(&field.indices, &field.offsets));
                }
                EmbeddingLayer::Bf16(bag) => {
                    std::hint::black_box(bag.forward(&field.indices, &field.offsets));
                }
                EmbeddingLayer::Hosted { .. } => {}
            }
        }
        t0.elapsed().as_secs_f64() * 2.0 // forward + backward
    };
    let gather_dlrm = emb_time(&mut dlrm).min(c_dlrm);
    let tt_el = emb_time(&mut elrec).min(c_el); // GEMM class
    let mlp_dlrm = c_dlrm - gather_dlrm;
    let mlp_el = c_el - tt_el;
    let dev_time_dlrm = mlp_dlrm / device.gemm_scale + gather_dlrm / device.gather_scale;
    let dev_time_el = (mlp_el + tt_el) / device.gemm_scale;

    eprintln!(
        "  [fig12] c_dlrm={:.1}ms (gather {:.1}ms) c_el={:.1}ms (tt {:.1}ms) large={large}",
        c_dlrm * 1e3,
        gather_dlrm * 1e3,
        c_el * 1e3,
        tt_el * 1e3
    );
    section(&format!("Figure 12: multi-GPU training throughput ({}, simulated)", device.name));
    let mut rows = Vec::new();
    let mut elrec_tp = [0.0f64; 2];
    let mut dlrm_tp = [0.0f64; 2];
    for (i, &workers) in [1usize, 4].iter().enumerate() {
        // DLRM: data-parallel MLP (ring all-reduce) + model-parallel
        // embeddings (all-to-all both directions).
        let a2a_bytes = if workers > 1 {
            2 * batch_size * dim * 4 * large * (workers - 1) / workers
        } else {
            0
        };
        let mlp_ring = ring_allreduce_bytes(mlp_bytes / 4, workers);
        let dlrm_comm = (a2a_bytes as f64 + mlp_ring as f64) / device.pcie_bps;
        let dlrm_time = dev_time_dlrm + dlrm_comm;
        dlrm_tp[i] = workers as f64 * batch_size as f64 / dlrm_time;
        rows.push(vec![
            format!(
                "DLRM ({workers} GPU{})",
                if workers > 1 { ", model-parallel emb" } else { "" }
            ),
            format!("{:.0}", dlrm_tp[i]),
        ]);

        // EL-Rec: everything replicated; one ring all-reduce of all grads.
        let el_comm = ring_allreduce_bytes(grad_bytes_el / 4, workers) as f64 / device.pcie_bps;
        let el_time = dev_time_el + el_comm;
        elrec_tp[i] = workers as f64 * batch_size as f64 / el_time;
        rows.push(vec![
            format!("EL-Rec ({workers} GPU, data-parallel)"),
            format!("{:.0}", elrec_tp[i]),
        ]);
    }
    print_table(&["configuration", "samples/s (simulated)"], &rows);
    println!(
        "EL-Rec(4)/DLRM(4) = {}; DLRM(1)/EL-Rec(1) = {}",
        fmt_speedup(elrec_tp[1] / dlrm_tp[1]),
        fmt_speedup(dlrm_tp[0] / elrec_tp[0]),
    );
    println!(
        "paper: EL-Rec(4) up to 1.4x over DLRM(4); DLRM(1) slightly above\n\
         EL-Rec(1) because tensorization adds compute."
    );
}
