//! Figure 13 — one very large embedding table (40M x 128 in the paper).
//!
//! Compares EL-Rec's replicated TT table against HugeCTR-style row
//! sharding and TorchRec-style column sharding at 2 and 4 workers (the
//! dense table does not fit one device, so model-parallel baselines need
//! at least 2).

use el_bench::{bench_batches, bench_scale, fmt_bytes, print_table, section};
use el_frameworks::large_table::{large_table_throughput, LargeTableParams, ShardingStrategy};
use el_pipeline::device::DeviceSpec;

fn main() {
    let scale = bench_scale(0.05);
    let device = DeviceSpec::v100();
    let base = LargeTableParams {
        rows: 40_000_000,
        measured_rows: ((40_000_000f64 * scale) as usize).max(10_000),
        dim: 128,
        tt_rank: 32,
        batch_size: 2048,
        lookups_per_sample: 1,
        num_batches: bench_batches(4),
        workers: 4,
        seed: 5,
    };

    section("Figure 13: 40M x 128 single-table training throughput");
    println!(
        "(dense kernels measured on a {}-row replica; comm metered at full size)",
        base.measured_rows
    );
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        let params = LargeTableParams { workers, ..base };
        for strategy in [
            ShardingStrategy::ElRecTt,
            ShardingStrategy::RowSharded,
            ShardingStrategy::ColumnSharded,
        ] {
            // dense shards need the table to fit across workers
            let dense_fits = device.fits(params.rows * params.dim * 4 / workers);
            if strategy != ShardingStrategy::ElRecTt && !dense_fits {
                rows.push(vec![
                    workers.to_string(),
                    strategy.name().into(),
                    "OOM (does not fit)".into(),
                    fmt_bytes(params.rows * params.dim * 4 / workers),
                ]);
                continue;
            }
            let r = large_table_throughput(strategy, &params, &device);
            rows.push(vec![
                workers.to_string(),
                r.name,
                format!("{:.0}", r.samples_per_sec),
                fmt_bytes(r.device_bytes_per_worker),
            ]);
        }
    }
    print_table(&["workers", "strategy", "samples/s (simulated)", "bytes/worker"], &rows);
    println!(
        "paper: EL-Rec outperforms TorchRec by ~1.35x and HugeCTR by ~1.07x;\n\
         only EL-Rec trains the table on a single 16 GB GPU."
    );
}
