//! Ablation: TT rank.
//!
//! The rank is EL-Rec's main accuracy/footprint/latency dial (the paper
//! uses 128 on V100, 64 on T4, without sweeping). This bench sweeps it on
//! one table and on the end-to-end model: footprint and kernel latency
//! grow ~quadratically with rank, accuracy saturates early.

use el_bench::{bench_batches, bench_scale, fmt_bytes, fmt_secs, print_table, section};
use el_core::{TtConfig, TtEmbeddingBag, TtWorkspace};
use el_data::{DatasetSpec, MiniBatch, SyntheticDataset};
use el_dlrm::{DlrmConfig, DlrmModel};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = bench_scale(0.1);
    let num_batches = bench_batches(4);
    let rows = (2_000_000f64 * scale) as usize;

    // --- kernel latency + footprint per rank
    section(&format!("Ablation: TT rank — kernel cost on one {rows}-row table (dim 32)"));
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 2;
    let ds = SyntheticDataset::new(spec, 13);
    let mut table_rows = Vec::new();
    for rank in [8usize, 16, 32, 64, 128] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut table = TtEmbeddingBag::new(&TtConfig::new(rows, 32, rank), &mut rng);
        let mut ws = TtWorkspace::new();
        let batch = ds.batch(0, 2048);
        let field = &batch.fields[0];
        let _ = table.forward(&field.indices, &field.offsets, &mut ws); // warm
        let t0 = Instant::now();
        for _ in 0..num_batches {
            let out = table.forward(&field.indices, &field.offsets, &mut ws);
            table.backward_sgd(&out, &mut ws, 0.01);
        }
        let step = t0.elapsed().as_secs_f64() / num_batches as f64;
        table_rows.push(vec![
            rank.to_string(),
            fmt_bytes(table.footprint_bytes()),
            format!("{:.0}x", table.compression_ratio()),
            fmt_secs(step),
        ]);
    }
    print_table(&["rank", "core bytes", "compression", "fwd+bwd / 2048-batch"], &table_rows);

    // --- end-to-end accuracy per rank
    section("Ablation: TT rank — model accuracy (4 x 20k-row tables, 40 batches)");
    let mut spec = DatasetSpec::toy(4, 20_000, usize::MAX / 2);
    spec.num_dense = 4;
    let ds = SyntheticDataset::new(spec, 14);
    let eval: Vec<MiniBatch> = (9_000..9_006u64).map(|b| ds.batch(b, 512)).collect();
    let mut acc_rows = Vec::new();
    for rank in [0usize, 4, 8, 16, 32] {
        let mut cfg = DlrmConfig::for_spec(ds.spec(), 16, 1, rank.max(1));
        if rank == 0 {
            cfg.tt_threshold = usize::MAX;
        }
        cfg.bottom_hidden = vec![32];
        cfg.top_hidden = vec![32];
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut model = DlrmModel::new(&cfg, &mut rng);
        for k in 0..40 {
            let _ = model.train_step(&ds.batch(k, 512));
        }
        let m = model.evaluate(&eval);
        acc_rows.push(vec![
            if rank == 0 { "dense".into() } else { rank.to_string() },
            format!("{:.2}%", m.accuracy * 100.0),
            format!("{:.4}", m.auc),
            fmt_bytes(model.embedding_footprint_bytes()),
        ]);
    }
    print_table(&["rank", "accuracy", "auc", "device emb bytes"], &acc_rows);
    println!("accuracy saturates well below the paper's rank 128 at these table sizes.");
}
