//! # el-bench — the experiment harness
//!
//! One binary per table/figure of the EL-Rec paper (see DESIGN.md §4 for
//! the experiment index and EXPERIMENTS.md for paper-vs-measured records):
//!
//! ```text
//! cargo run --release -p el-bench --bin table1_frameworks
//! cargo run --release -p el-bench --bin table2_datasets
//! cargo run --release -p el-bench --bin table3_footprint
//! cargo run --release -p el-bench --bin table4_accuracy
//! cargo run --release -p el-bench --bin fig4_data_characteristics
//! cargo run --release -p el-bench --bin fig11_end_to_end
//! cargo run --release -p el-bench --bin fig12_multi_gpu
//! cargo run --release -p el-bench --bin fig13_large_table
//! cargo run --release -p el-bench --bin fig14_breakdown
//! cargo run --release -p el-bench --bin fig15_convergence
//! cargo run --release -p el-bench --bin fig16_pipeline
//! cargo run --release -p el-bench --bin fig17_lookup
//! cargo run --release -p el-bench --bin fig18_backward
//! cargo run --release -p el-bench --bin all          # everything above
//! ```
//!
//! Experiments run on *scaled* dataset shapes (environment variable
//! `EL_BENCH_SCALE`, default chosen per experiment) so the suite completes
//! on one machine; the paper-vs-measured comparison targets speedup
//! *shapes*, not absolute numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;

/// Provenance fields for `BENCH_*.json` rows: which micro-kernel variant
/// was dispatched, what the host CPU supports, and how wide the rayon pool
/// is. Attached via `Criterion::provenance` so every recorded number can be
/// traced to the code path and machine that produced it.
pub fn provenance_fields() -> Vec<(String, String)> {
    vec![
        ("kernel".to_string(), el_tensor::micro::active_kernel().to_string()),
        ("cpu_features".to_string(), el_tensor::micro::cpu_features()),
        ("rayon_threads".to_string(), rayon::current_num_threads().to_string()),
    ]
}

/// Prints a boxed section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints an aligned text table.
pub fn print_table<H: Display, C: Display>(headers: &[H], rows: &[Vec<C>]) {
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> =
        rows.iter().map(|r| r.iter().map(|c| c.to_string()).collect()).collect();
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for r in &rows {
        assert_eq!(r.len(), cols, "row width mismatch");
        for (w, c) in widths.iter_mut().zip(r) {
            *w = (*w).max(c.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(&widths) {
            line.push_str(&format!(" {c:>w$} |", w = w));
        }
        line
    };
    let sep = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    println!("{sep}");
    println!("{}", fmt_row(&headers));
    println!("{sep}");
    for r in &rows {
        println!("{}", fmt_row(r));
    }
    println!("{sep}");
}

/// Human-readable byte count.
pub fn fmt_bytes(bytes: usize) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{bytes} B")
    }
}

/// Human-readable duration.
pub fn fmt_secs(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.1} us", seconds * 1e6)
    }
}

/// `x.yz x` speedup formatting.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Reads a scale factor from `EL_BENCH_SCALE`, with an
/// experiment-specific default.
pub fn bench_scale(default: f64) -> f64 {
    std::env::var("EL_BENCH_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads an iteration override from `EL_BENCH_BATCHES`.
pub fn bench_batches(default: u64) -> u64 {
    std::env::var("EL_BENCH_BATCHES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2_000_000), "2.00 MB");
        assert_eq!(fmt_bytes(3_500_000_000), "3.50 GB");
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0021), "2.10 ms");
        assert_eq!(fmt_speedup(3.04), "3.04x");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(&["a", "bb"], &[vec!["1".to_string(), "2".to_string()]]);
    }

    #[test]
    fn env_overrides_parse() {
        assert_eq!(bench_scale(0.5), 0.5);
        assert_eq!(bench_batches(7), 7);
    }
}
