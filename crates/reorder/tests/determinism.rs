//! Reordering determinism: the Louvain bijection must be a pure function
//! of `(cardinality, batches, config)` — identical across repeated runs,
//! and identical across `RAYON_NUM_THREADS` settings (guarding against a
//! future parallelization of the graph build or community detection
//! introducing schedule-dependent tie-breaks). The thread-count cases
//! re-exec this test binary, following `vendor/rayon/tests/stress.rs`,
//! because a pool's size is fixed at first use within a process.

use el_reorder::{CommunityAlgorithm, IndexBijection, ReorderConfig, Reorderer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::Command;

const CARDINALITY: usize = 400;

/// A deterministic, skewed profiling workload: heavy head plus clustered
/// tail co-occurrences, enough structure for Louvain to find communities.
fn workload(seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..60)
        .map(|_| {
            let mut batch = Vec::with_capacity(24);
            for _ in 0..8 {
                batch.push(rng.gen_range(0..(CARDINALITY / 20) as u32)); // hot head
            }
            let cluster = rng.gen_range(0..8u32);
            for _ in 0..16 {
                let lo = (CARDINALITY / 20) as u32 + cluster * 40;
                batch.push(rng.gen_range(lo..lo + 40).min(CARDINALITY as u32 - 1));
            }
            batch
        })
        .collect()
}

fn fit(seed: u64) -> IndexBijection {
    let batches = workload(seed);
    let views: Vec<&[u32]> = batches.iter().map(|b| b.as_slice()).collect();
    let config = ReorderConfig { algorithm: CommunityAlgorithm::Louvain, ..Default::default() };
    Reorderer::new(config).fit(CARDINALITY, &views)
}

/// FNV-1a over the forward map — the whole bijection, since `inverse` is
/// derived from `forward`.
fn bijection_hash(b: &IndexBijection) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in &b.forward {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[test]
fn repeated_fits_are_identical() {
    let a = fit(7);
    let b = fit(7);
    assert_eq!(a.forward, b.forward, "same seed, same batches, different bijection");
    assert_eq!(a.inverse, b.inverse);
    a.validate().expect("bijection must be a permutation");
}

#[test]
fn different_profiles_give_different_orders() {
    // guards against the hash comparing a constant (e.g. identity) map
    let a = fit(7);
    let b = fit(8);
    assert_ne!(bijection_hash(&a), bijection_hash(&b));
}

// ---------------------------------------------------------------------------
// Cross-thread-count determinism (subprocess harness)
// ---------------------------------------------------------------------------

/// Child body: prints the bijection hash for the parent to compare.
/// Runs only when re-exec'd with `EL_REORDER_CHILD` set.
#[test]
fn determinism_child() {
    if std::env::var("EL_REORDER_CHILD").is_err() {
        return; // not a child: louvain_is_thread_count_invariant drives this
    }
    let bij = fit(7);
    bij.validate().expect("bijection must be a permutation");
    println!("bijection-hash={:#018x}", bijection_hash(&bij));
}

/// Re-execs this binary with `RAYON_NUM_THREADS` pinned and returns the
/// hash the child printed.
fn child_hash(threads: &str) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(exe)
        .args(["determinism_child", "--exact", "--nocapture"])
        .env("EL_REORDER_CHILD", "1")
        .env("RAYON_NUM_THREADS", threads)
        .output()
        .expect("spawning determinism child failed");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "child (RAYON_NUM_THREADS={threads}) failed: {}\n{stdout}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr),
    );
    // libtest prints "test determinism_child ... " without a newline, so
    // the marker may share a line with the harness banner — split, don't
    // match on line starts
    stdout
        .split("bijection-hash=")
        .nth(1)
        .expect("child must print its bijection hash")
        .split_whitespace()
        .next()
        .expect("hash value follows the marker")
        .to_string()
}

#[test]
fn louvain_is_thread_count_invariant() {
    let h1 = child_hash("1");
    let h4 = child_hash("4");
    assert_eq!(h1, h4, "bijection depends on RAYON_NUM_THREADS");
    // and both match this process's own fit
    assert_eq!(h1, format!("{:#018x}", bijection_hash(&fit(7))));
}

// ---------------------------------------------------------------------------
// Permutation property
// ---------------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fitted bijection is a true permutation — checked from first
    /// principles (sorted forward map is exactly 0..n, and inverse∘forward
    /// is the identity), independently of `IndexBijection::validate`, for
    /// both community algorithms and arbitrary workloads.
    #[test]
    fn fit_is_a_true_permutation(
        seed in 0u64..10_000,
        card in 2usize..120,
        use_labelprop in proptest::bool::ANY,
        hot_pct in 0u32..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let batches: Vec<Vec<u32>> = (0..8)
            .map(|_| (0..12).map(|_| rng.gen_range(0..card as u32)).collect())
            .collect();
        let views: Vec<&[u32]> = batches.iter().map(|b| b.as_slice()).collect();
        let config = ReorderConfig {
            hot_ratio: f64::from(hot_pct) / 100.0,
            seed,
            algorithm: if use_labelprop {
                CommunityAlgorithm::LabelPropagation
            } else {
                CommunityAlgorithm::Louvain
            },
        };
        let bij = Reorderer::new(config).fit(card, &views);
        prop_assert_eq!(bij.forward.len(), card);
        prop_assert_eq!(bij.inverse.len(), card);
        let mut sorted = bij.forward.clone();
        sorted.sort_unstable();
        let identity: Vec<u32> = (0..card as u32).collect();
        prop_assert_eq!(&sorted, &identity, "forward map is not onto 0..{}", card);
        for (i, &f) in bij.forward.iter().enumerate() {
            prop_assert_eq!(bij.inverse[f as usize] as usize, i, "inverse∘forward ≠ id at {}", i);
        }
    }
}
