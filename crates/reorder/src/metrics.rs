//! Locality metrics quantifying what reordering buys the Eff-TT table.
//!
//! The reuse buffer hits whenever two indices of a batch share their TT
//! prefix `index / m_d` (paper Eq. 3 / §IV-B), so the ratio of unique
//! prefixes to unique indices is the direct measure of reordering quality —
//! fewer unique prefixes per unique index means more intermediate-result
//! reuse and higher cache hit rates.

/// Unique indices and unique depth-(d-1) prefixes of one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixStats {
    /// Distinct indices in the batch.
    pub unique_indices: usize,
    /// Distinct values of `index / last_dim`.
    pub unique_prefixes: usize,
    /// Total lookups.
    pub nnz: usize,
}

impl PrefixStats {
    /// Fraction of prefix products that can be shared between unique
    /// indices (0 = no sharing possible, → 1 = ideal sharing).
    pub fn reuse_opportunity(&self) -> f64 {
        if self.unique_indices == 0 {
            return 0.0;
        }
        1.0 - self.unique_prefixes as f64 / self.unique_indices as f64
    }
}

/// Computes [`PrefixStats`] for a batch of indices against the final TT
/// factor `last_dim` (`m_d`).
pub fn prefix_stats(indices: &[u32], last_dim: usize) -> PrefixStats {
    assert!(last_dim > 0);
    let mut sorted: Vec<u32> = indices.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let unique_indices = sorted.len();
    let mut prefixes: Vec<u32> = sorted.iter().map(|&i| i / last_dim as u32).collect();
    prefixes.dedup(); // already sorted because indices were
    PrefixStats { unique_indices, unique_prefixes: prefixes.len(), nnz: indices.len() }
}

/// Mean reuse opportunity across batches.
pub fn mean_reuse_opportunity(batches: &[&[u32]], last_dim: usize) -> f64 {
    if batches.is_empty() {
        return 0.0;
    }
    batches.iter().map(|b| prefix_stats(b, last_dim).reuse_opportunity()).sum::<f64>()
        / batches.len() as f64
}

/// Mean range-compactness of batches: average over batches of
/// `unique_indices / (max - min + 1)`; higher means each batch addresses a
/// tighter index window (the L1/L2 locality the paper credits for the
/// 1.27x/1.32x cache-hit-rate gains).
pub fn mean_compactness(batches: &[&[u32]], _cardinality: usize) -> f64 {
    let mut acc = 0.0;
    let mut n = 0usize;
    for batch in batches {
        if batch.is_empty() {
            continue;
        }
        let mut sorted: Vec<u32> = batch.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let span = (sorted[sorted.len() - 1] - sorted[0] + 1) as f64;
        acc += sorted.len() as f64 / span;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bijection::{ReorderConfig, Reorderer};

    #[test]
    fn prefix_stats_counts_unique_prefixes() {
        // last_dim 4: prefixes of {0,1,4,5,8} are {0,0,1,1,2}
        let s = prefix_stats(&[0, 1, 4, 5, 8, 8], 4);
        assert_eq!(s.unique_indices, 5);
        assert_eq!(s.unique_prefixes, 3);
        assert_eq!(s.nnz, 6);
        assert!((s.reuse_opportunity() - (1.0 - 3.0 / 5.0)).abs() < 1e-12);
    }

    #[test]
    fn contiguous_indices_maximize_reuse() {
        let tight = prefix_stats(&[0, 1, 2, 3], 4);
        let spread = prefix_stats(&[0, 4, 8, 12], 4);
        assert!(tight.reuse_opportunity() > spread.reuse_opportunity());
        assert_eq!(spread.reuse_opportunity(), 0.0);
    }

    #[test]
    fn empty_batch_is_zero() {
        let s = prefix_stats(&[], 4);
        assert_eq!(s.reuse_opportunity(), 0.0);
    }

    #[test]
    fn reordering_improves_reuse_on_clustered_workload() {
        // co-occurring clusters scattered through a 256-wide index space
        let clusters: Vec<Vec<u32>> =
            (0..8).map(|c| (0..8).map(|j| (c + j * 8) as u32 * 4 % 256).collect()).collect();
        let mut batches: Vec<Vec<u32>> = Vec::new();
        for _ in 0..6 {
            for c in &clusters {
                batches.push(c.clone());
            }
        }
        let refs: Vec<&[u32]> = batches.iter().map(|b| b.as_slice()).collect();
        let before = mean_reuse_opportunity(&refs, 8);

        let bij =
            Reorderer::new(ReorderConfig { hot_ratio: 0.0, seed: 3, ..ReorderConfig::default() })
                .fit(256, &refs);
        let remapped: Vec<Vec<u32>> =
            batches.iter().map(|b| b.iter().map(|&i| bij.forward[i as usize]).collect()).collect();
        let refs2: Vec<&[u32]> = remapped.iter().map(|b| b.as_slice()).collect();
        let after = mean_reuse_opportunity(&refs2, 8);
        assert!(
            after > before + 0.1,
            "reordering should raise reuse opportunity: {before} -> {after}"
        );
    }

    #[test]
    fn compactness_prefers_tight_windows() {
        let tight: &[u32] = &[10, 11, 12, 13];
        let spread: &[u32] = &[0, 50, 100, 150];
        assert!(mean_compactness(&[tight], 200) > mean_compactness(&[spread], 200));
    }
}
