//! Label propagation — the fast community-detection alternative.
//!
//! Louvain (the paper's choice) maximizes modularity directly but costs
//! multiple aggregation levels. Label propagation (Raghavan et al.) is the
//! standard cheap alternative: every vertex repeatedly adopts the label
//! carrying the largest incident edge weight; convergence takes a handful
//! of sweeps and the result is *a* community structure, usually slightly
//! worse in modularity but an order of magnitude faster to compute.
//!
//! The reorderer can be configured with either algorithm
//! ([`crate::bijection::CommunityAlgorithm`]); the `reorder` criterion
//! bench compares their cost, and the unit tests their quality.

use crate::graph::IndexGraph;
use crate::louvain::Partition;
use std::collections::HashMap;

/// Runs synchronous-ish label propagation (in-place updates within a
/// sweep, fixed vertex order for determinism).
pub fn label_propagation(graph: &IndexGraph, max_sweeps: usize) -> Partition {
    let n = graph.num_vertices();
    if n == 0 {
        return Partition { community: Vec::new(), count: 0 };
    }
    let mut labels: Vec<u32> = (0..n as u32).collect();

    for _sweep in 0..max_sweeps {
        let mut changed = 0usize;
        for v in 0..n {
            let mut weight_by_label: HashMap<u32, f64> = HashMap::new();
            for (nb, w) in graph.neighbors(v) {
                *weight_by_label.entry(labels[nb as usize]).or_insert(0.0) += w as f64;
            }
            if weight_by_label.is_empty() {
                continue;
            }
            // deterministic argmax: highest weight, ties to smallest label
            let current = labels[v];
            let (best, best_w) = weight_by_label.iter().map(|(&l, &w)| (l, w)).fold(
                (current, f64::MIN),
                |(bl, bw), (l, w)| {
                    if w > bw + 1e-12 || (w >= bw - 1e-12 && l < bl) {
                        (l, w)
                    } else {
                        (bl, bw)
                    }
                },
            );
            let _ = best_w;
            if best != current {
                labels[v] = best;
                changed += 1;
            }
        }
        if changed == 0 {
            break;
        }
    }

    compact(labels)
}

fn compact(labels: Vec<u32>) -> Partition {
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut community = labels;
    for c in &mut community {
        let next = remap.len() as u32;
        *c = *remap.entry(*c).or_insert(next);
    }
    let count = remap.len();
    Partition { community, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::IndexGraphBuilder;
    use crate::louvain::{louvain, modularity};

    fn two_cliques() -> IndexGraph {
        let mut b = IndexGraphBuilder::new(8, &[false; 8], 1);
        for _ in 0..3 {
            b.add_batch(&[0, 1, 2, 3]);
            b.add_batch(&[4, 5, 6, 7]);
        }
        b.add_batch(&[3, 4]);
        b.build()
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques();
        let p = label_propagation(&g, 16);
        assert!(p.count >= 2, "expected at least two communities, got {}", p.count);
        // the two cliques must not be merged
        assert_ne!(p.community[0], p.community[7]);
        // each clique's interior agrees
        assert_eq!(p.community[0], p.community[1]);
        assert_eq!(p.community[5], p.community[6]);
    }

    #[test]
    fn quality_is_close_to_louvain_on_clean_structure() {
        let g = two_cliques();
        let q_lp = modularity(&g, &label_propagation(&g, 16));
        let q_lv = modularity(&g, &louvain(&g));
        assert!(q_lp >= q_lv - 0.1, "label propagation too far behind louvain: {q_lp} vs {q_lv}");
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = IndexGraphBuilder::new(4, &[false; 4], 1).build();
        let p = label_propagation(&g, 8);
        assert_eq!(p.count, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = two_cliques();
        let a = label_propagation(&g, 16);
        let b = label_propagation(&g, 16);
        assert_eq!(a.community, b.community);
    }

    #[test]
    fn partition_covers_all_vertices() {
        let g = two_cliques();
        let p = label_propagation(&g, 16);
        assert_eq!(p.community.len(), g.num_vertices());
        let total: usize = p.members().iter().map(Vec::len).sum();
        assert_eq!(total, g.num_vertices());
    }
}
