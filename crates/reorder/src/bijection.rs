//! Index bijection generation (paper §IV-C, Figure 8).
//!
//! Combines the global frequency ordering with the detected communities
//! into one bijection over `[0, cardinality)`:
//!
//! * hot indices occupy the front, in descending frequency order — global
//!   information gathers them together;
//! * each community receives a contiguous range (communities ordered by
//!   total access frequency, members within a community likewise) — local
//!   information makes co-occurring indices neighbors, which maximizes TT
//!   prefix sharing and cache locality;
//! * indices never observed during profiling keep the tail, in their
//!   original order.
//!
//! Generation runs offline on profiled batches; applying the bijection at
//! training time is a single gather per batch (`SparseField::remap`).

use crate::graph::{hot_mask, IndexGraphBuilder};
use crate::labelprop::label_propagation;
use crate::louvain::louvain;

/// Which community-detection algorithm the reorderer runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommunityAlgorithm {
    /// Modularity-maximizing Louvain (the paper's choice; best quality).
    Louvain,
    /// Label propagation — much faster, slightly lower modularity; useful
    /// when profiling windows are huge or reordering must be refreshed
    /// online.
    LabelPropagation,
}

/// Configuration of the reordering stage.
#[derive(Clone, Copy, Debug)]
pub struct ReorderConfig {
    /// Fraction of indices pinned as hot (the paper's `Hot_ratio`).
    pub hot_ratio: f64,
    /// Seed of the edge-sampling RNG for very large batches.
    pub seed: u64,
    /// Community-detection algorithm.
    pub algorithm: CommunityAlgorithm,
}

impl Default for ReorderConfig {
    fn default() -> Self {
        Self { hot_ratio: 0.05, seed: 0x51_EC, algorithm: CommunityAlgorithm::Louvain }
    }
}

/// A bijection over the index space of one table.
#[derive(Clone, Debug)]
pub struct IndexBijection {
    /// `new = forward[old]`.
    pub forward: Vec<u32>,
    /// `old = inverse[new]`.
    pub inverse: Vec<u32>,
}

impl IndexBijection {
    /// The identity bijection.
    pub fn identity(cardinality: usize) -> Self {
        let forward: Vec<u32> = (0..cardinality as u32).collect();
        Self { inverse: forward.clone(), forward }
    }

    /// Remaps a slice of indices in place.
    pub fn apply(&self, indices: &mut [u32]) {
        for i in indices {
            *i = self.forward[*i as usize];
        }
    }

    /// Checks the bijection property (used by tests and debug assertions).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.forward.len();
        if self.inverse.len() != n {
            return Err("forward/inverse length mismatch".into());
        }
        let mut seen = vec![false; n];
        for (old, &new) in self.forward.iter().enumerate() {
            if new as usize >= n {
                return Err(format!("image {new} out of range"));
            }
            if seen[new as usize] {
                return Err(format!("image {new} hit twice"));
            }
            seen[new as usize] = true;
            if self.inverse[new as usize] as usize != old {
                return Err(format!("inverse mismatch at {old}"));
            }
        }
        Ok(())
    }
}

/// Builds index bijections from profiled batches.
#[derive(Clone, Debug, Default)]
pub struct Reorderer {
    /// Stage configuration.
    pub config: ReorderConfig,
}

impl Reorderer {
    /// A reorderer with the given configuration.
    pub fn new(config: ReorderConfig) -> Self {
        Self { config }
    }

    /// Fits a bijection for one table from profiled batch index lists.
    ///
    /// `batches` holds the (possibly repeated) indices of each profiling
    /// batch for this table.
    pub fn fit(&self, cardinality: usize, batches: &[&[u32]]) -> IndexBijection {
        // Global information: frequency counts.
        let mut counts = vec![0u64; cardinality];
        for batch in batches {
            for &i in *batch {
                counts[i as usize] += 1;
            }
        }
        let is_hot = hot_mask(&counts, self.config.hot_ratio);

        // Local information: co-occurrence graph over non-hot indices.
        let mut builder = IndexGraphBuilder::new(cardinality, &is_hot, self.config.seed);
        for batch in batches {
            builder.add_batch(batch);
        }
        let graph = builder.build();
        let partition = match self.config.algorithm {
            CommunityAlgorithm::Louvain => louvain(&graph),
            CommunityAlgorithm::LabelPropagation => label_propagation(&graph, 16),
        };

        // Assemble the new ordering: hot block first (frequency order) ...
        let mut order: Vec<u32> = Vec::with_capacity(cardinality);
        let mut hot: Vec<u32> = (0..cardinality as u32).filter(|&i| is_hot[i as usize]).collect();
        hot.sort_by_key(|&i| std::cmp::Reverse(counts[i as usize]));
        order.extend_from_slice(&hot);

        // ... then communities, hottest community first, hottest member
        // first within each ...
        let mut communities = partition.members();
        let comm_weight = |members: &Vec<u32>| -> u64 {
            members.iter().map(|&v| counts[graph.vertex_index[v as usize] as usize]).sum()
        };
        communities.sort_by_key(|m| std::cmp::Reverse(comm_weight(m)));
        let mut in_graph = vec![false; cardinality];
        for members in &communities {
            let mut idxs: Vec<u32> =
                members.iter().map(|&v| graph.vertex_index[v as usize]).collect();
            idxs.sort_by_key(|&i| std::cmp::Reverse(counts[i as usize]));
            for &i in &idxs {
                in_graph[i as usize] = true;
            }
            order.extend_from_slice(&idxs);
        }

        // ... and finally everything never observed in a co-occurrence.
        for i in 0..cardinality as u32 {
            if !is_hot[i as usize] && !in_graph[i as usize] {
                order.push(i);
            }
        }
        debug_assert_eq!(order.len(), cardinality);

        let mut forward = vec![0u32; cardinality];
        for (new, &old) in order.iter().enumerate() {
            forward[old as usize] = new as u32;
        }
        let bijection = IndexBijection { forward, inverse: order };
        debug_assert!(bijection.validate().is_ok());
        bijection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identity_is_valid() {
        IndexBijection::identity(10).validate().unwrap();
    }

    #[test]
    fn fit_produces_valid_bijection() {
        let r = Reorderer::default();
        let batches: Vec<Vec<u32>> = vec![vec![0, 5, 9], vec![5, 9, 3], vec![1, 2]];
        let refs: Vec<&[u32]> = batches.iter().map(|b| b.as_slice()).collect();
        let bij = r.fit(12, &refs);
        bij.validate().unwrap();
    }

    #[test]
    fn hot_indices_move_to_front_by_frequency() {
        let r =
            Reorderer::new(ReorderConfig { hot_ratio: 0.2, seed: 1, ..ReorderConfig::default() });
        // index 7 hottest, index 3 second (hot_count = 2 of 10)
        let batches: Vec<Vec<u32>> = vec![vec![7, 7, 7, 3, 3, 1], vec![7, 3, 2], vec![7, 0]];
        let refs: Vec<&[u32]> = batches.iter().map(|b| b.as_slice()).collect();
        let bij = r.fit(10, &refs);
        assert_eq!(bij.forward[7], 0);
        assert_eq!(bij.forward[3], 1);
    }

    #[test]
    fn cooccurring_indices_become_neighbors() {
        // Two co-occurrence clusters scattered across the index space.
        let r =
            Reorderer::new(ReorderConfig { hot_ratio: 0.0, seed: 2, ..ReorderConfig::default() });
        let a = [0u32, 17, 34, 51];
        let b = [8u32, 25, 42, 59];
        let mut batches: Vec<Vec<u32>> = Vec::new();
        for _ in 0..10 {
            batches.push(a.to_vec());
            batches.push(b.to_vec());
        }
        let refs: Vec<&[u32]> = batches.iter().map(|x| x.as_slice()).collect();
        let bij = r.fit(64, &refs);
        bij.validate().unwrap();
        let span = |idxs: &[u32]| {
            let new: Vec<u32> = idxs.iter().map(|&i| bij.forward[i as usize]).collect();
            *new.iter().max().unwrap() - *new.iter().min().unwrap()
        };
        // each cluster lands in a contiguous range of its own size
        assert_eq!(span(&a), 3, "cluster A not contiguous");
        assert_eq!(span(&b), 3, "cluster B not contiguous");
    }

    #[test]
    fn apply_remaps_in_place() {
        let bij = IndexBijection { forward: vec![2, 0, 1], inverse: vec![1, 2, 0] };
        let mut idx = vec![0u32, 1, 2, 0];
        bij.apply(&mut idx);
        assert_eq!(idx, vec![2, 0, 1, 2]);
    }

    #[test]
    fn validate_rejects_non_bijections() {
        let b = IndexBijection { forward: vec![0, 0], inverse: vec![0, 1] };
        assert!(b.validate().is_err());
        let b = IndexBijection { forward: vec![0, 5], inverse: vec![0, 1] };
        assert!(b.validate().is_err());
    }

    #[test]
    fn label_propagation_also_yields_valid_bijections() {
        let r = Reorderer::new(ReorderConfig {
            hot_ratio: 0.05,
            seed: 4,
            algorithm: CommunityAlgorithm::LabelPropagation,
        });
        let batches: Vec<Vec<u32>> = vec![vec![0, 5, 9], vec![5, 9, 3], vec![1, 2, 7]];
        let refs: Vec<&[u32]> = batches.iter().map(|b| b.as_slice()).collect();
        r.fit(12, &refs).validate().unwrap();
    }

    proptest! {
        #[test]
        fn prop_fit_is_always_a_bijection(seed in 0u64..500, card in 2usize..80) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let batches: Vec<Vec<u32>> = (0..6)
                .map(|_| (0..8).map(|_| rng.gen_range(0..card as u32)).collect())
                .collect();
            let refs: Vec<&[u32]> = batches.iter().map(|b| b.as_slice()).collect();
            let bij = Reorderer::default().fit(card, &refs);
            prop_assert!(bij.validate().is_ok());
        }
    }
}
