//! Index co-occurrence graphs (paper Algorithm 2).
//!
//! Vertices are the non-hot indices of one embedding table; an edge
//! connects two indices that appear in the same training batch, weighted by
//! how often they do. Hot indices (top `hot_ratio` fraction by frequency)
//! are excluded — the paper clamps them out because their placement is
//! fixed by the global frequency ordering.
//!
//! Scalability note: Algorithm 2 emits *all* pairs of a batch
//! (`self_combinations`), which is quadratic in batch size. Like the
//! paper's offline generator we bound the work: when a batch contains more
//! than [`IndexGraph::DENSE_PAIR_LIMIT`] distinct non-hot indices, each
//! index is connected to a bounded sample of batch peers instead of all of
//! them. Community structure survives sampling because edge *density*
//! within communities, not individual edges, is what modularity detects.

use rand::{Rng, SeedableRng};

/// A weighted undirected graph over (a subset of) table indices, stored as
/// CSR over *compacted* vertex ids with a mapping back to table indices.
#[derive(Clone, Debug)]
pub struct IndexGraph {
    /// Table index of each vertex.
    pub vertex_index: Vec<u32>,
    /// CSR neighbor offsets.
    pub offsets: Vec<u32>,
    /// Neighbor vertex ids.
    pub neighbors: Vec<u32>,
    /// Edge weights, parallel to `neighbors`.
    pub weights: Vec<f32>,
}

/// Incremental builder accumulating co-occurrence edges batch by batch.
pub struct IndexGraphBuilder {
    cardinality: usize,
    /// table index -> vertex id (u32::MAX = not a vertex, i.e. hot or
    /// never observed).
    vertex_of: Vec<u32>,
    vertex_index: Vec<u32>,
    edges: Vec<(u32, u32)>,
    rng: rand::rngs::StdRng,
}

impl IndexGraph {
    /// Above this many distinct non-hot indices per batch, pair generation
    /// switches from all-pairs to sampled peers.
    pub const DENSE_PAIR_LIMIT: usize = 96;
    /// Sampled peers per index in the sparse regime.
    pub const SAMPLED_PEERS: usize = 8;

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_index.len()
    }

    /// Number of undirected edges (each stored twice internally).
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Total edge weight `m` (undirected).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().map(|&w| w as f64).sum::<f64>() / 2.0
    }

    /// Neighbors of vertex `v` with weights.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        self.neighbors[lo..hi].iter().copied().zip(self.weights[lo..hi].iter().copied())
    }

    /// Weighted degree of vertex `v`.
    pub fn degree(&self, v: usize) -> f64 {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        self.weights[lo..hi].iter().map(|&w| w as f64).sum()
    }
}

impl IndexGraphBuilder {
    /// A builder for a table with `cardinality` rows; `is_hot[i]` marks
    /// indices excluded from the graph.
    pub fn new(cardinality: usize, is_hot: &[bool], seed: u64) -> Self {
        assert_eq!(is_hot.len(), cardinality);
        Self {
            cardinality,
            vertex_of: is_hot.iter().map(|&h| if h { u32::MAX } else { u32::MAX - 1 }).collect(),
            vertex_index: Vec::new(),
            edges: Vec::new(),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    fn vertex(&mut self, index: u32) -> Option<u32> {
        match self.vertex_of[index as usize] {
            u32::MAX => None, // hot
            v if v == u32::MAX - 1 => {
                let id = self.vertex_index.len() as u32;
                self.vertex_of[index as usize] = id;
                self.vertex_index.push(index);
                Some(id)
            }
            v => Some(v),
        }
    }

    /// Adds the co-occurrence edges of one batch's index list.
    pub fn add_batch(&mut self, indices: &[u32]) {
        // Distinct non-hot vertices of the batch.
        let card = self.cardinality;
        let mut verts: Vec<u32> = indices
            .iter()
            .filter(|&&i| (i as usize) < card)
            .copied()
            .collect::<Vec<u32>>()
            .into_iter()
            .filter_map(|i| self.vertex(i))
            .collect();
        verts.sort_unstable();
        verts.dedup();
        let n = verts.len();
        if n < 2 {
            return;
        }
        if n <= IndexGraph::DENSE_PAIR_LIMIT {
            for a in 0..n {
                for b in (a + 1)..n {
                    self.edges.push((verts[a], verts[b]));
                }
            }
        } else {
            for a in 0..n {
                for _ in 0..IndexGraph::SAMPLED_PEERS {
                    let b = self.rng.gen_range(0..n - 1);
                    let b = if b >= a { b + 1 } else { b };
                    let (x, y) = (verts[a].min(verts[b]), verts[a].max(verts[b]));
                    self.edges.push((x, y));
                }
            }
        }
    }

    /// Finalizes the accumulated edges into a CSR graph, merging duplicate
    /// pairs into weights.
    pub fn build(mut self) -> IndexGraph {
        let n = self.vertex_index.len();
        // Merge duplicates: sort the canonicalized pair list.
        self.edges.sort_unstable();
        let mut merged: Vec<(u32, u32, f32)> = Vec::with_capacity(self.edges.len());
        for &(a, b) in &self.edges {
            match merged.last_mut() {
                Some((x, y, w)) if *x == a && *y == b => *w += 1.0,
                _ => merged.push((a, b, 1.0)),
            }
        }
        // Symmetrize into CSR.
        let mut deg = vec![0u32; n + 1];
        for &(a, b, _) in &merged {
            deg[a as usize + 1] += 1;
            deg[b as usize + 1] += 1;
        }
        for i in 1..deg.len() {
            deg[i] += deg[i - 1];
        }
        let offsets = deg.clone();
        let mut cursor = deg;
        let total = *offsets.last().unwrap() as usize;
        let mut neighbors = vec![0u32; total];
        let mut weights = vec![0f32; total];
        for &(a, b, w) in &merged {
            neighbors[cursor[a as usize] as usize] = b;
            weights[cursor[a as usize] as usize] = w;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize] as usize] = a;
            weights[cursor[b as usize] as usize] = w;
            cursor[b as usize] += 1;
        }
        IndexGraph { vertex_index: self.vertex_index, offsets, neighbors, weights }
    }
}

/// Builds the hot mask from per-index access counts: the top
/// `hot_ratio` fraction by frequency among *observed* indices.
pub fn hot_mask(counts: &[u64], hot_ratio: f64) -> Vec<bool> {
    let hot_count = ((counts.len() as f64) * hot_ratio).floor() as usize;
    let mut order: Vec<u32> = (0..counts.len() as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(counts[i as usize]));
    let mut mask = vec![false; counts.len()];
    for &i in order.iter().take(hot_count) {
        mask[i as usize] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_from_batches(card: usize, hot: &[bool], batches: &[&[u32]]) -> IndexGraph {
        let mut b = IndexGraphBuilder::new(card, hot, 1);
        for batch in batches {
            b.add_batch(batch);
        }
        b.build()
    }

    #[test]
    fn all_pairs_for_small_batches() {
        let g = build_from_batches(10, &[false; 10], &[&[1, 2, 3]]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3); // triangle
    }

    #[test]
    fn repeated_cooccurrence_raises_weight() {
        let g = build_from_batches(10, &[false; 10], &[&[1, 2], &[1, 2], &[1, 3]]);
        // vertex of table index 1 is 0 (first observed)
        let w12 = g
            .neighbors(0)
            .find(|&(nb, _)| g.vertex_index[nb as usize] == 2)
            .map(|(_, w)| w)
            .unwrap();
        assert_eq!(w12, 2.0);
        assert_eq!(g.total_weight(), 3.0);
    }

    #[test]
    fn hot_indices_are_excluded() {
        let mut hot = vec![false; 10];
        hot[1] = true;
        let g = build_from_batches(10, &hot, &[&[1, 2, 3]]);
        assert_eq!(g.num_vertices(), 2);
        assert!(!g.vertex_index.contains(&1));
    }

    #[test]
    fn duplicate_indices_within_batch_counted_once() {
        let g = build_from_batches(10, &[false; 10], &[&[4, 4, 5, 5]]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.total_weight(), 1.0);
    }

    #[test]
    fn degree_sums_incident_weights() {
        let g = build_from_batches(10, &[false; 10], &[&[1, 2], &[1, 3]]);
        let v1 = g.vertex_index.iter().position(|&i| i == 1).unwrap();
        assert_eq!(g.degree(v1), 2.0);
    }

    #[test]
    fn large_batches_use_sampling_but_stay_connected() {
        let indices: Vec<u32> = (0..200).collect();
        let g = build_from_batches(200, &[false; 200], &[&indices]);
        assert_eq!(g.num_vertices(), 200);
        // sampling bounds the edge count well below all-pairs
        assert!(g.num_edges() < 200 * 199 / 2);
        assert!(g.num_edges() >= 200 * IndexGraph::SAMPLED_PEERS / 4);
        // no isolated vertices: everyone sampled peers
        for v in 0..200 {
            assert!(g.degree(v) > 0.0);
        }
    }

    #[test]
    fn hot_mask_selects_top_fraction() {
        let counts = vec![5u64, 100, 2, 50, 1];
        let mask = hot_mask(&counts, 0.4); // top 2 of 5
        assert_eq!(mask, vec![false, true, false, true, false]);
    }

    #[test]
    fn singleton_batches_add_nothing() {
        let g = build_from_batches(10, &[false; 10], &[&[3], &[]]);
        assert_eq!(g.num_edges(), 0);
    }
}
