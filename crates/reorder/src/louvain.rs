//! Modularity-based community detection (Louvain method).
//!
//! The paper (§IV-C) partitions the index graph with the modularity-based
//! community detection of Blondel et al. \[34\]/\[35\]; modularity `Q` (paper's
//! definition, Newman \[36\]) measures how much denser intra-community edges
//! are than a random graph with the same degrees. Louvain alternates:
//!
//! 1. **local moving** — greedily move vertices to the neighboring
//!    community with the largest modularity gain until no move helps;
//! 2. **aggregation** — collapse communities into super-vertices and
//!    repeat on the condensed graph.

use crate::graph::IndexGraph;
use std::collections::HashMap;

/// A community assignment over graph vertices.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Community id of each vertex (ids are contiguous, `0..num_communities`).
    pub community: Vec<u32>,
    /// Number of communities.
    pub count: usize,
}

impl Partition {
    /// The trivial partition (every vertex its own community).
    pub fn singleton(n: usize) -> Self {
        Self { community: (0..n as u32).collect(), count: n }
    }

    /// Vertices of each community.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &c) in self.community.iter().enumerate() {
            out[c as usize].push(v as u32);
        }
        out
    }

    /// Renumbers community ids to be contiguous.
    fn compact(mut self) -> Self {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        for c in &mut self.community {
            let next = remap.len() as u32;
            *c = *remap.entry(*c).or_insert(next);
        }
        self.count = remap.len();
        self
    }
}

/// Newman modularity of a partition:
/// `Q = sum_c (e_c / m - (k_c / 2m)^2)` with `e_c` the intra-community
/// weight, `k_c` the community degree and `m` the total edge weight.
pub fn modularity(graph: &IndexGraph, partition: &Partition) -> f64 {
    let m = graph.total_weight();
    if m == 0.0 {
        return 0.0;
    }
    let mut intra = vec![0f64; partition.count];
    let mut degree = vec![0f64; partition.count];
    for v in 0..graph.num_vertices() {
        let cv = partition.community[v] as usize;
        degree[cv] += graph.degree(v);
        for (nb, w) in graph.neighbors(v) {
            if partition.community[nb as usize] as usize == cv {
                intra[cv] += w as f64; // counted twice, halved below
            }
        }
    }
    (0..partition.count).map(|c| intra[c] / (2.0 * m) - (degree[c] / (2.0 * m)).powi(2)).sum()
}

/// Runs Louvain community detection; returns a partition with contiguous
/// community ids.
pub fn louvain(graph: &IndexGraph) -> Partition {
    let n = graph.num_vertices();
    if n == 0 {
        return Partition { community: Vec::new(), count: 0 };
    }
    // Working graph in adjacency-list form (aggregated levels need
    // mutation).
    let mut adj: Vec<Vec<(u32, f64)>> =
        (0..n).map(|v| graph.neighbors(v).map(|(nb, w)| (nb, w as f64)).collect()).collect();
    let mut self_loops = vec![0f64; n];
    // membership of original vertices through all levels
    let mut assignment: Vec<u32> = (0..n as u32).collect();

    let mut total_m: f64 = graph.total_weight();
    if total_m == 0.0 {
        return Partition::singleton(n).compact();
    }

    for _level in 0..16 {
        let (local, improved) = local_moving(&adj, &self_loops, total_m);
        if !improved {
            break;
        }
        // Map original vertices through this level's assignment.
        for a in assignment.iter_mut() {
            *a = local.community[*a as usize];
        }
        // Aggregate.
        let count = local.count;
        let mut new_adj: Vec<HashMap<u32, f64>> = vec![HashMap::new(); count];
        let mut new_loops = vec![0f64; count];
        for v in 0..adj.len() {
            let cv = local.community[v];
            new_loops[cv as usize] += self_loops[v];
            for &(nb, w) in &adj[v] {
                let cn = local.community[nb as usize];
                if cn == cv {
                    new_loops[cv as usize] += w / 2.0; // both endpoints visit
                } else {
                    *new_adj[cv as usize].entry(cn).or_insert(0.0) += w;
                }
            }
        }
        adj = new_adj
            .into_iter()
            .map(|m| {
                let mut v: Vec<(u32, f64)> = m.into_iter().collect();
                v.sort_unstable_by_key(|&(nb, _)| nb);
                v
            })
            .collect();
        self_loops = new_loops;
        if adj.len() == 1 {
            break;
        }
        // Total weight is invariant under aggregation; recompute to absorb
        // floating error.
        total_m = self_loops.iter().sum::<f64>()
            + adj.iter().flat_map(|nbrs| nbrs.iter().map(|&(_, w)| w)).sum::<f64>() / 2.0;
    }

    Partition { community: assignment, count: 0 }.compact()
}

/// One round of greedy local moving. Returns the level-local partition and
/// whether any move improved modularity.
fn local_moving(adj: &[Vec<(u32, f64)>], self_loops: &[f64], m: f64) -> (Partition, bool) {
    let n = adj.len();
    let mut community: Vec<u32> = (0..n as u32).collect();
    // Community total degree (incl. self loops counted twice).
    let degree: Vec<f64> =
        (0..n).map(|v| adj[v].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self_loops[v]).collect();
    let mut comm_degree = degree.clone();

    let mut improved_any = false;
    for _sweep in 0..32 {
        let mut moved = 0usize;
        for v in 0..n {
            let cv = community[v];
            // Weights from v to each neighboring community.
            let mut to_comm: HashMap<u32, f64> = HashMap::new();
            for &(nb, w) in &adj[v] {
                *to_comm.entry(community[nb as usize]).or_insert(0.0) += w;
            }
            let w_to_own = to_comm.get(&cv).copied().unwrap_or(0.0);
            // Remove v from its community.
            comm_degree[cv as usize] -= degree[v];
            // Gain of joining community c: w_{v->c}/m - k_v * K_c / (2 m^2);
            // compare against rejoining its own community.
            let base = w_to_own / m - degree[v] * comm_degree[cv as usize] / (2.0 * m * m);
            let mut best_c = cv;
            let mut best_gain = base;
            for (&c, &w_vc) in &to_comm {
                if c == cv {
                    continue;
                }
                let gain = w_vc / m - degree[v] * comm_degree[c as usize] / (2.0 * m * m);
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                }
            }
            comm_degree[best_c as usize] += degree[v];
            if best_c != cv {
                community[v] = best_c;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
        improved_any = true;
    }

    let p = Partition { community, count: 0 }.compact();
    (p, improved_any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::IndexGraphBuilder;

    /// Two K4 cliques joined by one edge.
    fn two_cliques() -> IndexGraph {
        let mut b = IndexGraphBuilder::new(8, &[false; 8], 1);
        b.add_batch(&[0, 1, 2, 3]);
        b.add_batch(&[0, 1, 2, 3]);
        b.add_batch(&[4, 5, 6, 7]);
        b.add_batch(&[4, 5, 6, 7]);
        b.add_batch(&[3, 4]); // bridge
        b.build()
    }

    #[test]
    fn louvain_separates_two_cliques() {
        let g = two_cliques();
        let p = louvain(&g);
        assert_eq!(p.count, 2, "expected two communities, got {}", p.count);
        // vertices 0..4 (table indices 0..4) together, 4..8 together
        let c0 = p.community[0];
        for v in 0..4 {
            assert_eq!(p.community[v], c0);
        }
        let c1 = p.community[4];
        assert_ne!(c0, c1);
        for v in 4..8 {
            assert_eq!(p.community[v], c1);
        }
    }

    #[test]
    fn detected_partition_beats_singletons_and_whole() {
        let g = two_cliques();
        let detected = louvain(&g);
        let q_detected = modularity(&g, &detected);
        let q_singleton = modularity(&g, &Partition::singleton(8));
        let whole = Partition { community: vec![0; 8], count: 1 };
        let q_whole = modularity(&g, &whole);
        assert!(q_detected > q_singleton);
        assert!(q_detected > q_whole);
        assert!(q_detected > 0.3, "Q = {q_detected}");
    }

    #[test]
    fn modularity_of_whole_graph_is_zero() {
        let g = two_cliques();
        let whole = Partition { community: vec![0; 8], count: 1 };
        assert!(modularity(&g, &whole).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_handled() {
        let b = IndexGraphBuilder::new(4, &[false; 4], 1);
        let g = b.build();
        let p = louvain(&g);
        assert_eq!(p.count, 0);
        assert_eq!(modularity(&g, &p), 0.0);
    }

    #[test]
    fn edgeless_vertices_stay_singletons() {
        let mut b = IndexGraphBuilder::new(6, &[false; 6], 1);
        b.add_batch(&[0, 1]);
        b.add_batch(&[2]); // observed but isolated: becomes a vertex only
                           // if it co-occurs; singleton batches add nothing
        let g = b.build();
        let p = louvain(&g);
        assert!(p.count >= 1);
        // all vertices assigned
        assert_eq!(p.community.len(), g.num_vertices());
    }

    #[test]
    fn partition_members_cover_all_vertices() {
        let g = two_cliques();
        let p = louvain(&g);
        let members = p.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn three_communities_in_a_chain() {
        // three K4 cliques chained with single bridges
        let mut b = IndexGraphBuilder::new(12, &[false; 12], 1);
        for _ in 0..3 {
            b.add_batch(&[0, 1, 2, 3]);
            b.add_batch(&[4, 5, 6, 7]);
            b.add_batch(&[8, 9, 10, 11]);
        }
        b.add_batch(&[3, 4]);
        b.add_batch(&[7, 8]);
        let g = b.build();
        let p = louvain(&g);
        assert_eq!(p.count, 3);
    }
}
