//! # el-reorder — locality-based index reordering (paper §IV)
//!
//! The performance of the Eff-TT table depends on how often indices inside
//! a batch share TT-index prefixes. Raw categorical IDs carry no locality,
//! so EL-Rec reorders them offline with an index bijection built from:
//!
//! * **global information** — the frequency ordering of the whole training
//!   log: the top `hot_ratio` fraction of indices ("hot embeddings") is
//!   pinned, in frequency order, to the front of the new index space;
//! * **local information** — a co-occurrence **index graph** over the
//!   remaining indices (paper Algorithm 2: vertices are indices, edges
//!   connect indices appearing in the same batch), partitioned with
//!   modularity-based **community detection** ([`louvain()`]); each community
//!   receives a contiguous index range.
//!
//! The result is an [`bijection::IndexBijection`] applied to every batch
//! before lookup (`SparseField::remap`). Because embedding rows are
//! randomly initialized, relabeling rows before training is free — no data
//! movement, no accuracy impact.

#![forbid(unsafe_code)]

pub mod bijection;
pub mod graph;
pub mod labelprop;
pub mod louvain;
pub mod metrics;

pub use bijection::{CommunityAlgorithm, IndexBijection, ReorderConfig, Reorderer};
pub use graph::IndexGraph;
pub use labelprop::label_propagation;
pub use louvain::{louvain, modularity, Partition};
